//! The world driver: assembles and runs every simulated connection, and
//! streams labeled flow records to the caller.
//!
//! Each session is generated from an independent RNG stream derived from
//! `(seed, session index)`, so generation is order-independent and can be
//! sharded across threads without changing a single byte of output.

use crate::countries::{
    as_enforcement_multiplier, day_index, local_hour, pick_asn, Asn, CountryIdx,
};
use crate::domains::{Category, Domain, DomainCatalog, DomainId};
use crate::meta::{BenignKind, GroundTruth, LabeledFlow, SessionMeta};
use crate::policy::{world_spec, BenignRates, CountrySpec, ProtoFilter};
use crate::scenario::Scenario;
use rand::distributions::{Distribution, WeightedIndex};
use rand::rngs::StdRng;
use rand::Rng;
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr};
use tamper_capture::{
    collect, run_source_observed, CollectorConfig, EngineConfig, Sampler, SimSource,
};
use tamper_middlebox::{ForcedStage, RuleSet, Vendor};
use tamper_netsim::{
    derive_rng, run_session, splitmix64, ClientConfig, ClientKind, IpIdMode, Link, Path,
    RequestPayload, ServerConfig, SessionParams, SimDuration, SimTime, VanishStage,
};
use tamper_obs::Registry;

/// 2023-01-12 00:00:00 UTC — the start of the paper's two-week window.
pub const JAN12_2023_UNIX: u64 = 1_673_481_600;
/// 2022-09-13 00:00:00 UTC — the start of the Iran case-study window.
pub const SEP13_2022_UNIX: u64 = 1_663_027_200;

/// Keyword planted in second requests that commercial firewalls key on.
pub const FIREWALL_KEYWORD: &str = "forbidden-topic";

/// The User-Agent a commercial enterprise proxy stamps on forwarded
/// requests — the paper observes Post-Data matches frequently carry such
/// identifiers (§4.3).
pub const FIREWALL_USER_AGENT: &str = "CorpGuard-SecureProxy/6.7";

/// World simulation configuration.
#[derive(Debug, Clone)]
pub struct WorldConfig {
    /// Master seed; everything derives from it.
    pub seed: u64,
    /// Number of (logical) sampled connections to generate.
    pub sessions: u64,
    /// Scenario start (unix seconds).
    pub start_unix: u64,
    /// Scenario length in days.
    pub days: u32,
    /// Connection sampling denominator (1 = the generated population *is*
    /// the sample; >1 exercises the sampler, ablation A5).
    pub sample_denominator: u64,
    /// Collection pipeline configuration.
    pub collector: CollectorConfig,
    /// Domain catalog size.
    pub catalog_size: u32,
    /// Which scenario to run.
    pub scenario: Scenario,
}

impl Default for WorldConfig {
    fn default() -> WorldConfig {
        WorldConfig {
            seed: 20230112,
            sessions: 100_000,
            start_unix: JAN12_2023_UNIX,
            days: 14,
            sample_denominator: 1,
            collector: CollectorConfig::default(),
            catalog_size: 4_000,
            scenario: Scenario::Standard,
        }
    }
}

/// The assembled world: registry, catalog, per-country samplers.
pub struct WorldSim {
    cfg: WorldConfig,
    world: Vec<CountrySpec>,
    catalog: DomainCatalog,
    benign: BenignRates,
    country_weights: WeightedIndex<f64>,
    domain_samplers: Vec<WeightedIndex<f64>>,
    hour_samplers: Vec<WeightedIndex<f64>>,
    sampler: Sampler,
    /// The four designated SYN-payload magnet domains (§4.1: 93% of HTTP
    /// SYN payloads target four domains).
    syn_payload_magnets: [DomainId; 4],
    /// Per-country traffic-weighted mean of the diurnal×weekend tampering
    /// factor; dividing by it keeps configured rates equal to realized
    /// average rates despite traffic concentrating in low-factor evening
    /// hours.
    diurnal_norm: Vec<f64>,
}

impl WorldSim {
    /// Build the world with the calibrated registry for the configured
    /// scenario.
    pub fn new(cfg: WorldConfig) -> WorldSim {
        let world = match cfg.scenario {
            Scenario::Standard => world_spec(),
            // The Iran case study observes only Iranian traffic. During
            // the protests the scripted evening escalation dominates the
            // usual late-night diurnal swing, so the baseline amplitude is
            // flattened.
            Scenario::IranProtest => world_spec()
                .into_iter()
                .filter(|s| s.country.code == "IR")
                .map(|mut s| {
                    s.policy.diurnal_amp = 0.1;
                    s
                })
                .collect(),
        };
        WorldSim::with_world(cfg, world)
    }

    /// Build a simulation over a custom world registry (e.g. loaded from
    /// JSON via [`crate::config::world_from_json`]). The scenario overlay
    /// in `cfg` still applies, keyed by country index.
    pub fn with_world(cfg: WorldConfig, world: Vec<CountrySpec>) -> WorldSim {
        assert!(!world.is_empty(), "world must contain at least one country");
        let n_countries = world.len() as u16;
        let catalog = DomainCatalog::generate(cfg.seed, cfg.catalog_size, n_countries, 0.4);
        let country_weights =
            WeightedIndex::new(world.iter().map(|s| s.country.weight)).expect("weights");

        let mut domain_samplers = Vec::with_capacity(world.len());
        let mut hour_samplers = Vec::with_capacity(world.len());
        for (ci, spec) in world.iter().enumerate() {
            let weights: Vec<f64> = catalog
                .iter()
                .map(|d| domain_interest(spec, ci as u16, d))
                .collect();
            domain_samplers.push(WeightedIndex::new(weights).expect("domain weights"));
            // Traffic volume peaks around 20:00 local.
            let hours: Vec<f64> = (0..24)
                .map(|utc_h| {
                    let local = (utc_h + spec.country.tz_offset_hours).rem_euclid(24) as f64;
                    1.0 + 0.55 * (std::f64::consts::TAU * (local - 20.0) / 24.0).cos()
                })
                .collect();
            hour_samplers.push(WeightedIndex::new(hours).expect("hour weights"));
        }
        let mut diurnal_norm = Vec::with_capacity(world.len());
        for spec in world.iter() {
            let (mut num, mut den) = (0.0, 0.0);
            for utc_h in 0..24 {
                let local = (utc_h + spec.country.tz_offset_hours).rem_euclid(24) as f64;
                let vol = 1.0 + 0.55 * (std::f64::consts::TAU * (local - 20.0) / 24.0).cos();
                let d = 1.0
                    + spec.policy.diurnal_amp
                        * (std::f64::consts::TAU * (local - 4.0) / 24.0).cos();
                num += vol * d;
                den += vol;
            }
            let weekend_mean = (5.0 + 2.0 * (1.0 - spec.policy.weekend_drop)) / 7.0;
            diurnal_norm.push((num / den) * weekend_mean);
        }
        let sampler = Sampler::new(cfg.seed ^ 0x5A17, cfg.sample_denominator);
        let syn_payload_magnets = pick_magnets(&catalog);
        WorldSim {
            cfg,
            world,
            catalog,
            benign: BenignRates::default(),
            country_weights,
            domain_samplers,
            hour_samplers,
            sampler,
            syn_payload_magnets,
            diurnal_norm,
        }
    }

    /// The configured world registry.
    pub fn world(&self) -> &[CountrySpec] {
        &self.world
    }

    /// The domain catalog.
    pub fn catalog(&self) -> &DomainCatalog {
        &self.catalog
    }

    /// The configuration.
    pub fn config(&self) -> &WorldConfig {
        &self.cfg
    }

    /// The benign-anomaly rates in force.
    pub fn benign_rates(&self) -> &BenignRates {
        &self.benign
    }

    /// True if `domain` is on `country`'s block list (category coverage or
    /// substring over-blocking).
    ///
    /// Two structural biases of real block lists are modelled here:
    /// globally unpopular (regional) domains are *more* likely to be
    /// blocked, which is what makes popularity-ranked test lists miss
    /// them (Table 3); and half of each block decision is driven by a
    /// country-independent "contentiousness" draw, so national lists
    /// overlap substantially (the same domains are blocked in many
    /// places), as curated lists like GreatFire exploit.
    pub fn is_blocked(&self, country: CountryIdx, domain: &Domain) -> bool {
        let spec = &self.world[country as usize];
        for (cat, cov) in &spec.policy.coverage {
            if *cat == domain.category {
                // Block decisions are family-level: a variant inherits its
                // canonical parent's identity (rank, draws) wholesale —
                // censors block families via keyword/wildcard rules.
                let mut canonical = domain;
                while let Some(p) = canonical.parent {
                    canonical = self.catalog.get(p);
                }
                let key = u64::from(canonical.id);
                let rank_frac =
                    f64::from(canonical.global_rank) / f64::from(self.catalog.len().max(1));
                let bias = 0.4 + 1.2 * rank_frac; // unpopular → more blocked
                let shared = hash01(self.cfg.seed ^ 0x54A6ED, 0, key);
                let national = hash01(self.cfg.seed ^ 0xB10C, u64::from(country), key);
                // Half the catalog is "globally contentious": for those
                // domains every country consults the same shared draw,
                // which is what makes national block lists overlap.
                let pick = hash01(self.cfg.seed ^ 0x9C1C, 0, key);
                let u = if pick < 0.5 { shared } else { national };
                if u < *cov * bias {
                    return true;
                }
            }
        }
        spec.policy
            .overblock_substrings
            .iter()
            .any(|s| domain.name.contains(s))
    }

    /// All blocked domain ids for a country (used by test-list generation
    /// and the Table 3 analysis).
    pub fn blocked_domains(&self, country: CountryIdx) -> Vec<DomainId> {
        self.catalog
            .iter()
            .filter(|d| self.is_blocked(country, d))
            .map(|d| d.id)
            .collect()
    }

    /// Generate session `i`. Returns `None` when the sampler rejects it or
    /// the server never saw a packet.
    pub fn gen_session(&self, i: u64) -> Option<LabeledFlow> {
        let mut rng: StdRng = derive_rng(self.cfg.seed, i);
        let country = self.country_weights.sample(&mut rng) as CountryIdx;
        let spec = &self.world[country as usize];

        // --- Time ---------------------------------------------------------
        let day = rng.gen_range(0..u64::from(self.cfg.days.max(1)));
        let hour = self.hour_samplers[country as usize].sample(&mut rng) as u64;
        let ts = self.cfg.start_unix + day * 86_400 + hour * 3_600 + rng.gen_range(0..3_600);
        let lh = local_hour(ts, spec.country.tz_offset_hours);

        // --- Placement ----------------------------------------------------
        let asn = pick_asn(country, spec.country.n_ases, rng.gen());
        let ipv6 = rng.gen::<f64>() < spec.country.ipv6_share;
        let mut http = rng.gen::<f64>() < spec.country.http_share;

        // --- Client identity (stable pool per AS for repeat visits) --------
        let pool = rng.gen_range(1..=200u32);
        let client_ip = client_address(country, asn, pool, ipv6);
        let server_ip = server_address(ipv6);
        let src_port: u16 = rng.gen_range(29_000..61_000);

        if !self.sampler.keep(client_ip, server_ip, src_port, i) {
            return None;
        }

        // --- Benign anomaly? ------------------------------------------------
        let benign = pick_benign(&self.benign, &mut rng);

        // --- Domain ---------------------------------------------------------
        // 35% of sessions revisit one of the client's favourite domains,
        // creating the repeated (IP, domain) pairs of Appendix B.
        let needs_domain = !matches!(
            benign,
            Some(BenignKind::SilentSyn) | Some(BenignKind::Zmap) | Some(BenignKind::MultiSyn)
        );
        let domain_id = if needs_domain {
            let id = if rng.gen::<f64>() < 0.35 {
                let fav = rng.gen_range(0..3u64);
                let mut fav_rng: StdRng = derive_rng(
                    self.cfg.seed ^ 0xFA7,
                    splitmix64(
                        (u64::from(country) << 40)
                            ^ (u64::from(asn.0) << 16)
                            ^ (u64::from(pool) << 2)
                            ^ fav,
                    ),
                );
                self.domain_samplers[country as usize].sample(&mut fav_rng) as DomainId
            } else {
                self.domain_samplers[country as usize].sample(&mut rng) as DomainId
            };
            Some(id)
        } else {
            None
        };

        // --- Tampering decision ---------------------------------------------
        let mut vendor: Option<Vendor> = None;
        let mut is_fw = false;
        if benign.is_none() {
            let (extra_syn, extra_dpi) =
                self.cfg
                    .scenario
                    .overlay(day_index(ts, self.cfg.start_unix), lh, asn, country);
            let diurnal = 1.0
                + spec.policy.diurnal_amp
                    * (std::f64::consts::TAU * (f64::from(lh) - 4.0) / 24.0).cos();
            let weekend = if is_weekend(ts) {
                1.0 - spec.policy.weekend_drop
            } else {
                1.0
            };
            let v6m = if ipv6 {
                spec.country.ipv6_tamper_mult
            } else {
                1.0
            };
            let m = (diurnal * weekend * v6m / self.diurnal_norm[country as usize]).max(0.0);
            let as_m = as_enforcement_multiplier(self.cfg.seed, asn, spec.country.centralization);

            let u: f64 = rng.gen();
            let mut acc = 0.0;

            // SYN-stage (IP-based) rules.
            let syn_total: f64 = spec.policy.syn_rules.iter().map(|(_, r)| r).sum::<f64>()
                + extra_syn.iter().map(|(_, r)| r).sum::<f64>();
            acc += syn_total * m;
            if vendor.is_none() && u < acc {
                vendor = Some(pick_weighted_2(
                    &spec.policy.syn_rules,
                    &extra_syn,
                    &mut rng,
                ));
            }

            // DPI stage.
            if vendor.is_none() {
                let proto_ok = match spec.policy.dpi_filter {
                    ProtoFilter::Any => true,
                    ProtoFilter::HttpOnly => http,
                    ProtoFilter::TlsOnly => !http,
                };
                let blocked = domain_id
                    .map(|id| self.is_blocked(country, self.catalog.get(id)))
                    .unwrap_or(false);
                let extra_dpi_total: f64 = extra_dpi.iter().map(|(_, r)| r).sum();
                let p_dpi = if proto_ok {
                    ((spec.policy.dpi_blanket
                        + if blocked {
                            spec.policy.dpi_enforce
                        } else {
                            0.0
                        }
                        + extra_dpi_total)
                        .min(1.0))
                        * m
                        * as_m
                } else {
                    0.0
                };
                acc += p_dpi;
                if u < acc {
                    // Vendor choice is mostly stable per (AS, domain) so
                    // repeated visits see the same apparatus (Appendix B);
                    // 10% of sessions re-roll, modelling load-balanced
                    // censor clusters.
                    let stable_key = splitmix64(
                        (u64::from(asn.0) << 32)
                            ^ u64::from(domain_id.unwrap_or(0))
                            ^ self.cfg.seed.rotate_left(17),
                    );
                    const VENDOR_SALT: u64 = 0x7665_6e64_6f72;
                    let mut vrng: StdRng = if rng.gen::<f64>() < 0.10 {
                        derive_rng(self.cfg.seed ^ VENDOR_SALT, splitmix64(stable_key ^ i))
                    } else {
                        derive_rng(self.cfg.seed ^ VENDOR_SALT, stable_key)
                    };
                    vendor = Some(pick_weighted_2(&spec.policy.dpi_mix, &extra_dpi, &mut vrng));
                }
            }

            // Later-data firewalls.
            if vendor.is_none() {
                let fw_total: f64 = spec.policy.fw_rules.iter().map(|(_, r)| r).sum();
                acc += fw_total * m;
                if u < acc {
                    vendor = Some(pick_weighted_2(&spec.policy.fw_rules, &[], &mut rng));
                    is_fw = true;
                    http = true; // firewall flows are two cleartext requests
                }
            }
        }

        // --- Request shape ----------------------------------------------------
        let two_requests = is_fw
            || matches!(
                benign,
                Some(BenignKind::AbortTwo) | Some(BenignKind::FinRstTwo)
            );
        let syn_payload_p = self.benign.syn_payload_http * spec.country.syn_payload_mult;
        let (request, final_http, effective_domain) = self.build_request(
            domain_id,
            http,
            two_requests,
            is_fw,
            benign,
            syn_payload_p,
            &mut rng,
        );
        let http = final_http;
        let domain_id = effective_domain;

        let response_segments = rng.gen_range(2..=4u8);
        let kind = client_kind(benign, response_segments, &mut rng);
        let dst_port = if http { 80 } else { 443 };

        // --- Stacks -----------------------------------------------------------
        let ip_id = pick_ip_id_mode(benign, &mut rng);
        let initial_ttl = match benign {
            Some(BenignKind::Zmap) => 255,
            _ => {
                if rng.gen::<f64>() < 0.70 {
                    64
                } else {
                    128
                }
            }
        };
        let mut tls_random = [0u8; 32];
        rng.fill(&mut tls_random);

        let client_cfg = ClientConfig {
            src: client_ip,
            dst: server_ip,
            src_port,
            dst_port,
            request,
            kind,
            ip_id,
            initial_ttl,
            isn: rng.gen(),
            window: 64_240,
            request_delay: SimDuration::from_millis(rng.gen_range(1..40)),
            syn_options: !matches!(benign, Some(BenignKind::Zmap)),
            tls_random,
        };
        let mut server_cfg = ServerConfig::default_edge(server_ip, dst_port);
        server_cfg.isn = rng.gen();
        server_cfg.response_segments = response_segments;

        // --- Path --------------------------------------------------------------
        let h1: u8 = rng.gen_range(2..=6);
        let h2: u8 = rng.gen_range(5..=14);
        let base_latency = 10 + spec.country.tz_offset_hours.unsigned_abs() as u64 * 6;
        let l1 = SimDuration::from_millis(rng.gen_range(2..20));
        let l2 = SimDuration::from_millis(base_latency + rng.gen_range(0..40));
        const LOSS: f64 = 0.0006;

        let mut path = match vendor {
            Some(v) => {
                let rules = self.rules_for(country, domain_id, v, is_fw);
                let mut mb = v.build(rules);
                if is_fw && !http {
                    // TLS-intercepting firewall: it cannot keyword-match our
                    // (encrypted in reality) later data, so it is modelled as
                    // firing on the second data packet outright.
                    mb = mb.with_forced_trigger(ForcedStage::NthData(2));
                }
                Path {
                    links: vec![
                        Link::new(l1, h1).with_loss(LOSS),
                        Link::new(l2, h2).with_loss(LOSS),
                    ],
                    hops: vec![Box::new(mb)],
                }
            }
            None => Path {
                links: vec![
                    Link::new(SimDuration(l1.as_nanos() + l2.as_nanos()), h1 + h2).with_loss(LOSS),
                ],
                hops: Vec::new(),
            },
        };

        // --- Run ----------------------------------------------------------------
        let start = SimTime((ts - self.cfg.start_unix) * 1_000_000_000);
        let params = SessionParams::new(client_cfg, server_cfg, start);
        let trace = run_session(params, &mut path, &mut rng);
        let mut crng: StdRng = derive_rng(self.cfg.seed ^ 0xC0_11EC7, i);
        let mut flow = collect(&trace, &self.cfg.collector, &mut crng)?;
        // Re-base timestamps onto wall-clock unix seconds.
        for p in &mut flow.packets {
            p.ts_sec += self.cfg.start_unix;
        }
        flow.observation_end_sec += self.cfg.start_unix;

        let truth = match (vendor, benign) {
            (Some(v), _) => GroundTruth::Tampered {
                vendor: v,
                fired: trace.first_tamper().map(|e| e.stage),
            },
            (None, Some(b)) => GroundTruth::Benign(b),
            (None, None) => GroundTruth::Clean,
        };

        Some(LabeledFlow {
            flow,
            meta: SessionMeta {
                country,
                asn,
                ipv6,
                http,
                domain: domain_id,
                start_unix: ts,
                truth,
            },
        })
    }

    fn rules_for(
        &self,
        country: CountryIdx,
        domain_id: Option<DomainId>,
        vendor: Vendor,
        is_fw: bool,
    ) -> RuleSet {
        if is_fw {
            let mut r = RuleSet::default();
            r.keywords.push(FIREWALL_KEYWORD.to_owned());
            return r;
        }
        match vendor.stages() {
            s if s.on_syn => RuleSet::blanket(),
            _ => match domain_id {
                Some(id) => {
                    let d = self.catalog.get(id);
                    let spec = &self.world[country as usize];
                    // If a substring rule matches, configure it verbatim so
                    // the middlebox takes the over-blocking path.
                    if let Some(sub) = spec
                        .policy
                        .overblock_substrings
                        .iter()
                        .find(|s| d.name.contains(*s))
                    {
                        let mut r = RuleSet::default();
                        r.domain_substrings.push((*sub).to_owned());
                        r
                    } else if self.is_blocked(country, d) {
                        RuleSet::domains([d.name.clone()])
                    } else {
                        // Blanket-ban apparatus (fires on any domain).
                        RuleSet::blanket()
                    }
                }
                None => RuleSet::blanket(),
            },
        }
    }

    #[allow(clippy::type_complexity)]
    #[allow(clippy::too_many_arguments)]
    fn build_request(
        &self,
        domain_id: Option<DomainId>,
        http: bool,
        two_requests: bool,
        is_fw: bool,
        benign: Option<BenignKind>,
        syn_payload_p: f64,
        rng: &mut StdRng,
    ) -> (RequestPayload, bool, Option<DomainId>) {
        let Some(id) = domain_id else {
            return (RequestPayload::None, http, None);
        };
        let name = self.catalog.get(id).name.clone();
        if two_requests {
            // Traffic traversing an org's commercial firewall frequently
            // carries the proxy's own User-Agent (paper §4.3).
            let user_agent = if is_fw && rng.gen::<f64>() < 0.7 {
                FIREWALL_USER_AGENT.to_owned()
            } else {
                pick_user_agent(rng).to_owned()
            };
            return (
                RequestPayload::HttpTwo {
                    host: name,
                    path1: "/".into(),
                    path2: format!("/post?tag={FIREWALL_KEYWORD}"),
                    user_agent,
                },
                true,
                Some(id),
            );
        }
        if http {
            // §4.1: a share of port-80 connections carry the GET in the SYN,
            // 93% of them to four magnet domains.
            if benign.is_none() && rng.gen::<f64>() < syn_payload_p {
                let (host, id) = if rng.gen::<f64>() < 0.93 {
                    let m = self.syn_payload_magnets[rng.gen_range(0..4)];
                    (self.catalog.get(m).name.clone(), m)
                } else {
                    (name, id)
                };
                return (
                    RequestPayload::HttpInSyn {
                        host,
                        path: "/".into(),
                    },
                    true,
                    Some(id),
                );
            }
            (
                RequestPayload::HttpGet {
                    host: name,
                    path: "/index.html".into(),
                    user_agent: pick_user_agent(rng).into(),
                },
                true,
                Some(id),
            )
        } else {
            (
                RequestPayload::TlsClientHello { sni: name },
                false,
                Some(id),
            )
        }
    }

    /// Run serially, streaming flows to `f`.
    pub fn run<F: FnMut(LabeledFlow)>(&self, mut f: F) {
        for i in 0..self.cfg.sessions {
            if let Some(lf) = self.gen_session(i) {
                f(lf);
            }
        }
    }

    /// Run across `threads` shards of the unified capture engine. Each
    /// shard owns a contiguous chunk of session indices and folds into
    /// its own accumulator `T`; accumulators are merged in shard order,
    /// so results are byte-identical to a serial run — even for
    /// order-sensitive accumulators — at any thread count.
    pub fn run_sharded<T, FI, FO, FM>(&self, threads: usize, init: FI, observe: FO, merge: FM) -> T
    where
        T: Send,
        FI: Fn() -> T + Sync,
        FO: Fn(&mut T, LabeledFlow) + Sync,
        FM: FnMut(&mut T, T),
    {
        self.run_sharded_observed(threads, None, init, observe, merge)
    }

    /// [`WorldSim::run_sharded`] with an optional metrics registry
    /// attached — a thin shim over [`tamper_capture::run_source_observed`]
    /// with a [`SimSource`] front-end; the driver has no sharding or
    /// merging machinery of its own. The engine publishes its uniform
    /// `reader` / `shard<i>` / `merge` scopes (per-shard `gen` stage
    /// timers, session/flow counters, a thread gauge on `merge`). With
    /// `None` every instrument is disabled (no clock reads); metrics
    /// never feed the merged accumulator, so attaching a registry cannot
    /// perturb byte-compared output.
    pub fn run_sharded_observed<T, FI, FO, FM>(
        &self,
        threads: usize,
        obs: Option<&Registry>,
        init: FI,
        observe: FO,
        merge: FM,
    ) -> T
    where
        T: Send,
        FI: Fn() -> T + Sync,
        FO: Fn(&mut T, LabeledFlow) + Sync,
        FM: FnMut(&mut T, T),
    {
        let cfg = EngineConfig {
            threads: threads.max(1),
            ..EngineConfig::default()
        };
        let gen = |i: u64| self.gen_session(i);
        let (acc, _stats) = run_source_observed(
            SimSource::new(self.cfg.sessions, &gen),
            &cfg,
            obs,
            init,
            observe,
            merge,
        );
        acc
    }

    /// Which of `pops` points of presence observes this flow. Routing is
    /// anycast-style: stable per client address (one client always lands
    /// on the same PoP), uniform across PoPs, and independent of session
    /// index or thread count, so splitting a world across PoPs partitions
    /// the flow multiset exactly.
    pub fn pop_of(&self, pops: usize, lf: &LabeledFlow) -> usize {
        if pops <= 1 {
            return 0;
        }
        let h = splitmix64(self.cfg.seed ^ POP_ROUTE_SALT ^ ip_route_key(lf.flow.client_ip));
        (h % pops as u64) as usize
    }

    /// [`WorldSim::run_sharded_observed`] restricted to the slice of
    /// traffic that lands on PoP `pop` of `pops`. The whole world is still
    /// generated (routing must see every client), but only flows whose
    /// [`WorldSim::pop_of`] matches reach `observe`. The union of the
    /// accumulators over all `pops` values covers every flow exactly once.
    #[allow(clippy::too_many_arguments)]
    pub fn run_pop_observed<T, FI, FO, FM>(
        &self,
        threads: usize,
        pops: usize,
        pop: usize,
        obs: Option<&Registry>,
        init: FI,
        observe: FO,
        merge: FM,
    ) -> T
    where
        T: Send,
        FI: Fn() -> T + Sync,
        FO: Fn(&mut T, LabeledFlow) + Sync,
        FM: FnMut(&mut T, T),
    {
        self.run_sharded_observed(
            threads,
            obs,
            init,
            |acc, lf| {
                if self.pop_of(pops, &lf) == pop {
                    observe(acc, lf);
                }
            },
            merge,
        )
    }
}

/// Salt separating PoP routing from every other consumer of the world
/// seed, so routing never correlates with per-session generation streams.
const POP_ROUTE_SALT: u64 = 0x9e6c_5f0a_7d01_b3e5;

/// Collapse a client address to a routing key. Worldgen keeps its own
/// copy (the analysis crate has an identical `ip_key` for reservoir
/// priorities) because the dependency points the other way.
fn ip_route_key(ip: IpAddr) -> u64 {
    match ip {
        IpAddr::V4(v4) => splitmix64(u64::from(u32::from(v4))),
        IpAddr::V6(v6) => {
            let o = v6.octets();
            let hi = u64::from_be_bytes([o[0], o[1], o[2], o[3], o[4], o[5], o[6], o[7]]);
            let lo = u64::from_be_bytes([o[8], o[9], o[10], o[11], o[12], o[13], o[14], o[15]]);
            splitmix64(hi ^ lo.rotate_left(32))
        }
    }
}

/// A stable fingerprint of everything in a [`WorldConfig`] that changes
/// the generated flow multiset. Per-PoP partial aggregates are salted
/// with it so `tamperscope merge` refuses to combine partials produced
/// from different worlds.
pub fn world_fingerprint(cfg: &WorldConfig) -> u64 {
    let scenario = match cfg.scenario {
        Scenario::Standard => 0u64,
        Scenario::IranProtest => 1u64,
    };
    let mut h: u64 = 0x5707_1d00_2023_0112;
    for v in [
        cfg.seed,
        cfg.sessions,
        cfg.start_unix,
        u64::from(cfg.days),
        cfg.sample_denominator,
        u64::from(cfg.catalog_size),
        scenario,
    ] {
        h = splitmix64(h ^ v);
    }
    h
}

/// Interest weight of a domain for one country.
fn domain_interest(spec: &CountrySpec, country: CountryIdx, d: &Domain) -> f64 {
    let mut w = 1.0 / (f64::from(d.global_rank) + 10.0).powf(0.85);
    match d.home_country {
        Some(h) if h == country => w *= 8.0,
        Some(_) => w *= 0.25,
        None => {}
    }
    for (cat, mult) in &spec.policy.affinity {
        if *cat == d.category {
            w *= mult;
        }
    }
    w
}

fn pick_magnets(catalog: &DomainCatalog) -> [DomainId; 4] {
    let mut best: Vec<(u32, DomainId)> = catalog
        .iter()
        .filter(|d| d.category == Category::ContentServers)
        .map(|d| (d.global_rank, d.id))
        .collect();
    best.sort_unstable();
    let take = |i: usize| best.get(i).map(|&(_, id)| id).unwrap_or(0);
    [take(0), take(1), take(2), take(3)]
}

fn hash01(seed: u64, a: u64, b: u64) -> f64 {
    (splitmix64(seed ^ a.rotate_left(21) ^ b.wrapping_mul(0x9E37_79B9)) % 1_000_000) as f64
        / 1_000_000.0
}

/// Unix weekend test (Saturday/Sunday UTC-ish; the epoch was a Thursday).
fn is_weekend(unix_secs: u64) -> bool {
    let dow = (unix_secs / 86_400 + 4) % 7; // 0 = Sunday
    dow == 0 || dow == 6
}

fn pick_benign(rates: &BenignRates, rng: &mut StdRng) -> Option<BenignKind> {
    let u: f64 = rng.gen();
    let table = [
        (BenignKind::SilentSyn, rates.silent_syn),
        (BenignKind::Zmap, rates.zmap),
        (BenignKind::HappyEyeballsRst, rates.he_rst),
        (BenignKind::VanishAck, rates.vanish_ack),
        (BenignKind::VanishReq, rates.vanish_req),
        (BenignKind::VanishMid, rates.vanish_mid),
        (BenignKind::AbortOne, rates.abort_one),
        (BenignKind::AbortTwo, rates.abort_two),
        (BenignKind::FinRstOne, rates.fin_rst_one),
        (BenignKind::FinRstTwo, rates.fin_rst_two),
        (BenignKind::DupAck, rates.dup_ack),
        (BenignKind::MultiSyn, rates.multi_syn),
        (BenignKind::StallOk, rates.stall_ok),
    ];
    let mut acc = 0.0;
    for (kind, rate) in table {
        acc += rate;
        if u < acc {
            return Some(kind);
        }
    }
    None
}

fn client_kind(benign: Option<BenignKind>, response_segments: u8, rng: &mut StdRng) -> ClientKind {
    match benign {
        None | Some(BenignKind::StallOk) => match benign {
            Some(BenignKind::StallOk) => ClientKind::Stall {
                stall: SimDuration::from_millis(rng.gen_range(3500..8000)),
            },
            _ => ClientKind::Normal,
        },
        Some(BenignKind::SilentSyn) => {
            if rng.gen::<f64>() < 0.55 {
                ClientKind::SilentScanner
            } else if rng.gen::<f64>() < 0.75 {
                ClientKind::VanishAfter {
                    stage: VanishStage::AfterSyn,
                }
            } else {
                ClientKind::HappyEyeballsSilent {
                    cancel_after: SimDuration::from_millis(rng.gen_range(40..200)),
                }
            }
        }
        Some(BenignKind::Zmap) => ClientKind::ZmapScanner,
        Some(BenignKind::HappyEyeballsRst) => ClientKind::HappyEyeballsRst {
            cancel_after: SimDuration::from_millis(rng.gen_range(40..200)),
        },
        Some(BenignKind::VanishAck) => ClientKind::VanishAfter {
            stage: VanishStage::AfterAck,
        },
        Some(BenignKind::VanishReq) => ClientKind::VanishAfter {
            stage: VanishStage::AfterRequest,
        },
        Some(BenignKind::VanishMid) => ClientKind::VanishAfter {
            stage: VanishStage::MidResponse,
        },
        Some(BenignKind::AbortOne) => ClientKind::AbortAfterResponse {
            segments: rng.gen_range(1..=2.min(response_segments)),
        },
        // Abort during the *second* response, so the RST lands after
        // multiple data packets (Post-Data).
        Some(BenignKind::AbortTwo) => ClientKind::AbortAfterResponse {
            segments: response_segments + 1,
        },
        Some(BenignKind::FinRstOne) | Some(BenignKind::FinRstTwo) => ClientKind::FinThenRst,
        Some(BenignKind::DupAck) => ClientKind::DupAckThenVanish,
        Some(BenignKind::MultiSyn) => ClientKind::MultiSynVanish,
    }
}

fn pick_ip_id_mode(benign: Option<BenignKind>, rng: &mut StdRng) -> IpIdMode {
    if matches!(benign, Some(BenignKind::Zmap)) {
        return IpIdMode::Fixed(54_321);
    }
    let u: f64 = rng.gen();
    if u < 0.60 {
        IpIdMode::Counter {
            start: rng.gen(),
            stride_max: 1,
        }
    } else if u < 0.92 {
        IpIdMode::Zero
    } else if u < 0.96 {
        IpIdMode::Counter {
            start: rng.gen(),
            stride_max: 3,
        }
    } else {
        // Busy host sharing one global counter across many flows.
        IpIdMode::Counter {
            start: rng.gen(),
            stride_max: 2000,
        }
    }
}

fn pick_user_agent(rng: &mut StdRng) -> &'static str {
    const UAS: [&str; 5] = [
        "Mozilla/5.0 (Windows NT 10.0; Win64; x64)",
        "Mozilla/5.0 (X11; Linux x86_64)",
        "Mozilla/5.0 (iPhone; CPU iPhone OS 16_0 like Mac OS X)",
        "curl/8.0.1",
        "okhttp/4.10",
    ];
    UAS[rng.gen_range(0..UAS.len())]
}

fn client_address(country: CountryIdx, asn: Asn, pool: u32, ipv6: bool) -> IpAddr {
    let as_local = (asn.0 - u32::from(country) * 1000).min(249) as u8;
    if ipv6 {
        IpAddr::V6(Ipv6Addr::new(
            0xfd00,
            country,
            u16::from(as_local),
            0,
            0,
            0,
            0,
            pool as u16,
        ))
    } else {
        IpAddr::V4(Ipv4Addr::new(10, country as u8, as_local, pool as u8))
    }
}

fn server_address(ipv6: bool) -> IpAddr {
    if ipv6 {
        IpAddr::V6(Ipv6Addr::new(0x2001, 0xdb8, 0x1111, 0, 0, 0, 0, 1))
    } else {
        IpAddr::V4(Ipv4Addr::new(198, 51, 100, 1))
    }
}

/// Pick from two weighted slices treated as one distribution.
fn pick_weighted_2(a: &[(Vendor, f64)], b: &[(Vendor, f64)], rng: &mut StdRng) -> Vendor {
    let total: f64 = a.iter().chain(b.iter()).map(|(_, w)| w).sum();
    let mut u = rng.gen::<f64>() * total;
    for (v, w) in a.iter().chain(b.iter()) {
        u -= w;
        if u <= 0.0 {
            return *v;
        }
    }
    a.last().or(b.last()).map(|(v, _)| *v).expect("empty mix")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::meta::GroundTruth;
    use tamper_core::{classify, ClassifierConfig, Signature};

    fn sim(sessions: u64) -> WorldSim {
        WorldSim::new(WorldConfig {
            sessions,
            catalog_size: 800,
            days: 3,
            ..Default::default()
        })
    }

    #[test]
    fn sessions_generate_and_label() {
        let s = sim(400);
        let mut n = 0;
        let mut tampered = 0;
        s.run(|lf| {
            n += 1;
            assert!(!lf.flow.packets.is_empty());
            assert!(lf.flow.packets.len() <= 10);
            if lf.meta.truth.was_tampered() {
                tampered += 1;
            }
        });
        assert!(n >= 380, "only {n} flows produced");
        assert!(tampered > 0, "no tampering generated at all");
    }

    #[test]
    fn generation_is_deterministic_and_shardable() {
        let s = sim(300);
        let mut serial: Vec<(u64, usize)> = Vec::new();
        s.run(|lf| serial.push((lf.meta.start_unix, lf.flow.packets.len())));
        let sharded: Vec<(u64, usize)> = s.run_sharded(
            4,
            Vec::new,
            |acc, lf| acc.push((lf.meta.start_unix, lf.flow.packets.len())),
            |a, mut b| a.append(&mut b),
        );
        assert_eq!(serial, sharded);
    }

    #[test]
    fn tampered_sessions_classify_as_tampered_mostly() {
        let s = sim(3000);
        let cfg = ClassifierConfig::default();
        let mut truth_pos = 0u32;
        let mut detected = 0u32;
        s.run(|lf| {
            if lf.meta.truth.was_tampered() {
                truth_pos += 1;
                if classify(&lf.flow, &cfg).is_possibly_tampered() {
                    detected += 1;
                }
            }
        });
        assert!(truth_pos > 50, "too few tampered sessions: {truth_pos}");
        let recall = f64::from(detected) / f64::from(truth_pos);
        assert!(recall > 0.95, "recall {recall} too low");
    }

    #[test]
    fn clean_sessions_rarely_flagged() {
        let s = sim(2000);
        let cfg = ClassifierConfig::default();
        let mut clean = 0u32;
        let mut flagged = 0u32;
        s.run(|lf| {
            if matches!(lf.meta.truth, GroundTruth::Clean) {
                clean += 1;
                if classify(&lf.flow, &cfg).is_possibly_tampered() {
                    flagged += 1;
                }
            }
        });
        assert!(clean > 500);
        let fpr = f64::from(flagged) / f64::from(clean);
        assert!(fpr < 0.05, "clean flows flagged at {fpr}");
    }

    #[test]
    fn turkmen_http_flows_match_post_ack_signatures() {
        let s = WorldSim::new(WorldConfig {
            sessions: 150_000,
            catalog_size: 800,
            days: 2,
            ..Default::default()
        });
        let world = s.world();
        let tm = crate::policy::country_index(world, "TM").unwrap();
        let cfg = ClassifierConfig::default();
        let mut tm_http = 0u32;
        let mut ack_rst = 0u32;
        s.run(|lf| {
            if lf.meta.country == tm && lf.meta.http {
                tm_http += 1;
                if classify(&lf.flow, &cfg).signature() == Some(Signature::AckRst) {
                    ack_rst += 1;
                }
            }
        });
        assert!(tm_http >= 40, "too few TM HTTP flows sampled ({tm_http})");
        // Expected ≈33% at calibration (it is TM's dominant signature);
        // the bound is loose because the sample is small.
        assert!(
            f64::from(ack_rst) / f64::from(tm_http) > 0.18,
            "TM ⟨SYN;ACK→RST⟩ share too low: {ack_rst}/{tm_http}"
        );
    }

    #[test]
    fn iran_scenario_only_iranian_traffic() {
        let s = WorldSim::new(WorldConfig {
            sessions: 200,
            catalog_size: 400,
            days: 17,
            start_unix: SEP13_2022_UNIX,
            scenario: Scenario::IranProtest,
            ..Default::default()
        });
        assert_eq!(s.world().len(), 1);
        assert_eq!(s.world()[0].country.code, "IR");
        let mut n = 0;
        s.run(|lf| {
            assert_eq!(lf.meta.country, 0);
            n += 1;
        });
        assert!(n > 150);
    }
}

#[cfg(test)]
mod blocking_tests {
    use super::*;
    use crate::domains::Category;

    fn sim() -> WorldSim {
        WorldSim::new(WorldConfig {
            sessions: 0,
            catalog_size: 3000,
            ..Default::default()
        })
    }

    #[test]
    fn blocking_respects_category_coverage() {
        let s = sim();
        let cn = crate::policy::country_index(s.world(), "CN").unwrap();
        let spec = &s.world()[cn as usize];
        let adult_cov = spec
            .policy
            .coverage
            .iter()
            .find(|(c, _)| *c == Category::AdultThemes)
            .map(|(_, v)| *v)
            .unwrap();
        let adult: Vec<_> = s
            .catalog()
            .iter()
            .filter(|d| d.category == Category::AdultThemes)
            .collect();
        let blocked = adult.iter().filter(|d| s.is_blocked(cn, d)).count();
        let rate = blocked as f64 / adult.len() as f64;
        // The popularity bias redistributes but preserves the mean.
        assert!(
            (rate - adult_cov).abs() < 0.12,
            "CN adult block rate {rate} vs configured {adult_cov}"
        );
        // Categories with no coverage entry are never blocked (modulo
        // substring rules, which CN has none of in the table... but it
        // might; check one that certainly isn't covered).
        let uncovered: Vec<_> = s
            .catalog()
            .iter()
            .filter(|d| d.category == Category::Shopping && !d.name.contains("wn.com"))
            .collect();
        assert!(uncovered.iter().all(|d| !s.is_blocked(cn, d)));
    }

    #[test]
    fn blocking_is_popularity_biased() {
        let s = sim();
        let cn = crate::policy::country_index(s.world(), "CN").unwrap();
        let n = s.catalog().len();
        let (mut top_blocked, mut top_total) = (0u32, 0u32);
        let (mut tail_blocked, mut tail_total) = (0u32, 0u32);
        for d in s.catalog().iter() {
            if d.category != Category::AdultThemes {
                continue;
            }
            if d.global_rank < n / 4 {
                top_total += 1;
                top_blocked += u32::from(s.is_blocked(cn, d));
            } else if d.global_rank > 3 * n / 4 {
                tail_total += 1;
                tail_blocked += u32::from(s.is_blocked(cn, d));
            }
        }
        let top = f64::from(top_blocked) / f64::from(top_total.max(1));
        let tail = f64::from(tail_blocked) / f64::from(tail_total.max(1));
        assert!(
            tail > top,
            "unpopular domains should be blocked more: top {top} tail {tail}"
        );
    }

    #[test]
    fn domain_families_share_block_fate() {
        let s = sim();
        let cn = crate::policy::country_index(s.world(), "CN").unwrap();
        let mut checked = 0;
        for d in s.catalog().iter() {
            if let Some(parent_id) = d.parent {
                let parent = s.catalog().get(parent_id);
                assert_eq!(
                    s.is_blocked(cn, d),
                    s.is_blocked(cn, parent),
                    "variant {} and parent {} disagree",
                    d.name,
                    parent.name
                );
                checked += 1;
            }
        }
        assert!(checked > 100, "only {checked} variants checked");
    }

    #[test]
    fn national_lists_overlap_substantially() {
        let s = sim();
        let world = s.world();
        let cn = crate::policy::country_index(world, "CN").unwrap();
        let pk = crate::policy::country_index(world, "TR").unwrap();
        // Both cover Adult Themes at ≈50%; the shared-contentiousness draw
        // should give distinctly more overlap than independence would
        // (the effect shrinks as coverage approaches 1, so a mid-coverage
        // pair is the sensitive probe).
        let adult_ids: Vec<u32> = s
            .catalog()
            .iter()
            .filter(|d| d.category == Category::AdultThemes)
            .map(|d| d.id)
            .collect();
        let cn_set: std::collections::HashSet<u32> = adult_ids
            .iter()
            .copied()
            .filter(|&id| s.is_blocked(cn, s.catalog().get(id)))
            .collect();
        let pk_set: std::collections::HashSet<u32> = adult_ids
            .iter()
            .copied()
            .filter(|&id| s.is_blocked(pk, s.catalog().get(id)))
            .collect();
        let inter = cn_set.intersection(&pk_set).count() as f64;
        let p_cn = cn_set.len() as f64 / adult_ids.len() as f64;
        let p_pk = pk_set.len() as f64 / adult_ids.len() as f64;
        let expected_independent = p_cn * p_pk * adult_ids.len() as f64;
        assert!(
            inter > 1.3 * expected_independent,
            "overlap {inter} barely exceeds independence {expected_independent}"
        );
    }
}

#[cfg(test)]
mod helper_tests {
    use super::*;

    #[test]
    fn weekend_detection_matches_calendar() {
        // 2023-01-12 is a Thursday; 14th/15th are the weekend.
        let thu = JAN12_2023_UNIX;
        assert!(!is_weekend(thu));
        assert!(!is_weekend(thu + 86_400)); // Friday
        assert!(is_weekend(thu + 2 * 86_400)); // Saturday
        assert!(is_weekend(thu + 3 * 86_400)); // Sunday
        assert!(!is_weekend(thu + 4 * 86_400)); // Monday
    }

    #[test]
    fn client_addresses_are_unique_per_identity() {
        use std::collections::HashSet;
        let mut seen = HashSet::new();
        for country in 0..10u16 {
            for asn_k in 0..4u32 {
                for pool in 1..50u32 {
                    let asn = Asn(u32::from(country) * 1000 + asn_k);
                    let v4 = client_address(country, asn, pool, false);
                    let v6 = client_address(country, asn, pool, true);
                    assert!(seen.insert(v4), "duplicate {v4}");
                    assert!(seen.insert(v6), "duplicate {v6}");
                }
            }
        }
    }

    #[test]
    fn benign_pick_respects_rates() {
        use rand::SeedableRng;
        let rates = BenignRates::default();
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let n = 200_000;
        let mut hits = 0u32;
        for _ in 0..n {
            if pick_benign(&rates, &mut rng).is_some() {
                hits += 1;
            }
        }
        let share = f64::from(hits) / f64::from(n);
        assert!(
            (share - rates.total()).abs() < 0.005,
            "share {share} vs configured {}",
            rates.total()
        );
    }

    #[test]
    fn diurnal_normalizer_centers_realized_rates() {
        // With normalization, the traffic-weighted mean of the diurnal
        // factor must be ≈ 1 for every country.
        let sim = WorldSim::new(WorldConfig {
            sessions: 0,
            catalog_size: 200,
            ..Default::default()
        });
        for (ci, norm) in sim.diurnal_norm.iter().enumerate() {
            assert!(
                (0.5..1.5).contains(norm),
                "{}: normalizer {norm}",
                sim.world()[ci].country.code
            );
        }
    }
}
