//! The synthetic domain catalog.
//!
//! Substitutes for the CDN's real customer base plus its third-party
//! categorization vendor: every domain has a category (the Table 2
//! taxonomy), a global popularity rank (Zipf-sampled at query time), and
//! optionally a home country that concentrates its popularity regionally —
//! the property that makes curated test lists miss regional blocked
//! domains (Table 3).

use rand::rngs::StdRng;
use rand::Rng;
use tamper_netsim::{derive_rng, splitmix64};

/// Content categories, following the paper's Table 2 vocabulary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Category {
    /// Adult content — the most-blocked category globally.
    AdultThemes,
    /// CDNs and sites serving content fetched by other applications.
    ContentServers,
    /// Product and service sites.
    Technology,
    /// Corporate sites.
    Business,
    /// Ad networks and trackers.
    Advertisements,
    /// Messaging platforms.
    Chat,
    /// Games and game services.
    Gaming,
    /// Schools, universities, MOOCs.
    Education,
    /// Authentication portals.
    LoginScreens,
    /// Hobby and interest communities.
    HobbiesInterests,
    /// News media.
    News,
    /// Social networks.
    SocialMedia,
    /// E-commerce.
    Shopping,
    /// Audio/video streaming.
    Streaming,
}

impl Category {
    /// All categories.
    pub const ALL: [Category; 14] = [
        Category::AdultThemes,
        Category::ContentServers,
        Category::Technology,
        Category::Business,
        Category::Advertisements,
        Category::Chat,
        Category::Gaming,
        Category::Education,
        Category::LoginScreens,
        Category::HobbiesInterests,
        Category::News,
        Category::SocialMedia,
        Category::Shopping,
        Category::Streaming,
    ];

    /// Display name matching the paper.
    pub fn label(self) -> &'static str {
        match self {
            Category::AdultThemes => "Adult Themes",
            Category::ContentServers => "Content Servers",
            Category::Technology => "Technology",
            Category::Business => "Business",
            Category::Advertisements => "Advertisements",
            Category::Chat => "Chat",
            Category::Gaming => "Gaming",
            Category::Education => "Education",
            Category::LoginScreens => "Login Screens",
            Category::HobbiesInterests => "Hobbies & Interests",
            Category::News => "News",
            Category::SocialMedia => "Social Media",
            Category::Shopping => "Shopping",
            Category::Streaming => "Streaming",
        }
    }

    /// Short slug used in generated domain names.
    fn slug(self) -> &'static str {
        match self {
            Category::AdultThemes => "adult",
            Category::ContentServers => "cdn",
            Category::Technology => "tech",
            Category::Business => "corp",
            Category::Advertisements => "ads",
            Category::Chat => "chat",
            Category::Gaming => "game",
            Category::Education => "edu",
            Category::LoginScreens => "login",
            Category::HobbiesInterests => "hobby",
            Category::News => "news",
            Category::SocialMedia => "social",
            Category::Shopping => "shop",
            Category::Streaming => "stream",
        }
    }

    /// Dense index.
    pub fn index(self) -> usize {
        Category::ALL.iter().position(|c| *c == self).unwrap()
    }

    /// Relative share of the catalog occupied by this category.
    fn catalog_share(self) -> f64 {
        match self {
            Category::AdultThemes => 0.08,
            Category::ContentServers => 0.10,
            Category::Technology => 0.13,
            Category::Business => 0.10,
            Category::Advertisements => 0.06,
            Category::Chat => 0.04,
            Category::Gaming => 0.05,
            Category::Education => 0.05,
            Category::LoginScreens => 0.03,
            Category::HobbiesInterests => 0.08,
            Category::News => 0.08,
            Category::SocialMedia => 0.05,
            Category::Shopping => 0.08,
            Category::Streaming => 0.05,
        }
    }
}

/// Identifier of a domain in the catalog.
pub type DomainId = u32;

/// One domain.
#[derive(Debug, Clone)]
pub struct Domain {
    /// Catalog id.
    pub id: DomainId,
    /// Fully qualified name (eTLD+1).
    pub name: String,
    /// Content category.
    pub category: Category,
    /// Global popularity rank, 0 = most popular.
    pub global_rank: u32,
    /// Home country index for regional domains; `None` for global ones.
    pub home_country: Option<u16>,
    /// For variant domains (mirrors, regional fronts, app hosts), the
    /// canonical parent whose *name is contained in this one* — e.g.
    /// `m-news123.com` for parent `news123.com`. Curated test lists carry
    /// only canonical names, which is why the paper's substring matching
    /// recovers coverage the exact rows miss.
    pub parent: Option<DomainId>,
}

/// The catalog.
pub struct DomainCatalog {
    domains: Vec<Domain>,
    by_category: Vec<Vec<DomainId>>,
}

const TLDS: [&str; 5] = ["com", "net", "org", "info", "io"];

impl DomainCatalog {
    /// Generate a catalog of `n` domains, deterministically from `seed`.
    /// `n_countries` bounds the home-country assignment; `regional_share`
    /// is the fraction of domains that are regional.
    pub fn generate(seed: u64, n: u32, n_countries: u16, regional_share: f64) -> DomainCatalog {
        let mut rng: StdRng = derive_rng(seed, 0xD0_0D);
        // Category assignment by catalog share.
        let mut domains = Vec::with_capacity(n as usize);
        let mut by_category = vec![Vec::new(); Category::ALL.len()];

        // Popularity scores: regional domains are systematically less
        // popular globally (their score is floored), which is what makes
        // popularity-ranked test lists miss regionally blocked domains
        // (paper Table 3).
        let mut scores: Vec<(f64, u32)> = Vec::with_capacity(n as usize);
        let mut homes: Vec<Option<u16>> = Vec::with_capacity(n as usize);
        for id in 0..n {
            let home = if rng.gen::<f64>() < regional_share {
                Some(rng.gen_range(0..n_countries))
            } else {
                None
            };
            let u: f64 = rng.gen();
            let score = if home.is_some() { 0.35 + 0.65 * u } else { u };
            homes.push(home);
            scores.push((score, id));
        }
        scores.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        let mut ranks = vec![0u32; n as usize];
        for (rank, (_, id)) in scores.iter().enumerate() {
            ranks[*id as usize] = rank as u32;
        }

        const VARIANT_PREFIXES: [&str; 4] = ["m-", "cdn-", "mirror-", "app-"];
        for id in 0..n {
            // ~15% of later domains are variants of an earlier canonical
            // domain: their name contains the parent's full name.
            let parent = if id >= 20 && splitmix64(seed ^ 0xFA111 ^ u64::from(id)) % 100 < 15 {
                Some((splitmix64(seed ^ 0x9A9 ^ u64::from(id)) % u64::from(id)) as DomainId)
            } else {
                None
            };
            let (category, name) = match parent {
                Some(p) => {
                    let parent_dom: &Domain = &domains[p as usize];
                    let prefix =
                        VARIANT_PREFIXES[(splitmix64(seed ^ (u64::from(id) * 7)) % 4) as usize];
                    (parent_dom.category, format!("{prefix}{}", parent_dom.name))
                }
                None => {
                    let category = pick_category(&mut rng);
                    let tld = TLDS
                        [(splitmix64(seed ^ (u64::from(id) * 31)) % TLDS.len() as u64) as usize];
                    // A sprinkle of names containing the substring "wn.com"
                    // to exercise over-blocking rules (paper §5.5).
                    let name = if id % 149 == 0 && tld == "com" {
                        format!("{}{}wn.com", category.slug(), id)
                    } else {
                        format!("{}{}.{}", category.slug(), id, tld)
                    };
                    (category, name)
                }
            };
            // Keep the category draw stream stable for non-variants.
            by_category[category.index()].push(id);
            domains.push(Domain {
                id,
                name,
                category,
                global_rank: ranks[id as usize],
                home_country: homes[id as usize],
                parent,
            });
        }
        DomainCatalog {
            domains,
            by_category,
        }
    }

    /// Look up a domain.
    pub fn get(&self, id: DomainId) -> &Domain {
        &self.domains[id as usize]
    }

    /// Catalog size.
    pub fn len(&self) -> u32 {
        self.domains.len() as u32
    }

    /// True if the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.domains.is_empty()
    }

    /// All domains of a category.
    pub fn in_category(&self, c: Category) -> &[DomainId] {
        &self.by_category[c.index()]
    }

    /// Iterate all domains.
    pub fn iter(&self) -> impl Iterator<Item = &Domain> {
        self.domains.iter()
    }

    /// Resolve a name back to its id (linear; used in analysis and tests,
    /// not in the hot path).
    pub fn find_by_name(&self, name: &str) -> Option<DomainId> {
        self.domains.iter().find(|d| d.name == name).map(|d| d.id)
    }
}

fn pick_category(rng: &mut StdRng) -> Category {
    let total: f64 = Category::ALL.iter().map(|c| c.catalog_share()).sum();
    let mut u = rng.gen::<f64>() * total;
    for c in Category::ALL {
        u -= c.catalog_share();
        if u <= 0.0 {
            return c;
        }
    }
    Category::Streaming
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = DomainCatalog::generate(7, 500, 10, 0.4);
        let b = DomainCatalog::generate(7, 500, 10, 0.4);
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.category, y.category);
            assert_eq!(x.global_rank, y.global_rank);
            assert_eq!(x.home_country, y.home_country);
        }
    }

    #[test]
    fn every_category_is_populated() {
        let cat = DomainCatalog::generate(7, 2000, 10, 0.4);
        for c in Category::ALL {
            assert!(
                !cat.in_category(c).is_empty(),
                "category {c:?} has no domains"
            );
        }
    }

    #[test]
    fn ranks_are_a_permutation() {
        let cat = DomainCatalog::generate(7, 300, 10, 0.4);
        let mut ranks: Vec<u32> = cat.iter().map(|d| d.global_rank).collect();
        ranks.sort_unstable();
        assert_eq!(ranks, (0..300).collect::<Vec<_>>());
    }

    #[test]
    fn regional_share_respected() {
        let cat = DomainCatalog::generate(7, 4000, 10, 0.4);
        let regional = cat.iter().filter(|d| d.home_country.is_some()).count();
        let share = regional as f64 / 4000.0;
        assert!((share - 0.4).abs() < 0.05, "share {share}");
    }

    #[test]
    fn some_names_contain_overblock_substring() {
        let cat = DomainCatalog::generate(7, 4000, 10, 0.4);
        let n = cat.iter().filter(|d| d.name.contains("wn.com")).count();
        assert!(n > 0, "no over-block bait domains generated");
        assert!(n < 200);
    }

    #[test]
    fn names_are_unique() {
        let cat = DomainCatalog::generate(7, 2000, 10, 0.4);
        let mut names: Vec<&str> = cat.iter().map(|d| d.name.as_str()).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        // Variant prefixing can collide only if the same parent gets the
        // same prefix twice; allow a tiny number of duplicates.
        assert!(names.len() >= before - 20);
    }

    #[test]
    fn variants_contain_parent_names() {
        let cat = DomainCatalog::generate(7, 2000, 10, 0.4);
        let variants: Vec<_> = cat.iter().filter(|d| d.parent.is_some()).collect();
        assert!(!variants.is_empty());
        for v in &variants {
            let parent = cat.get(v.parent.unwrap());
            assert!(
                v.name.contains(&parent.name),
                "{} !⊃ {}",
                v.name,
                parent.name
            );
            assert_eq!(v.category, parent.category);
        }
    }

    #[test]
    fn find_by_name_round_trips() {
        let cat = DomainCatalog::generate(7, 100, 10, 0.4);
        let d = cat.get(42);
        assert_eq!(cat.find_by_name(&d.name), Some(42));
        assert_eq!(cat.find_by_name("no-such.example"), None);
    }
}

impl Category {
    /// Parse the display label back to a category.
    pub fn from_label(label: &str) -> Option<Category> {
        Category::ALL.iter().copied().find(|c| c.label() == label)
    }
}

#[cfg(test)]
mod label_tests {
    use super::*;

    #[test]
    fn labels_round_trip() {
        for c in Category::ALL {
            assert_eq!(Category::from_label(c.label()), Some(c));
        }
        assert_eq!(Category::from_label("Nope"), None);
    }
}
