//! A small, complete JSON parser and serializer (RFC 8259), written
//! in-repo so world configurations can be loaded from files without an
//! external dependency.
//!
//! Supports the full grammar: nested objects/arrays, escape sequences
//! including `\uXXXX` surrogate pairs, and scientific-notation numbers.
//! Object key order is preserved.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (stored as f64, like JavaScript).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, key order preserved.
    Obj(Vec<(String, Json)>),
}

/// Parse error with byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset in the input.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err<T>(&self, message: impl Into<String>) -> Result<T, JsonError> {
        Err(JsonError {
            message: message.into(),
            offset: self.pos,
        })
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(format!("expected '{}'", b as char))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            self.err(format!("expected '{word}'"))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => self.err(format!("unexpected byte '{}'", c as char)),
            None => self.err("unexpected end of input"),
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap_or("");
        match text.parse::<f64>() {
            Ok(v) if v.is_finite() => Ok(Json::Num(v)),
            _ => self.err(format!("bad number '{text}'")),
        }
    }

    fn hex4(&mut self) -> Result<u16, JsonError> {
        let mut v: u16 = 0;
        for _ in 0..4 {
            let c = match self.bump() {
                Some(c) => c,
                None => return self.err("truncated \\u escape"),
            };
            let d = match c {
                b'0'..=b'9' => c - b'0',
                b'a'..=b'f' => c - b'a' + 10,
                b'A'..=b'F' => c - b'A' + 10,
                _ => return self.err("bad hex digit"),
            };
            v = (v << 4) | u16::from(d);
        }
        Ok(v)
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return self.err("unterminated string"),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hi = self.hex4()?;
                        if (0xD800..0xDC00).contains(&hi) {
                            // A high surrogate is only valid as the first
                            // half of a `\uD8xx\uDCxx` pair; anything else
                            // (closing quote, EOF, ordinary text) is an
                            // unpaired surrogate, not a missing delimiter.
                            if self.peek() != Some(b'\\')
                                || self.bytes.get(self.pos + 1) != Some(&b'u')
                            {
                                return self.err("unpaired high surrogate");
                            }
                            self.pos += 2;
                            let lo = self.hex4()?;
                            if !(0xDC00..0xE000).contains(&lo) {
                                return self.err("bad low surrogate");
                            }
                            let c = 0x10000
                                + ((u32::from(hi) - 0xD800) << 10)
                                + (u32::from(lo) - 0xDC00);
                            match char::from_u32(c) {
                                Some(ch) => out.push(ch),
                                None => return self.err("bad surrogate pair"),
                            }
                        } else if (0xDC00..0xE000).contains(&hi) {
                            return self.err("lone low surrogate");
                        } else {
                            match char::from_u32(u32::from(hi)) {
                                Some(ch) => out.push(ch),
                                None => return self.err("bad \\u escape"),
                            }
                        }
                    }
                    _ => return self.err("bad escape"),
                },
                Some(c) if c < 0x20 => return self.err("raw control character in string"),
                Some(c) => {
                    // Re-assemble UTF-8 multibyte sequences.
                    let len = match c {
                        0x00..=0x7F => 1,
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        0xF0..=0xF7 => 4,
                        _ => return self.err("bad UTF-8"),
                    };
                    let start = self.pos - 1;
                    let end = start + len;
                    if end > self.bytes.len() {
                        return self.err("truncated UTF-8");
                    }
                    match std::str::from_utf8(&self.bytes[start..end]) {
                        Ok(s) => out.push_str(s),
                        Err(_) => return self.err("bad UTF-8"),
                    }
                    self.pos = end;
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Json::Arr(items)),
                _ => return self.err("expected ',' or ']'"),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Json::Obj(fields)),
                _ => return self.err("expected ',' or '}'"),
            }
        }
    }
}

impl Json {
    /// Parse a complete JSON document (trailing garbage is an error).
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return p.err("trailing data");
        }
        Ok(v)
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Number accessor.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// Integer accessor (lossless only).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(v) if *v >= 0.0 && v.fract() == 0.0 && *v <= 2f64.powi(53) => Some(*v as u64),
            _ => None,
        }
    }

    /// Signed integer accessor.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Num(v) if v.fract() == 0.0 && v.abs() <= 2f64.powi(53) => Some(*v as i64),
            _ => None,
        }
    }

    /// String accessor.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Bool accessor.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Array accessor.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serialize compactly (no whitespace).
    pub fn to_compact_string(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) => {
                if v.fract() == 0.0 && v.abs() < 2f64.powi(53) {
                    out.push_str(&format!("{}", *v as i64));
                } else {
                    out.push_str(&format!("{v}"));
                }
            }
            Json::Str(s) => {
                out.push('"');
                for ch in s.chars() {
                    match ch {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\r' => out.push_str("\\r"),
                        '\t' => out.push_str("\\t"),
                        c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    Json::Str(k.clone()).write(out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("false").unwrap(), Json::Bool(false));
        assert_eq!(Json::parse("3.25").unwrap(), Json::Num(3.25));
        assert_eq!(Json::parse("-17").unwrap(), Json::Num(-17.0));
        assert_eq!(Json::parse("1e3").unwrap(), Json::Num(1000.0));
        assert_eq!(Json::parse("2.5E-2").unwrap(), Json::Num(0.025));
    }

    #[test]
    fn strings_and_escapes() {
        assert_eq!(
            Json::parse(r#""a\"b\\c\nd""#).unwrap(),
            Json::Str("a\"b\\c\nd".to_owned())
        );
        assert_eq!(Json::parse(r#""éA""#).unwrap(), Json::Str("éA".to_owned()));
        // Surrogate pair: 😀 U+1F600.
        assert_eq!(Json::parse(r#""😀""#).unwrap(), Json::Str("😀".to_owned()));
        // Raw multibyte UTF-8 passes through.
        assert_eq!(
            Json::parse("\"∅ and 中\"").unwrap(),
            Json::Str("∅ and 中".to_owned())
        );
    }

    #[test]
    fn nested_structures() {
        let v = Json::parse(r#"{"a":[1,{"b":null},"x"],"c":{"d":true}}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(v.get("c").unwrap().get("d").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn errors_have_offsets() {
        for bad in [
            "",
            "{",
            "[1,",
            "\"abc",
            "tru",
            "1.2.3",
            "{\"a\" 1}",
            "[1] x",
            "\"\\q\"",
            r#""\ud83d""#,
            "\"\u{1}\"",
        ] {
            let e = Json::parse(bad).expect_err(bad);
            assert!(!e.message.is_empty());
            assert!(e.to_string().contains("JSON error"));
        }
    }

    #[test]
    fn unpaired_surrogates_are_named_errors() {
        // Every way a \uD800-range escape can fail to form a pair gets a
        // specific message, not a generic "expected" complaint.
        for (bad, want) in [
            (r#""\ud800""#, "unpaired high surrogate"),
            (r#""\ud83d""#, "unpaired high surrogate"),
            (r#""\ud800x""#, "unpaired high surrogate"),
            (r#""\ud800\n""#, "unpaired high surrogate"),
            (r#""\ud800"#, "unpaired high surrogate"),
            (r#""\ud800\u"#, "truncated \\u escape"),
            (r#""\ud800\udc"#, "truncated \\u escape"),
            (r#""\ud800\ud800""#, "bad low surrogate"),
            (r#""\udc00""#, "lone low surrogate"),
        ] {
            let e = Json::parse(bad).expect_err(bad);
            assert_eq!(e.message, want, "{bad}");
        }
    }

    #[test]
    fn surrogate_pairs_round_trip_in_jsonl_records() {
        // A JSONL record line carrying astral-plane text, both as raw
        // UTF-8 and as escaped surrogate pairs, parses to the same value
        // and survives re-emission.
        let escaped = concat!(
            r#"{"flow":7,"sni":""#,
            "\\ud83d\\ude00",
            r#".example","note":""#,
            "\\ud801\\udc37",
            r#""}"#
        );
        let raw = "{\"flow\":7,\"sni\":\"\u{1F600}.example\",\"note\":\"\u{10437}\"}";
        let a = Json::parse(escaped).unwrap();
        let b = Json::parse(raw).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.get("sni").unwrap().as_str(), Some("\u{1F600}.example"));
        let emitted = a.to_compact_string();
        assert_eq!(Json::parse(&emitted).unwrap(), a);
    }

    #[test]
    fn round_trip_compact() {
        let text = r#"{"name":"x","rates":[0.5,1,2.25],"deep":{"ok":true,"none":null}}"#;
        let v = Json::parse(text).unwrap();
        let emitted = v.to_compact_string();
        assert_eq!(Json::parse(&emitted).unwrap(), v);
        assert_eq!(emitted, text);
    }

    #[test]
    fn accessors_are_strict() {
        let v = Json::parse("[1.5]").unwrap();
        let n = &v.as_array().unwrap()[0];
        assert_eq!(n.as_f64(), Some(1.5));
        assert_eq!(n.as_u64(), None);
        assert_eq!(Json::parse("7").unwrap().as_u64(), Some(7));
        assert_eq!(Json::parse("-7").unwrap().as_i64(), Some(-7));
        assert_eq!(Json::parse("-7").unwrap().as_u64(), None);
    }
}
