//! Tampering policies and the calibrated world table.
//!
//! This module is the single place where the reproduction's "ground truth
//! world" is defined: per-country tampering rates, vendor mixes, blocked
//! categories, benign-anomaly rates, and diurnal behaviour. Every expected
//! shape in EXPERIMENTS.md traces back to a constant here.
//!
//! Sources for the shapes (paper §5): Turkmenistan's blanket HTTP blocking
//! with `⟨SYN;ACK → RST⟩` (66.4% of its tampered connections) and its
//! `wn.com` substring over-blocking; Iran's ClientHello dropping and
//! RST+ACK injection; China's GFW multi-RST+ACK bursts and zero-ack pairs;
//! the South Korean ISP with randomized TTL ack-guessing bursts; Ukraine's
//! commercial-firewall `⟨PSH+ACK; Data → RST+ACK⟩` prevalence; decentralized
//! enforcement in Russia/Ukraine/Pakistan vs centralized China/Iran.

use crate::countries::Country;
use crate::domains::Category;
use tamper_middlebox::Vendor;

/// Protocol scope of a country's DPI apparatus.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ProtoFilter {
    /// Inspects both HTTP and TLS.
    #[default]
    Any,
    /// Parses only cleartext HTTP (Turkmenistan-style).
    HttpOnly,
    /// Only TLS SNI.
    TlsOnly,
}

/// One country's tampering policy.
#[derive(Debug, Clone, Default)]
pub struct Policy {
    /// SYN-stage (IP-based) tampering: (vendor, probability per connection).
    pub syn_rules: Vec<(Vendor, f64)>,
    /// Probability that DPI fires on *any* connection within
    /// [`Policy::dpi_filter`] scope, regardless of domain (blanket bans).
    pub dpi_blanket: f64,
    /// Protocol scope of the DPI stage.
    pub dpi_filter: ProtoFilter,
    /// Probability DPI fires given the requested domain is on the block
    /// list (before the per-AS enforcement multiplier).
    pub dpi_enforce: f64,
    /// Vendor mix for DPI-stage tampering (relative weights).
    pub dpi_mix: Vec<(Vendor, f64)>,
    /// Later-data commercial-firewall tampering: (vendor, probability).
    pub fw_rules: Vec<(Vendor, f64)>,
    /// Per-category block coverage: fraction of the category's domains on
    /// the national block list (Table 2's fourth column).
    pub coverage: Vec<(Category, f64)>,
    /// Per-category interest multipliers shaping what this country's
    /// clients request (Table 2's third column).
    pub affinity: Vec<(Category, f64)>,
    /// Domain-substring over-blocking rules (paper §5.5).
    pub overblock_substrings: Vec<String>,
    /// Amplitude of the diurnal tampering factor (peaks in the local
    /// night, per Figure 6).
    pub diurnal_amp: f64,
    /// Relative reduction of tampering on weekends.
    pub weekend_drop: f64,
}

/// Global benign-anomaly rates: probabilities per connection of client
/// behaviours that mimic tampering signatures. Calibrated so the global
/// stage shares of possibly-tampered traffic land near the paper's
/// 43.2 / 16.1 / 5.3 / 33.0 / 2.3 split with ~25.7% possibly tampered.
#[derive(Debug, Clone, Copy)]
pub struct BenignRates {
    /// SYN-only scanners, spoofed flood residue, silent Happy-Eyeballs
    /// losers, clients vanishing after the SYN → `⟨SYN → ∅⟩`.
    pub silent_syn: f64,
    /// ZMap-style scanners → `⟨SYN → RST⟩` with the ZMap fingerprint.
    pub zmap: f64,
    /// Happy-Eyeballs RST cancels → `⟨SYN → RST⟩`.
    pub he_rst: f64,
    /// Clients vanishing after the handshake ACK → `⟨SYN; ACK → ∅⟩`.
    pub vanish_ack: f64,
    /// Clients vanishing after the request → `⟨PSH+ACK → ∅⟩`.
    pub vanish_req: f64,
    /// Clients vanishing mid-response → `⟨PSH+ACK → ∅⟩`.
    pub vanish_mid: f64,
    /// User aborts (RST) during the first response → `⟨PSH+ACK → RST⟩`.
    pub abort_one: f64,
    /// User aborts after a second request → `⟨PSH+ACK; Data → RST⟩`.
    pub abort_two: f64,
    /// FIN immediately chased by RST on a single-request flow →
    /// Post-PSH stage, no signature.
    pub fin_rst_one: f64,
    /// FIN chased by RST on a two-request flow → Post-Data stage, no
    /// signature (the bulk of the paper's 30.8% unmatched Post-Data).
    pub fin_rst_two: f64,
    /// Duplicate-ACK-then-vanish ("SYN and two ACKs") → other.
    pub dup_ack: f64,
    /// SYN retransmitted with no ACK ever → Post-SYN stage, no signature.
    pub multi_syn: f64,
    /// Clients that stall > 3 s and then complete gracefully (negative
    /// control: FIN present, must *not* be flagged).
    pub stall_ok: f64,
    /// Share of HTTP sessions carrying the GET in the SYN payload
    /// (§4.1: 38% of port-80 SYNs on 2023-01-17).
    pub syn_payload_http: f64,
}

impl Default for BenignRates {
    fn default() -> BenignRates {
        BenignRates {
            silent_syn: 0.090,
            zmap: 0.001,
            he_rst: 0.009,
            vanish_ack: 0.010,
            vanish_req: 0.0008,
            vanish_mid: 0.0005,
            abort_one: 0.0015,
            abort_two: 0.045,
            fin_rst_one: 0.0006,
            fin_rst_two: 0.019,
            dup_ack: 0.0035,
            multi_syn: 0.0018,
            stall_ok: 0.004,
            syn_payload_http: 0.45,
        }
    }
}

impl BenignRates {
    /// Total probability of any benign anomaly.
    pub fn total(&self) -> f64 {
        self.silent_syn
            + self.zmap
            + self.he_rst
            + self.vanish_ack
            + self.vanish_req
            + self.vanish_mid
            + self.abort_one
            + self.abort_two
            + self.fin_rst_one
            + self.fin_rst_two
            + self.dup_ack
            + self.multi_syn
            + self.stall_ok
    }
}

/// A country plus its policy.
#[derive(Debug, Clone)]
pub struct CountrySpec {
    /// Static country properties.
    pub country: Country,
    /// Tampering policy.
    pub policy: Policy,
}

fn base(
    code: &'static str,
    weight: f64,
    tz: i32,
    ipv6: f64,
    n_ases: usize,
    centralization: f64,
    http_share: f64,
) -> CountrySpec {
    CountrySpec {
        country: Country {
            code: code.to_owned(),
            weight,
            tz_offset_hours: tz,
            ipv6_share: ipv6,
            n_ases,
            centralization,
            http_share,
            ipv6_tamper_mult: 1.0,
            syn_payload_mult: 1.0,
        },
        policy: Policy {
            diurnal_amp: 0.45,
            weekend_drop: 0.15,
            dpi_enforce: 0.9,
            ..Default::default()
        },
    }
}

use Category as C;
use Vendor as V;

/// Build the calibrated world: every country of the paper's Figure 4 plus
/// enough additional large markets to make Figure 1's global columns
/// meaningful. Weights are relative traffic shares.
pub fn world_spec() -> Vec<CountrySpec> {
    let mut w: Vec<CountrySpec> = Vec::new();

    // ---- Heavy tamperers (left end of Figure 4) ------------------------
    let mut tm = base("TM", 0.30, 5, 0.02, 2, 0.95, 0.92);
    tm.policy.syn_rules = vec![(V::SynDropAll, 0.05)];
    tm.policy.dpi_filter = ProtoFilter::HttpOnly;
    tm.policy.dpi_blanket = 0.95; // blanket CDN bans on cleartext HTTP
    tm.policy.dpi_mix = vec![(V::DataDropRst { n: 1 }, 0.88), (V::DataDropAll, 0.12)];
    tm.policy.coverage = vec![(C::News, 0.9), (C::SocialMedia, 0.9), (C::Chat, 0.9)];
    tm.policy.overblock_substrings = vec!["wn.com".to_owned()];
    tm.country.syn_payload_mult = 0.05;
    tm.policy.diurnal_amp = 0.2; // an always-on blanket has little diurnal swing
    w.push(tm);

    let mut pe = base("PE", 0.9, -5, 0.25, 8, 0.5, 0.25);
    pe.policy.syn_rules = vec![(V::SynDropAll, 0.19), (V::SynRst { n: 1 }, 0.10)];
    pe.policy.diurnal_amp = 0.25;
    pe.policy.fw_rules = vec![(V::FirewallRstAck, 0.14)];
    pe.policy.dpi_blanket = 0.02;
    pe.policy.dpi_mix = vec![(V::DataDropRstAck { n: 1 }, 0.6), (V::PshRstAck, 0.4)];
    pe.policy.coverage = vec![
        (C::Advertisements, 0.62),
        (C::Technology, 0.09),
        (C::Business, 0.06),
    ];
    pe.policy.affinity = vec![(C::Advertisements, 2.2)];
    w.push(pe);

    let mut uz = base("UZ", 0.35, 5, 0.08, 4, 0.8, 0.3);
    uz.policy.dpi_blanket = 0.36;
    uz.policy.diurnal_amp = 0.3;
    uz.policy.dpi_mix = vec![
        (V::DataDropRstAck { n: 1 }, 0.8),
        (V::DataDropRstAck { n: 2 }, 0.15),
        (V::DataDropAll, 0.05),
    ];
    uz.policy.syn_rules = vec![(V::SynDropAll, 0.04)];
    uz.policy.coverage = vec![(C::News, 0.5), (C::SocialMedia, 0.5)];
    w.push(uz);

    let mut cu = base("CU", 0.12, -5, 0.03, 2, 0.9, 0.4);
    cu.policy.syn_rules = vec![(V::SynDropAll, 0.20), (V::SynRstAck { n: 1 }, 0.04)];
    cu.policy.dpi_blanket = 0.10;
    cu.policy.dpi_mix = vec![(V::DataDropAll, 0.7), (V::DataDropRst { n: 1 }, 0.3)];
    cu.policy.coverage = vec![(C::News, 0.6), (C::SocialMedia, 0.4)];
    w.push(cu);

    let mut sa = base("SA", 1.0, 3, 0.35, 5, 0.85, 0.2);
    sa.policy.dpi_blanket = 0.155;
    sa.policy.dpi_mix = vec![(V::DataDropRstAck { n: 1 }, 0.6), (V::PshRstAck, 0.4)];
    sa.policy.syn_rules = vec![(V::SynDropAll, 0.05)];
    sa.policy.coverage = vec![
        (C::AdultThemes, 0.95),
        (C::Gaming, 0.2),
        (C::Streaming, 0.15),
    ];
    sa.policy.affinity = vec![(C::AdultThemes, 0.9)];
    w.push(sa);

    let mut kz = base("KZ", 0.5, 6, 0.15, 6, 0.7, 0.25);
    kz.policy.dpi_blanket = 0.24;
    kz.policy.dpi_mix = vec![(V::DataDropRstAck { n: 1 }, 0.85), (V::DataDropAll, 0.15)];
    kz.policy.syn_rules = vec![(V::SynDropAll, 0.03)];
    kz.policy.coverage = vec![(C::News, 0.35)];
    w.push(kz);

    let mut ru = base("RU", 3.0, 3, 0.3, 24, 0.2, 0.2);
    ru.policy.dpi_blanket = 0.10;
    ru.policy.dpi_mix = vec![
        (V::PshDropAll, 0.3),
        (V::DataDropRst { n: 1 }, 0.25),
        (V::DataDropAll, 0.2),
        (V::PshRst, 0.15),
        (V::DataDropRstAck { n: 1 }, 0.1),
    ];
    ru.policy.syn_rules = vec![(V::SynDropAll, 0.05), (V::SynRst { n: 1 }, 0.025)];
    ru.policy.fw_rules = vec![(V::FirewallRstAck, 0.035), (V::FirewallRst, 0.02)];
    ru.policy.coverage = vec![
        (C::HobbiesInterests, 0.28),
        (C::News, 0.3),
        (C::SocialMedia, 0.35),
        (C::Business, 0.029),
        (C::Advertisements, 0.074),
    ];
    ru.policy.affinity = vec![(C::HobbiesInterests, 2.0)];
    ru.policy.overblock_substrings = vec!["wn.com".to_owned()];
    w.push(ru);

    let mut pk = base("PK", 1.6, 5, 0.2, 10, 0.35, 0.3);
    pk.policy.dpi_blanket = 0.145;
    pk.policy.dpi_mix = vec![
        (V::DataDropAll, 0.5),
        (V::DataDropRst { n: 1 }, 0.28),
        (V::DataDropRst { n: 2 }, 0.1),
        (V::PshRst, 0.12),
    ];
    pk.policy.syn_rules = vec![(V::SynDropAll, 0.06)];
    pk.policy.coverage = vec![(C::AdultThemes, 0.8), (C::SocialMedia, 0.3), (C::News, 0.2)];
    pk.policy.overblock_substrings = vec!["wn.com".to_owned()];
    w.push(pk);

    let mut ni = base("NI", 0.12, -6, 0.05, 3, 0.6, 0.35);
    ni.policy.syn_rules = vec![(V::SynDropAll, 0.12)];
    ni.policy.dpi_blanket = 0.10;
    ni.policy.dpi_mix = vec![(V::DataDropRst { n: 1 }, 0.6), (V::DataDropAll, 0.4)];
    ni.policy.fw_rules = vec![(V::FirewallRstAck, 0.05)];
    w.push(ni);

    let mut ua = base("UA", 0.9, 2, 0.25, 14, 0.25, 0.25);
    ua.policy.fw_rules = vec![(V::FirewallRstAck, 0.16), (V::FirewallRst, 0.015)];
    ua.policy.dpi_blanket = 0.04;
    ua.policy.dpi_mix = vec![(V::DataDropRst { n: 1 }, 0.6), (V::PshRst, 0.4)];
    ua.policy.syn_rules = vec![(V::SynDropAll, 0.03)];
    ua.policy.coverage = vec![(C::News, 0.2), (C::SocialMedia, 0.25)];
    w.push(ua);

    let mut bd = base("BD", 1.2, 6, 0.1, 8, 0.4, 0.35);
    bd.policy.dpi_blanket = 0.11;
    bd.policy.dpi_mix = vec![(V::DataDropAll, 0.5), (V::DataDropRst { n: 1 }, 0.5)];
    bd.policy.syn_rules = vec![(V::SynDropAll, 0.07)];
    bd.policy.coverage = vec![(C::AdultThemes, 0.7), (C::Gaming, 0.2)];
    w.push(bd);

    let mut mx = base("MX", 2.2, -6, 0.35, 12, 0.3, 0.25);
    mx.policy.syn_rules = vec![(V::SynDropAll, 0.065), (V::SynRst { n: 1 }, 0.025)];
    mx.policy.fw_rules = vec![(V::FirewallRstAck, 0.06), (V::FirewallRst, 0.02)];
    mx.policy.dpi_blanket = 0.03;
    mx.policy.dpi_mix = vec![(V::PshRstAck, 0.5), (V::DataDropRst { n: 1 }, 0.5)];
    mx.policy.coverage = vec![
        (C::Advertisements, 0.126),
        (C::Technology, 0.034),
        (C::Business, 0.029),
    ];
    mx.policy.affinity = vec![(C::Advertisements, 1.8)];
    w.push(mx);

    let mut ir = base("IR", 1.4, 3, 0.12, 9, 0.85, 0.25);
    ir.policy.syn_rules = vec![(V::SynRst { n: 1 }, 0.025), (V::SynDropAll, 0.02)];
    ir.policy.dpi_blanket = 0.11;
    ir.policy.dpi_mix = vec![
        (V::DataDropAll, 0.45),
        (V::DataDropRstAck { n: 1 }, 0.28),
        (V::DataDropRstAck { n: 2 }, 0.17),
        (V::PshRstAck, 0.10),
    ];
    ir.policy.coverage = vec![
        (C::ContentServers, 0.30),
        (C::Technology, 0.022),
        (C::Business, 0.014),
        (C::SocialMedia, 0.6),
        (C::News, 0.4),
    ];
    ir.policy.affinity = vec![(C::ContentServers, 2.5), (C::Technology, 4.0)];
    ir.policy.diurnal_amp = 0.7; // the paper notes high variability in Iran
    w.push(ir);

    for (code, weight, tz, rate) in [
        ("OM", 0.15, 4, 0.20),
        ("DJ", 0.03, 3, 0.19),
        ("AZ", 0.25, 4, 0.18),
        ("AE", 0.5, 4, 0.17),
        ("SD", 0.2, 2, 0.16),
    ] {
        let mut s = base(code, weight, tz, 0.1, 4, 0.7, 0.3);
        s.policy.dpi_blanket = rate;
        s.policy.dpi_mix = vec![
            (V::DataDropRstAck { n: 1 }, 0.5),
            (V::DataDropAll, 0.3),
            (V::PshRstAck, 0.2),
        ];
        s.policy.syn_rules = vec![(V::SynDropAll, 0.02)];
        s.policy.coverage = vec![(C::AdultThemes, 0.9)];
        w.push(s);
    }

    let mut cn = base("CN", 6.0, 8, 0.3, 18, 0.9, 0.3);
    cn.policy.syn_rules = vec![(V::SynRstBoth, 0.022), (V::SynDropAll, 0.022)];
    cn.policy.dpi_blanket = 0.012;
    cn.policy.dpi_enforce = 0.95;
    cn.policy.dpi_mix = vec![
        (V::GfwDoubleRstAck, 0.42),
        (V::GfwMixed, 0.25),
        (V::PshRst, 0.15),
        (V::ZeroAckPair, 0.12),
        (V::PshDropAll, 0.06),
    ];
    cn.policy.coverage = vec![
        (C::AdultThemes, 0.51),
        (C::Education, 0.213),
        (C::ContentServers, 0.031),
        (C::News, 0.08),
        (C::SocialMedia, 0.10),
    ];
    cn.policy.affinity = vec![
        (C::AdultThemes, 0.45),
        (C::ContentServers, 2.0),
        (C::Education, 1.0),
        (C::News, 0.5),
        (C::SocialMedia, 0.5),
    ];
    w.push(cn);

    let mut by = base("BY", 0.3, 3, 0.1, 4, 0.7, 0.25);
    by.policy.dpi_blanket = 0.11;
    by.policy.dpi_mix = vec![(V::DataDropRst { n: 1 }, 0.6), (V::DataDropAll, 0.4)];
    by.policy.syn_rules = vec![(V::SynDropAll, 0.03)];
    w.push(by);

    for (code, weight, tz, rate) in [
        ("RW", 0.05, 2, 0.135),
        ("EG", 1.2, 2, 0.125),
        ("YE", 0.12, 3, 0.125),
        ("AF", 0.12, 5, 0.115),
        ("LA", 0.06, 7, 0.11),
        ("MM", 0.3, 7, 0.11),
        ("IQ", 0.5, 3, 0.10),
        ("KW", 0.2, 3, 0.09),
    ] {
        let mut s = base(code, weight, tz, 0.08, 5, 0.5, 0.3);
        s.policy.dpi_blanket = rate;
        s.policy.dpi_mix = vec![
            (V::DataDropAll, 0.45),
            (V::DataDropRstAck { n: 1 }, 0.40),
            (V::PshRst, 0.15),
        ];
        s.policy.syn_rules = vec![(V::SynDropAll, 0.03), (V::SynRstAck { n: 1 }, 0.006)];
        s.policy.coverage = vec![(C::AdultThemes, 0.8), (C::SocialMedia, 0.2)];
        w.push(s);
    }

    // ---- Near and below the global average ------------------------------
    let mut tr = base("TR", 1.8, 3, 0.25, 12, 0.3, 0.25);
    tr.policy.dpi_blanket = 0.078;
    tr.policy.dpi_mix = vec![(V::DataDropRst { n: 1 }, 0.65), (V::PshRst, 0.35)];
    tr.policy.syn_rules = vec![(V::SynDropAll, 0.025)];
    tr.policy.coverage = vec![(C::AdultThemes, 0.5), (C::News, 0.15)];
    w.push(tr);

    let mut bh = base("BH", 0.08, 3, 0.1, 3, 0.7, 0.3);
    bh.policy.dpi_blanket = 0.09;
    bh.policy.dpi_mix = vec![(V::DataDropRstAck { n: 1 }, 0.7), (V::DataDropAll, 0.3)];
    w.push(bh);

    let mut et = base("ET", 0.2, 3, 0.05, 2, 0.8, 0.35);
    et.policy.dpi_blanket = 0.08;
    et.policy.dpi_mix = vec![(V::DataDropAll, 0.6), (V::DataDropRst { n: 1 }, 0.4)];
    w.push(et);

    let mut in_ = base("IN", 9.0, 5, 0.6, 22, 0.35, 0.3);
    in_.policy.dpi_mix = vec![
        (V::DataDropAll, 0.4),
        (V::DataDropRst { n: 1 }, 0.35),
        (V::PshRst, 0.13),
        (V::PshRstAck, 0.12),
    ];
    in_.policy.syn_rules = vec![
        (V::SynDropAll, 0.025),
        (V::SynRst { n: 1 }, 0.015),
        (V::SynRstAck { n: 1 }, 0.004),
    ];
    in_.policy.dpi_blanket = 0.02;
    in_.policy.coverage = vec![
        (C::AdultThemes, 0.183),
        (C::Chat, 0.034),
        (C::ContentServers, 0.024),
    ];
    in_.policy.affinity = vec![
        (C::AdultThemes, 1.4),
        (C::Chat, 1.7),
        (C::ContentServers, 1.2),
    ];
    w.push(in_);

    for (code, weight, tz, rate) in [
        ("HN", 0.1, -6, 0.06),
        ("ER", 0.01, 3, 0.06),
        ("PS", 0.1, 2, 0.055),
        ("MY", 0.8, 8, 0.05),
        ("TH", 1.1, 7, 0.048),
    ] {
        let mut s = base(code, weight, tz, 0.15, 6, 0.5, 0.3);
        s.policy.dpi_blanket = rate;
        s.policy.dpi_mix = vec![
            (V::DataDropAll, 0.55),
            (V::PshRst, 0.25),
            (V::SameAckBurst { n: 2 }, 0.2),
        ];
        s.policy.coverage = vec![(C::AdultThemes, 0.5)];
        w.push(s);
    }

    let mut kr = base("KR", 1.5, 9, 0.35, 6, 0.45, 0.2);
    kr.policy.dpi_mix = vec![
        (V::AckGuessBurst { n: 3 }, 0.65),
        (V::ZeroAckPair, 0.15),
        (V::SameAckBurst { n: 2 }, 0.1),
        (V::PshRst, 0.1),
    ];
    kr.policy.dpi_blanket = 0.015;
    kr.policy.coverage = vec![
        (C::AdultThemes, 0.376),
        (C::Gaming, 0.015),
        (C::LoginScreens, 0.305),
    ];
    kr.policy.affinity = vec![
        (C::AdultThemes, 0.8),
        (C::Gaming, 2.0),
        (C::LoginScreens, 2.0),
    ];
    w.push(kr);

    let mut vn = base("VN", 1.5, 7, 0.3, 8, 0.4, 0.3);
    vn.policy.dpi_blanket = 0.04;
    vn.policy.dpi_mix = vec![
        (V::DataDropAll, 0.5),
        (V::PshRst, 0.3),
        (V::SameAckBurst { n: 2 }, 0.2),
    ];
    vn.policy.coverage = vec![(C::News, 0.25)];
    w.push(vn);

    let mut ve = base("VE", 0.4, -4, 0.1, 5, 0.5, 0.3);
    ve.policy.dpi_blanket = 0.035;
    ve.policy.dpi_mix = vec![(V::DataDropAll, 0.5), (V::DataDropRst { n: 1 }, 0.5)];
    ve.policy.coverage = vec![(C::News, 0.3)];
    w.push(ve);

    // ---- Low-tampering large markets ------------------------------------
    for (code, weight, tz, v6, fw_ra, fw_r) in [
        ("GB", 3.0, 0, 0.4, 0.022, 0.012),
        ("SY", 0.15, 2, 0.05, 0.018, 0.010),
        ("US", 14.0, -6, 0.45, 0.020, 0.012),
        ("DE", 3.5, 1, 0.55, 0.016, 0.010),
        ("BR", 3.5, -3, 0.4, 0.020, 0.010),
        ("JP", 3.0, 9, 0.45, 0.012, 0.007),
        ("FR", 2.5, 1, 0.45, 0.016, 0.009),
        ("IT", 1.8, 1, 0.35, 0.018, 0.009),
        ("CA", 1.5, -5, 0.4, 0.016, 0.009),
        ("AU", 1.2, 10, 0.35, 0.016, 0.009),
        ("NL", 1.0, 1, 0.5, 0.014, 0.008),
        ("ES", 1.5, 1, 0.45, 0.018, 0.009),
        ("PL", 1.0, 1, 0.35, 0.016, 0.009),
        ("SE", 0.8, 1, 0.45, 0.012, 0.007),
        ("CZ", 0.5, 1, 0.35, 0.014, 0.008),
        ("SG", 0.6, 8, 0.35, 0.016, 0.009),
        ("RO", 0.6, 2, 0.3, 0.016, 0.009),
    ] {
        let mut s = base(code, weight, tz, v6, 15, 0.2, 0.2);
        s.policy.fw_rules = vec![(V::FirewallRstAck, fw_ra), (V::FirewallRst, fw_r)];
        // Copyright/enterprise blocking of a thin slice of domains.
        s.policy.dpi_blanket = 0.004;
        s.policy.dpi_mix = vec![(V::PshRst, 0.3), (V::DataDropAll, 0.7)];
        s.policy.coverage = vec![
            (C::ContentServers, 0.008),
            (C::Business, 0.005),
            (C::Technology, 0.005),
        ];
        w.push(s);
    }

    // Mid-size rest-of-world markets with light firewalling.
    for (code, weight, tz) in [
        ("ID", 2.2, 7),
        ("NG", 0.8, 1),
        ("ZA", 0.6, 2),
        ("CO", 0.8, -5),
        ("AR", 0.9, -3),
        ("CL", 0.6, -4),
        ("PH", 1.0, 8),
    ] {
        let mut s = base(code, weight, tz, 0.2, 8, 0.4, 0.3);
        s.policy.fw_rules = vec![(V::FirewallRstAck, 0.020)];
        s.policy.dpi_blanket = 0.020;
        s.policy.dpi_mix = vec![(V::DataDropAll, 0.5), (V::PshRst, 0.5)];
        s.policy.coverage = vec![(C::AdultThemes, 0.3)];
        w.push(s);
    }

    // Figure 7a outliers: Sri Lanka tampers far less on IPv6; Kenya far
    // more.
    let mut lk = base("LK", 0.3, 5, 0.3, 4, 0.6, 0.3);
    lk.country.ipv6_tamper_mult = 0.45;
    lk.policy.dpi_blanket = 0.37;
    lk.policy.dpi_mix = vec![
        (V::DataDropRst { n: 1 }, 0.5),
        (V::DataDropRst { n: 2 }, 0.1),
        (V::DataDropAll, 0.25),
        (V::DataDropRstAck { n: 1 }, 0.15),
    ];
    lk.policy.syn_rules = vec![(V::SynDropAll, 0.02)];
    w.push(lk);

    let mut ke = base("KE", 0.3, 3, 0.25, 4, 0.6, 0.3);
    ke.country.ipv6_tamper_mult = 2.0;
    ke.policy.dpi_blanket = 0.20;
    ke.policy.dpi_mix = vec![(V::DataDropRstAck { n: 1 }, 0.6), (V::DataDropAll, 0.4)];
    w.push(ke);

    // North Korea: negligible, tightly controlled traffic that is already
    // whitelisted — the lowest bar in Figure 4.
    let mut kp = base("KP", 0.005, 9, 0.0, 1, 1.0, 0.5);
    kp.policy.fw_rules = vec![(V::FirewallRst, 0.002)];
    w.push(kp);

    w
}

/// Index of a country code within [`world_spec`] output.
pub fn country_index(world: &[CountrySpec], code: &str) -> Option<u16> {
    world
        .iter()
        .position(|s| s.country.code == code)
        .map(|i| i as u16)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn world_has_all_figure4_countries() {
        let world = world_spec();
        for code in [
            "TM", "PE", "UZ", "CU", "SA", "KZ", "RU", "PK", "NI", "UA", "BD", "MX", "IR", "OM",
            "DJ", "AZ", "AE", "SD", "CN", "BY", "RW", "EG", "YE", "AF", "LA", "MM", "IQ", "KW",
            "TR", "BH", "ET", "IN", "HN", "ER", "PS", "MY", "TH", "KR", "VN", "VE", "GB", "SY",
            "US", "DE", "KP",
        ] {
            assert!(
                country_index(&world, code).is_some(),
                "missing country {code}"
            );
        }
    }

    #[test]
    fn codes_are_unique() {
        let world = world_spec();
        let mut codes: Vec<&str> = world.iter().map(|s| s.country.code.as_str()).collect();
        codes.sort_unstable();
        let n = codes.len();
        codes.dedup();
        assert_eq!(codes.len(), n);
    }

    #[test]
    fn probabilities_are_sane() {
        for spec in world_spec() {
            let p = &spec.policy;
            let syn: f64 = p.syn_rules.iter().map(|(_, r)| r).sum();
            let fw: f64 = p.fw_rules.iter().map(|(_, r)| r).sum();
            assert!(
                (0.0..0.5).contains(&syn),
                "{}: syn {syn}",
                spec.country.code
            );
            assert!((0.0..0.5).contains(&fw), "{}: fw {fw}", spec.country.code);
            assert!((0.0..=1.0).contains(&p.dpi_blanket));
            assert!((0.0..=1.0).contains(&p.dpi_enforce));
            for (_, cov) in &p.coverage {
                assert!((0.0..=1.0).contains(cov));
            }
            // Benign anomalies are decided by an independent draw, so only
            // the per-stage tamper rates need to stay below 1 (a saturated
            // blanket ban is legitimate — Turkmenistan's HTTP filter).
            let total = syn + fw;
            assert!(
                total < 0.6,
                "{}: syn+fw {total} too large",
                spec.country.code
            );
        }
    }

    #[test]
    fn benign_rates_leave_room_for_clean_traffic() {
        let b = BenignRates::default();
        assert!(b.total() < 0.3, "benign total {}", b.total());
    }

    #[test]
    fn turkmenistan_is_http_only() {
        let world = world_spec();
        let tm = &world[country_index(&world, "TM").unwrap() as usize];
        assert_eq!(tm.policy.dpi_filter, ProtoFilter::HttpOnly);
        assert!(tm.policy.dpi_blanket > 0.8);
        assert!(tm.policy.overblock_substrings.iter().any(|s| s == "wn.com"));
    }
}
