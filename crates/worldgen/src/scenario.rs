//! Scenario overlays: time-varying policy changes layered on top of the
//! static world table.
//!
//! The only scripted scenario is the paper's §5.6 case study — Iran's
//! response to the September 2022 protests: tampering escalates sharply
//! from the first days, is concentrated on two mobile ISPs, and peaks in
//! the (late) evening hours, dominated by ClientHello dropping
//! (`⟨SYN; ACK → ∅⟩`), post-handshake RST+ACK injection, and `⟨SYN → RST⟩`.

use crate::countries::{Asn, CountryIdx};
use tamper_middlebox::Vendor;

/// Weighted vendor rules contributed by a scenario overlay.
pub type VendorRates = Vec<(Vendor, f64)>;

/// Which scenario a world runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Scenario {
    /// The two-week January 2023 global measurement window.
    #[default]
    Standard,
    /// The 17-day September 2022 Iran window (Figure 8): only Iranian
    /// traffic, with an escalating, evening-peaked overlay on two mobile
    /// ISPs.
    IranProtest,
}

impl Scenario {
    /// Extra (SYN-stage, DPI-stage) rules contributed by the scenario for
    /// a session at `day` (since scenario start), local hour `lh`, from
    /// `asn` in `country`. Returns empty overlays for [`Scenario::Standard`].
    pub fn overlay(
        &self,
        day: u64,
        lh: u32,
        asn: Asn,
        country: CountryIdx,
    ) -> (VendorRates, VendorRates) {
        match self {
            Scenario::Standard => (Vec::new(), Vec::new()),
            Scenario::IranProtest => {
                // Escalation: near-zero at the protest onset, full force
                // from the third day onward.
                let ramp = (day as f64 / 2.0).clamp(0.08, 1.0);
                // Blocking peaks in the evening (16:00–24:00 local), as the
                // paper observes.
                let evening = if (16..24).contains(&lh) {
                    1.0 + 1.0 * ((lh as f64 - 16.0) / 7.0)
                } else if lh < 2 {
                    1.4
                } else {
                    0.3
                };
                // The two mobile ISPs (the country's two largest ASes in
                // our model) carry the brunt of it.
                let as_local = asn.0 - u32::from(country) * 1000;
                let isp = if as_local < 2 { 1.6 } else { 0.25 };
                let k = ramp * evening * isp;
                let syn = vec![(Vendor::SynRst { n: 1 }, 0.07 * k)];
                let dpi = vec![
                    (Vendor::DataDropAll, 0.30 * k),
                    (Vendor::DataDropRstAck { n: 1 }, 0.12 * k),
                ];
                (syn, dpi)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_overlay_is_empty() {
        let (s, d) = Scenario::Standard.overlay(5, 20, Asn(12_000), 12);
        assert!(s.is_empty() && d.is_empty());
    }

    #[test]
    fn iran_overlay_ramps_up() {
        let early: f64 = Scenario::IranProtest
            .overlay(0, 20, Asn(0), 0)
            .1
            .iter()
            .map(|(_, r)| r)
            .sum();
        let late: f64 = Scenario::IranProtest
            .overlay(10, 20, Asn(0), 0)
            .1
            .iter()
            .map(|(_, r)| r)
            .sum();
        assert!(late > early, "late {late} ≤ early {early}");
    }

    #[test]
    fn evening_peaks_exceed_morning() {
        let evening: f64 = Scenario::IranProtest
            .overlay(10, 21, Asn(0), 0)
            .1
            .iter()
            .map(|(_, r)| r)
            .sum();
        let morning: f64 = Scenario::IranProtest
            .overlay(10, 9, Asn(0), 0)
            .1
            .iter()
            .map(|(_, r)| r)
            .sum();
        assert!(evening > 2.0 * morning);
    }

    #[test]
    fn mobile_isps_dominate() {
        let mobile: f64 = Scenario::IranProtest
            .overlay(10, 21, Asn(1), 0)
            .1
            .iter()
            .map(|(_, r)| r)
            .sum();
        let other: f64 = Scenario::IranProtest
            .overlay(10, 21, Asn(7), 0)
            .1
            .iter()
            .map(|(_, r)| r)
            .sum();
        assert!(mobile > 3.0 * other);
    }
}
