//! Loadable world configurations: serialize the calibrated world table to
//! JSON and load custom worlds back — the mechanism for running the
//! pipeline against *your* hypothesis about a country's censorship
//! apparatus rather than ours.
//!
//! The schema is an array of country objects; see
//! [`world_to_json`] output (or `tamperscope world-spec --full`) for a
//! complete, loadable example.

use crate::countries::Country;
use crate::domains::Category;
use crate::json::{Json, JsonError};
use crate::policy::{CountrySpec, Policy, ProtoFilter};
use std::fmt;
use tamper_middlebox::Vendor;

/// World-configuration loading error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    /// What was wrong, with enough context to find it.
    pub message: String,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "world config error: {}", self.message)
    }
}

impl std::error::Error for ConfigError {}

impl From<JsonError> for ConfigError {
    fn from(e: JsonError) -> ConfigError {
        ConfigError {
            message: e.to_string(),
        }
    }
}

fn err<T>(message: impl Into<String>) -> Result<T, ConfigError> {
    Err(ConfigError {
        message: message.into(),
    })
}

// ---------------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------------

fn rates_to_json(rates: &[(Vendor, f64)]) -> Json {
    Json::Arr(
        rates
            .iter()
            .map(|(v, r)| {
                Json::Obj(vec![
                    ("vendor".into(), Json::Str(v.as_config_str())),
                    ("rate".into(), Json::Num(*r)),
                ])
            })
            .collect(),
    )
}

fn categories_to_json(entries: &[(Category, f64)], value_key: &str) -> Json {
    Json::Arr(
        entries
            .iter()
            .map(|(c, v)| {
                Json::Obj(vec![
                    ("category".into(), Json::Str(c.label().to_owned())),
                    (value_key.into(), Json::Num(*v)),
                ])
            })
            .collect(),
    )
}

fn policy_to_json(p: &Policy) -> Json {
    let filter = match p.dpi_filter {
        ProtoFilter::Any => "any",
        ProtoFilter::HttpOnly => "http-only",
        ProtoFilter::TlsOnly => "tls-only",
    };
    Json::Obj(vec![
        ("syn_rules".into(), rates_to_json(&p.syn_rules)),
        ("dpi_blanket".into(), Json::Num(p.dpi_blanket)),
        ("dpi_filter".into(), Json::Str(filter.to_owned())),
        ("dpi_enforce".into(), Json::Num(p.dpi_enforce)),
        ("dpi_mix".into(), rates_to_json(&p.dpi_mix)),
        ("fw_rules".into(), rates_to_json(&p.fw_rules)),
        (
            "coverage".into(),
            categories_to_json(&p.coverage, "coverage"),
        ),
        (
            "affinity".into(),
            categories_to_json(&p.affinity, "multiplier"),
        ),
        (
            "overblock_substrings".into(),
            Json::Arr(
                p.overblock_substrings
                    .iter()
                    .map(|s| Json::Str(s.clone()))
                    .collect(),
            ),
        ),
        ("diurnal_amp".into(), Json::Num(p.diurnal_amp)),
        ("weekend_drop".into(), Json::Num(p.weekend_drop)),
    ])
}

/// Serialize a world to the loadable JSON schema.
pub fn world_to_json(world: &[CountrySpec]) -> String {
    let arr = Json::Arr(
        world
            .iter()
            .map(|spec| {
                let c = &spec.country;
                Json::Obj(vec![
                    ("code".into(), Json::Str(c.code.clone())),
                    ("weight".into(), Json::Num(c.weight)),
                    (
                        "tz_offset_hours".into(),
                        Json::Num(f64::from(c.tz_offset_hours)),
                    ),
                    ("ipv6_share".into(), Json::Num(c.ipv6_share)),
                    ("n_ases".into(), Json::Num(c.n_ases as f64)),
                    ("centralization".into(), Json::Num(c.centralization)),
                    ("http_share".into(), Json::Num(c.http_share)),
                    ("ipv6_tamper_mult".into(), Json::Num(c.ipv6_tamper_mult)),
                    ("syn_payload_mult".into(), Json::Num(c.syn_payload_mult)),
                    ("policy".into(), policy_to_json(&spec.policy)),
                ])
            })
            .collect(),
    );
    arr.to_compact_string()
}

// ---------------------------------------------------------------------------
// Deserialization
// ---------------------------------------------------------------------------

fn get_f64(obj: &Json, key: &str, ctx: &str) -> Result<f64, ConfigError> {
    obj.get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| ConfigError {
            message: format!("{ctx}: missing or non-numeric \"{key}\""),
        })
}

fn get_f64_or(obj: &Json, key: &str, default: f64) -> f64 {
    obj.get(key).and_then(Json::as_f64).unwrap_or(default)
}

fn rates_from_json(v: Option<&Json>, ctx: &str) -> Result<Vec<(Vendor, f64)>, ConfigError> {
    let Some(arr) = v.and_then(Json::as_array) else {
        return Ok(Vec::new());
    };
    let mut out = Vec::with_capacity(arr.len());
    for item in arr {
        let vendor_str = item
            .get("vendor")
            .and_then(Json::as_str)
            .ok_or_else(|| ConfigError {
                message: format!("{ctx}: rule missing \"vendor\""),
            })?;
        let vendor = Vendor::parse_config(vendor_str).ok_or_else(|| ConfigError {
            message: format!("{ctx}: unknown vendor \"{vendor_str}\""),
        })?;
        let rate = get_f64(item, "rate", ctx)?;
        if !(rate >= 0.0 && rate.is_finite()) {
            return err(format!("{ctx}: rate {rate} must be a non-negative number"));
        }
        out.push((vendor, rate));
    }
    Ok(out)
}

fn categories_from_json(
    v: Option<&Json>,
    value_key: &str,
    ctx: &str,
) -> Result<Vec<(Category, f64)>, ConfigError> {
    let Some(arr) = v.and_then(Json::as_array) else {
        return Ok(Vec::new());
    };
    let mut out = Vec::with_capacity(arr.len());
    for item in arr {
        let label = item
            .get("category")
            .and_then(Json::as_str)
            .ok_or_else(|| ConfigError {
                message: format!("{ctx}: entry missing \"category\""),
            })?;
        let category = Category::from_label(label).ok_or_else(|| ConfigError {
            message: format!("{ctx}: unknown category \"{label}\""),
        })?;
        out.push((category, get_f64(item, value_key, ctx)?));
    }
    Ok(out)
}

fn policy_from_json(v: Option<&Json>, ctx: &str) -> Result<Policy, ConfigError> {
    let Some(obj) = v else {
        return Ok(Policy {
            diurnal_amp: 0.45,
            weekend_drop: 0.15,
            dpi_enforce: 0.9,
            ..Default::default()
        });
    };
    let filter = match obj.get("dpi_filter").and_then(Json::as_str) {
        None | Some("any") => ProtoFilter::Any,
        Some("http-only") => ProtoFilter::HttpOnly,
        Some("tls-only") => ProtoFilter::TlsOnly,
        Some(other) => return err(format!("{ctx}: unknown dpi_filter \"{other}\"")),
    };
    let overblock = obj
        .get("overblock_substrings")
        .and_then(Json::as_array)
        .map(|items| {
            items
                .iter()
                .filter_map(|i| i.as_str().map(str::to_owned))
                .collect()
        })
        .unwrap_or_default();
    Ok(Policy {
        syn_rules: rates_from_json(obj.get("syn_rules"), ctx)?,
        dpi_blanket: get_f64_or(obj, "dpi_blanket", 0.0),
        dpi_filter: filter,
        dpi_enforce: get_f64_or(obj, "dpi_enforce", 0.9),
        dpi_mix: {
            // dpi_mix entries use "rate" as a relative weight. A country
            // whose DPI can fire needs at least one vendor; default to
            // request-dropping.
            let mut mix = rates_from_json(obj.get("dpi_mix"), ctx)?;
            let coverage_present = obj
                .get("coverage")
                .and_then(Json::as_array)
                .is_some_and(|a| !a.is_empty());
            if mix.is_empty() && (get_f64_or(obj, "dpi_blanket", 0.0) > 0.0 || coverage_present) {
                mix = vec![(Vendor::DataDropAll, 1.0)];
            }
            mix
        },
        fw_rules: rates_from_json(obj.get("fw_rules"), ctx)?,
        coverage: categories_from_json(obj.get("coverage"), "coverage", ctx)?,
        affinity: categories_from_json(obj.get("affinity"), "multiplier", ctx)?,
        overblock_substrings: overblock,
        diurnal_amp: get_f64_or(obj, "diurnal_amp", 0.45),
        weekend_drop: get_f64_or(obj, "weekend_drop", 0.15),
    })
}

/// Load a world from the JSON schema produced by [`world_to_json`].
pub fn world_from_json(text: &str) -> Result<Vec<CountrySpec>, ConfigError> {
    let root = Json::parse(text)?;
    let Some(entries) = root.as_array() else {
        return err("top level must be an array of countries");
    };
    if entries.is_empty() {
        return err("world must contain at least one country");
    }
    let mut world = Vec::with_capacity(entries.len());
    for (i, entry) in entries.iter().enumerate() {
        let code = entry
            .get("code")
            .and_then(Json::as_str)
            .ok_or_else(|| ConfigError {
                message: format!("country #{i}: missing \"code\""),
            })?
            .to_owned();
        let ctx = format!("country {code}");
        let weight = get_f64(entry, "weight", &ctx)?;
        if weight <= 0.0 {
            return err(format!("{ctx}: weight must be positive"));
        }
        let n_ases = entry
            .get("n_ases")
            .and_then(Json::as_u64)
            .unwrap_or(4)
            .max(1) as usize;
        let country = Country {
            code,
            weight,
            tz_offset_hours: entry
                .get("tz_offset_hours")
                .and_then(Json::as_i64)
                .unwrap_or(0) as i32,
            ipv6_share: get_f64_or(entry, "ipv6_share", 0.25),
            n_ases,
            centralization: get_f64_or(entry, "centralization", 0.5),
            http_share: get_f64_or(entry, "http_share", 0.25),
            ipv6_tamper_mult: get_f64_or(entry, "ipv6_tamper_mult", 1.0),
            syn_payload_mult: get_f64_or(entry, "syn_payload_mult", 1.0),
        };
        let policy = policy_from_json(entry.get("policy"), &ctx)?;
        world.push(CountrySpec { country, policy });
    }
    Ok(world)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::world_spec;

    #[test]
    fn calibrated_world_round_trips() {
        let world = world_spec();
        let text = world_to_json(&world);
        let loaded = world_from_json(&text).expect("round trip");
        assert_eq!(loaded.len(), world.len());
        for (a, b) in world.iter().zip(&loaded) {
            assert_eq!(a.country.code, b.country.code);
            assert!((a.country.weight - b.country.weight).abs() < 1e-12);
            assert_eq!(a.country.n_ases, b.country.n_ases);
            assert_eq!(a.policy.dpi_filter, b.policy.dpi_filter);
            assert!((a.policy.dpi_blanket - b.policy.dpi_blanket).abs() < 1e-12);
            assert_eq!(a.policy.syn_rules, b.policy.syn_rules);
            assert_eq!(a.policy.dpi_mix, b.policy.dpi_mix);
            assert_eq!(a.policy.fw_rules, b.policy.fw_rules);
            assert_eq!(a.policy.coverage, b.policy.coverage);
            assert_eq!(a.policy.overblock_substrings, b.policy.overblock_substrings);
        }
    }

    #[test]
    fn minimal_country_uses_defaults() {
        let world = world_from_json(r#"[{"code":"XX","weight":1}]"#).expect("minimal world loads");
        assert_eq!(world.len(), 1);
        assert_eq!(world[0].country.code, "XX");
        assert_eq!(world[0].country.n_ases, 4);
        assert_eq!(world[0].policy.dpi_blanket, 0.0);
        assert!(world[0].policy.syn_rules.is_empty());
    }

    #[test]
    fn custom_policy_parses() {
        let text = r#"[{
            "code": "ZZ", "weight": 2, "tz_offset_hours": -5,
            "http_share": 0.4,
            "policy": {
                "syn_rules": [{"vendor": "SynDropAll", "rate": 0.1}],
                "dpi_blanket": 0.3,
                "dpi_filter": "http-only",
                "dpi_mix": [
                    {"vendor": "DataDropRst(2)", "rate": 0.7},
                    {"vendor": "GfwMixed", "rate": 0.3}
                ],
                "coverage": [{"category": "Adult Themes", "coverage": 0.5}],
                "overblock_substrings": ["wn.com"]
            }
        }]"#;
        let world = world_from_json(text).unwrap();
        let p = &world[0].policy;
        assert_eq!(p.dpi_filter, ProtoFilter::HttpOnly);
        assert_eq!(p.syn_rules, vec![(Vendor::SynDropAll, 0.1)]);
        assert_eq!(
            p.dpi_mix,
            vec![(Vendor::DataDropRst { n: 2 }, 0.7), (Vendor::GfwMixed, 0.3)]
        );
        assert_eq!(p.coverage, vec![(Category::AdultThemes, 0.5)]);
        assert_eq!(p.overblock_substrings, vec!["wn.com".to_owned()]);
    }

    #[test]
    fn bad_configs_rejected_with_context() {
        for (text, needle) in [
            (r#"{"code":"X"}"#, "must be an array"),
            (r#"[]"#, "at least one"),
            (r#"[{"weight":1}]"#, "missing \"code\""),
            (r#"[{"code":"X","weight":0}]"#, "positive"),
            (
                r#"[{"code":"X","weight":1,"policy":{"syn_rules":[{"vendor":"Bogus","rate":0.1}]}}]"#,
                "unknown vendor",
            ),
            (
                r#"[{"code":"X","weight":1,"policy":{"syn_rules":[{"vendor":"PshRst","rate":-0.5}]}}]"#,
                "non-negative",
            ),
            (
                r#"[{"code":"X","weight":1,"policy":{"coverage":[{"category":"Nope","coverage":0.5}]}}]"#,
                "unknown category",
            ),
            (
                r#"[{"code":"X","weight":1,"policy":{"dpi_filter":"sideways"}}]"#,
                "unknown dpi_filter",
            ),
            ("[{", "JSON error"),
        ] {
            let e = world_from_json(text).expect_err(text);
            assert!(
                e.to_string().contains(needle),
                "{text}: expected \"{needle}\" in \"{e}\""
            );
        }
    }
}
