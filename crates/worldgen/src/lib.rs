#![warn(missing_docs)]

//! # tamper-worldgen
//!
//! The world model: a calibrated synthetic substitute for the proprietary
//! CDN dataset the paper measured. It assembles per-connection sessions —
//! country, AS, client behaviour, domain, protocol, time of day — runs
//! them through `tamper-netsim` paths that may carry `tamper-middlebox`
//! vendors, applies the `tamper-capture` collection constraints, and
//! streams out [`LabeledFlow`]s carrying ground truth for evaluation.
//!
//! Calibration lives in [`policy`]: every country's tampering rates,
//! vendor mixes, and blocked categories, traceable to the paper's reported
//! observations (see DESIGN.md's substitution table).
//!
//! ## Layout
//!
//! - [`countries`] — country/AS registry helpers.
//! - [`domains`] — categorized domain catalog.
//! - [`policy`] — the calibrated world table and benign-anomaly rates.
//! - [`meta`] — ground-truth labels ([`LabeledFlow`]).
//! - [`scenario`] — time-varying overlays (the Iran 2022 case study).
//! - [`driver`] — the [`WorldSim`] session generator.
//! - [`testlists`] — synthetic Tranco/Majestic/GreatFire/Citizen Lab lists.
//!
//! ## Example
//!
//! ```
//! use tamper_worldgen::{WorldConfig, WorldSim};
//!
//! let sim = WorldSim::new(WorldConfig {
//!     sessions: 200,
//!     days: 1,
//!     catalog_size: 300,
//!     ..Default::default()
//! });
//! let mut flows = 0;
//! sim.run(|labeled| {
//!     assert!(labeled.flow.packets.len() <= 10);
//!     flows += 1;
//! });
//! assert!(flows >= 190);
//! ```

pub mod config;
pub mod countries;
pub mod domains;
pub mod driver;
pub mod json;
pub mod meta;
pub mod policy;
pub mod scenario;
pub mod testlists;

pub use config::{world_from_json, world_to_json, ConfigError};
pub use countries::{local_hour, pick_asn, Asn, Country, CountryIdx};
pub use domains::{Category, Domain, DomainCatalog, DomainId};
pub use driver::{
    world_fingerprint, WorldConfig, WorldSim, FIREWALL_KEYWORD, FIREWALL_USER_AGENT,
    JAN12_2023_UNIX, SEP13_2022_UNIX,
};
pub use json::{Json, JsonError};
pub use meta::{BenignKind, GroundTruth, LabeledFlow, SessionMeta};
pub use policy::{country_index, BenignRates, CountrySpec, Policy, ProtoFilter};
pub use scenario::Scenario;
pub use testlists::{generate_lists, TestList, TestLists};
