//! Synthetic test lists with the documented biases of the real ones
//! (paper §5.5 / Table 3):
//!
//! - **Tranco / Majestic** tiers are popularity-ranked: larger tiers cover
//!   more tampered domains, but regionally blocked (globally unpopular)
//!   domains fall outside even large tiers. Majestic's link-graph ranking
//!   under-represents adult and streaming content, so it performs worse.
//! - **GreatFire** is curated around Chinese blocking and lags reality
//!   (only a sample of actually blocked domains, plus stale entries).
//! - **Citizen Lab** lists are small, hand-curated, news/social-heavy;
//!   the per-country lists are tiny.
//!
//! Sizes are scaled to the synthetic catalog (≈4,000 domains vs the
//! paper's millions); the *relative* tiering mirrors the paper's
//! 1K/10K/100K/1M structure.

use crate::domains::{Category, DomainCatalog};
use crate::driver::WorldSim;
use crate::policy::country_index;
use std::collections::{HashMap, HashSet};
use tamper_netsim::splitmix64;

/// A named test list of domain names.
#[derive(Debug, Clone)]
pub struct TestList {
    /// Paper row name (e.g. `Tranco_10K`).
    pub name: String,
    /// Member domain names.
    pub entries: HashSet<String>,
}

impl TestList {
    /// Exact eTLD+1 membership.
    pub fn contains(&self, domain: &str) -> bool {
        self.entries.contains(domain)
    }

    /// Substring matching (Table 3's best-case rows): the tampered domain
    /// matches if it contains a list entry or is contained in one — the
    /// relation over-blocking induces.
    pub fn substring_match(&self, domain: &str) -> bool {
        self.entries
            .iter()
            .any(|e| domain.contains(e.as_str()) || e.contains(domain))
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// The complete set of synthetic lists.
pub struct TestLists {
    /// Global lists, in Table 3 row order.
    pub fixed: Vec<TestList>,
    /// Per-country Citizen Lab lists, keyed by country index.
    pub citizenlab_country: HashMap<u16, TestList>,
}

fn det01(seed: u64, a: u64, b: u64) -> f64 {
    (splitmix64(seed ^ a.rotate_left(17) ^ b.wrapping_mul(0x2545_F491_4F6C_DD1D)) % 1_000_000)
        as f64
        / 1_000_000.0
}

fn popularity_tier(
    catalog: &DomainCatalog,
    seed: u64,
    size: usize,
    rank_noise: u32,
    penalty: impl Fn(Category) -> u32,
) -> HashSet<String> {
    let mut scored: Vec<(u32, &str)> = catalog
        .iter()
        .map(|d| {
            let noise = (splitmix64(seed ^ u64::from(d.id)) % u64::from(rank_noise.max(1))) as u32;
            (d.global_rank + noise + penalty(d.category), d.name.as_str())
        })
        .collect();
    scored.sort_unstable();
    scored
        .into_iter()
        .take(size)
        .map(|(_, n)| n.to_owned())
        .collect()
}

/// Build every list for a given world.
pub fn generate_lists(sim: &WorldSim) -> TestLists {
    let catalog = sim.catalog();
    let seed = sim.config().seed ^ 0x7E57_1157;
    let n = catalog.len() as usize;
    let mut fixed = Vec::new();

    // Tranco tiers: sizes scaled as 1% / 3.75% / 15% / 60% of the catalog,
    // mirroring the paper's 1K / 10K / 100K / 1M against millions.
    for (label, frac) in [
        ("Tranco_1K", 0.008),
        ("Tranco_10K", 0.03),
        ("Tranco_100K", 0.11),
        ("Tranco_1M", 0.42),
    ] {
        fixed.push(TestList {
            name: label.to_owned(),
            entries: popularity_tier(catalog, seed ^ 0x7A, (frac * n as f64) as usize, 500, |_| 0),
        });
    }
    // Majestic tiers: link-graph ranking — noisier, and adult/streaming
    // content is systematically demoted.
    for (label, frac) in [
        ("Majestic_1K", 0.008),
        ("Majestic_10K", 0.03),
        ("Majestic_100K", 0.11),
        ("Majestic_1M", 0.42),
    ] {
        fixed.push(TestList {
            name: label.to_owned(),
            entries: popularity_tier(catalog, seed ^ 0x3B, (frac * n as f64) as usize, 900, |c| {
                match c {
                    Category::AdultThemes | Category::Streaming => 2_500,
                    Category::Advertisements => 1_200,
                    _ => 0,
                }
            }),
        });
    }

    // GreatFire: a curated sample of domains blocked in China plus stale
    // entries that are not blocked (or no longer exist).
    let world = sim.world();
    let cn = country_index(world, "CN");
    let mut greatfire_all = HashSet::new();
    if let Some(cn) = cn {
        for id in sim.blocked_domains(cn) {
            let d = catalog.get(id);
            // Curated lists record canonical domains, not every variant.
            if d.parent.is_some() {
                continue;
            }
            if det01(seed ^ 0x6F, u64::from(cn), u64::from(id)) < 0.10 {
                greatfire_all.insert(d.name.clone());
            }
        }
    }
    // Stale padding: random unblocked domains.
    for d in catalog.iter() {
        if det01(seed ^ 0x57A1E, 0, u64::from(d.id)) < 0.02 {
            greatfire_all.insert(d.name.clone());
        }
    }
    let greatfire_30d: HashSet<String> = greatfire_all
        .iter()
        .filter(|name| det01(seed ^ 0x30D, 0, splitmix64(name.len() as u64 * 131)) < 0.3)
        .cloned()
        .collect();
    fixed.push(TestList {
        name: "Greatfire_all".to_owned(),
        entries: greatfire_all,
    });
    fixed.push(TestList {
        name: "Greatfire_30d".to_owned(),
        entries: greatfire_30d,
    });

    // Citizen Lab: small, hand-curated, news/social/chat-heavy sample of
    // domains blocked *anywhere*, plus a "global" head subset and tiny
    // per-country lists.
    let mut citizenlab = HashSet::new();
    let mut citizenlab_country: HashMap<u16, TestList> = HashMap::new();
    for (ci, _) in world.iter().enumerate() {
        let ci = ci as u16;
        let mut per_country = HashSet::new();
        for id in sim.blocked_domains(ci) {
            let d = catalog.get(id);
            if d.parent.is_some() {
                continue; // canonical names only
            }
            let bias = match d.category {
                Category::News | Category::SocialMedia | Category::Chat => 3.0,
                _ => 1.0,
            };
            if det01(seed ^ 0xC17, u64::from(ci), u64::from(id)) < 0.008 * bias {
                citizenlab.insert(d.name.clone());
            }
            if det01(seed ^ 0xC0C0, u64::from(ci), u64::from(id)) < 0.015 {
                per_country.insert(d.name.clone());
            }
        }
        citizenlab_country.insert(
            ci,
            TestList {
                name: "Citizenlab_country".to_owned(),
                entries: per_country,
            },
        );
    }
    // Curated lists carry the canonical over-blocked root domain; the
    // paper's substring rows exist precisely because collateral domains
    // contain such roots.
    citizenlab.insert("wn.com".to_owned());
    let citizenlab_global: HashSet<String> = citizenlab
        .iter()
        .filter(|name| {
            catalog
                .find_by_name(name)
                .map(|id| catalog.get(id).global_rank < catalog.len() / 5)
                .unwrap_or(false)
        })
        .cloned()
        .collect();
    fixed.push(TestList {
        name: "Citizenlab".to_owned(),
        entries: citizenlab,
    });
    fixed.push(TestList {
        name: "Citizenlab_global".to_owned(),
        entries: citizenlab_global,
    });

    TestLists {
        fixed,
        citizenlab_country,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{WorldConfig, WorldSim};

    fn small_sim() -> WorldSim {
        WorldSim::new(WorldConfig {
            sessions: 0,
            catalog_size: 1500,
            ..Default::default()
        })
    }

    #[test]
    fn tiers_are_nested_in_size() {
        let sim = small_sim();
        let lists = generate_lists(&sim);
        let get = |name: &str| lists.fixed.iter().find(|l| l.name == name).unwrap();
        assert!(get("Tranco_1K").len() < get("Tranco_10K").len());
        assert!(get("Tranco_10K").len() < get("Tranco_100K").len());
        assert!(get("Tranco_100K").len() < get("Tranco_1M").len());
        assert!(get("Majestic_1K").len() <= get("Majestic_10K").len());
    }

    #[test]
    fn greatfire_subset_relation() {
        let sim = small_sim();
        let lists = generate_lists(&sim);
        let all = lists
            .fixed
            .iter()
            .find(|l| l.name == "Greatfire_all")
            .unwrap();
        let d30 = lists
            .fixed
            .iter()
            .find(|l| l.name == "Greatfire_30d")
            .unwrap();
        assert!(d30.len() <= all.len());
        for e in &d30.entries {
            assert!(all.entries.contains(e));
        }
    }

    #[test]
    fn per_country_lists_exist() {
        let sim = small_sim();
        let lists = generate_lists(&sim);
        assert_eq!(lists.citizenlab_country.len(), sim.world().len());
    }

    #[test]
    fn substring_match_is_superset_of_exact() {
        let sim = small_sim();
        let lists = generate_lists(&sim);
        let tranco = &lists.fixed[3]; // Tranco_1M
        let mut exact = 0;
        let mut sub = 0;
        for d in sim.catalog().iter() {
            if tranco.contains(&d.name) {
                exact += 1;
            }
            if tranco.substring_match(&d.name) {
                sub += 1;
            }
        }
        assert!(sub >= exact);
        assert!(exact > 0);
    }

    #[test]
    fn deterministic() {
        let a = generate_lists(&small_sim());
        let b = generate_lists(&small_sim());
        for (x, y) in a.fixed.iter().zip(b.fixed.iter()) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.entries, y.entries);
        }
    }
}
