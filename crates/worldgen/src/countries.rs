//! Country and autonomous-system registry.
//!
//! Countries carry traffic weight, timezone (for diurnal curves), IPv6
//! share, and an AS population whose sizes follow a Zipf-like skew. The
//! `centralization` knob controls how uniformly the country's tampering
//! policy is enforced across its ASes — the paper's Figure 5 contrast
//! between centralized systems (China, Iran) and decentralized ones
//! (Russia, Ukraine, Pakistan).

use tamper_netsim::splitmix64;

/// Index of a country in the world registry.
pub type CountryIdx = u16;

/// Static properties of one country.
#[derive(Debug, Clone)]
pub struct Country {
    /// ISO 3166 alpha-2 code.
    pub code: String,
    /// Relative traffic weight (normalized by the registry).
    pub weight: f64,
    /// UTC offset in hours, for local-time diurnal behaviour.
    pub tz_offset_hours: i32,
    /// Fraction of connections over IPv6.
    pub ipv6_share: f64,
    /// Number of ASes originating traffic.
    pub n_ases: usize,
    /// 1.0 = every AS enforces the national policy identically;
    /// 0.0 = per-AS enforcement varies wildly.
    pub centralization: f64,
    /// Fraction of cleartext-HTTP (port 80) connections.
    pub http_share: f64,
    /// Multiplier on tampering rates for IPv6 connections (Fig 7a
    /// outliers: Sri Lanka < 1, Kenya > 1).
    pub ipv6_tamper_mult: f64,
    /// Multiplier on the SYN-payload-client share (§4.1). Turkmenistan's
    /// filtered HTTP population barely uses these optimizer apps.
    pub syn_payload_mult: f64,
}

/// A concrete AS within a country.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Asn(pub u32);

/// Pick an AS for a connection: AS sizes follow a Zipf(1.1) skew so one
/// or two ASes dominate (as in real eyeball markets).
pub fn pick_asn(country_idx: CountryIdx, n_ases: usize, u: f64) -> Asn {
    debug_assert!(n_ases > 0);
    // Inverse-CDF sample of P(i) ∝ 1/(i+1)^1.1 over 0..n_ases.
    let s = 1.1f64;
    let norm: f64 = (0..n_ases).map(|i| 1.0 / ((i + 1) as f64).powf(s)).sum();
    let mut acc = 0.0;
    for i in 0..n_ases {
        acc += (1.0 / ((i + 1) as f64).powf(s)) / norm;
        if u <= acc {
            return Asn(u32::from(country_idx) * 1000 + i as u32);
        }
    }
    Asn(u32::from(country_idx) * 1000 + (n_ases - 1) as u32)
}

/// Deterministic per-AS enforcement multiplier with mean ≈ 1.
///
/// Centralized countries get multipliers near 1 for every AS; decentralized
/// ones spread in [0, 2].
pub fn as_enforcement_multiplier(seed: u64, asn: Asn, centralization: f64) -> f64 {
    let u = (splitmix64(seed ^ 0xA5A5 ^ u64::from(asn.0)) % 10_000) as f64 / 10_000.0;
    let spread = (1.0 - centralization).clamp(0.0, 1.0);
    1.0 + spread * (2.0 * u - 1.0)
}

/// Local hour (0..24) for a UTC timestamp in a country.
pub fn local_hour(unix_secs: u64, tz_offset_hours: i32) -> u32 {
    let shifted = unix_secs as i64 + i64::from(tz_offset_hours) * 3600;
    ((shifted.rem_euclid(86_400)) / 3600) as u32
}

/// Day index (whole days since the scenario start).
pub fn day_index(unix_secs: u64, start_unix: u64) -> u64 {
    unix_secs.saturating_sub(start_unix) / 86_400
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn asn_pick_is_skewed_and_bounded() {
        let n = 10;
        let mut counts = vec![0u32; n];
        for k in 0..10_000 {
            let u = (k as f64 + 0.5) / 10_000.0;
            let Asn(a) = pick_asn(3, n, u);
            counts[(a - 3000) as usize] += 1;
        }
        assert!(counts[0] > counts[5], "AS sizes should be skewed");
        assert!(counts.iter().all(|&c| c > 0), "every AS gets some traffic");
        assert_eq!(counts.iter().sum::<u32>(), 10_000);
    }

    #[test]
    fn enforcement_multiplier_ranges() {
        // Fully centralized: exactly 1.
        let m = as_enforcement_multiplier(1, Asn(42), 1.0);
        assert!((m - 1.0).abs() < 1e-9);
        // Decentralized: within [0, 2], varies across ASes.
        let vals: Vec<f64> = (0..50)
            .map(|i| as_enforcement_multiplier(1, Asn(i), 0.0))
            .collect();
        assert!(vals.iter().all(|v| (0.0..=2.0).contains(v)));
        let spread = vals.iter().cloned().fold(f64::MIN, f64::max)
            - vals.iter().cloned().fold(f64::MAX, f64::min);
        assert!(spread > 0.5, "spread {spread}");
    }

    #[test]
    fn local_hour_wraps() {
        // 2023-01-12 00:00 UTC.
        let t = 1_673_481_600;
        assert_eq!(local_hour(t, 0), 0);
        assert_eq!(local_hour(t, 5), 5);
        assert_eq!(local_hour(t, -5), 19);
        assert_eq!(local_hour(t + 3 * 3600, 23), 2);
    }

    #[test]
    fn day_index_counts_days() {
        let start = 1_673_481_600;
        assert_eq!(day_index(start, start), 0);
        assert_eq!(day_index(start + 86_399, start), 0);
        assert_eq!(day_index(start + 86_400, start), 1);
    }
}
