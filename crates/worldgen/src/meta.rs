//! Session metadata: the ground-truth labels the world driver attaches to
//! every collected flow. The classifier never sees these; the analysis
//! layer uses them for aggregation keys (country, AS, protocol) exactly as
//! the paper used IP-geolocation and port numbers, and tests use the truth
//! labels for precision/recall.

use crate::countries::{Asn, CountryIdx};
use crate::domains::DomainId;
use tamper_capture::FlowRecord;
use tamper_middlebox::Vendor;
use tamper_netsim::TriggerStage;

/// Benign client behaviours that can mimic tampering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BenignKind {
    /// SYN-only scanner / flood residue / silent HE loser / vanished host.
    SilentSyn,
    /// ZMap-style scanner.
    Zmap,
    /// Happy-Eyeballs RST cancel.
    HappyEyeballsRst,
    /// Vanished after handshake ACK.
    VanishAck,
    /// Vanished after request.
    VanishReq,
    /// Vanished mid-response.
    VanishMid,
    /// User abort (RST) during first response.
    AbortOne,
    /// User abort (RST) after a second request.
    AbortTwo,
    /// FIN chased by RST, single request.
    FinRstOne,
    /// FIN chased by RST, two requests.
    FinRstTwo,
    /// Duplicate ACK then vanish.
    DupAck,
    /// SYN retransmissions with no ACK ever.
    MultiSyn,
    /// Stalls > 3 s mid-connection, then completes gracefully.
    StallOk,
}

impl BenignKind {
    /// All kinds, in a stable order.
    pub const ALL: [BenignKind; 13] = [
        BenignKind::SilentSyn,
        BenignKind::Zmap,
        BenignKind::HappyEyeballsRst,
        BenignKind::VanishAck,
        BenignKind::VanishReq,
        BenignKind::VanishMid,
        BenignKind::AbortOne,
        BenignKind::AbortTwo,
        BenignKind::FinRstOne,
        BenignKind::FinRstTwo,
        BenignKind::DupAck,
        BenignKind::MultiSyn,
        BenignKind::StallOk,
    ];

    /// Dense index for counters.
    pub fn index(self) -> usize {
        BenignKind::ALL.iter().position(|k| *k == self).unwrap()
    }

    /// Human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            BenignKind::SilentSyn => "SYN-only scanner / vanished host",
            BenignKind::Zmap => "ZMap scanner",
            BenignKind::HappyEyeballsRst => "Happy-Eyeballs RST cancel",
            BenignKind::VanishAck => "vanished after handshake",
            BenignKind::VanishReq => "vanished after request",
            BenignKind::VanishMid => "vanished mid-response",
            BenignKind::AbortOne => "user abort (first response)",
            BenignKind::AbortTwo => "user abort (second request)",
            BenignKind::FinRstOne => "FIN-then-RST (one request)",
            BenignKind::FinRstTwo => "FIN-then-RST (two requests)",
            BenignKind::DupAck => "duplicate ACK then vanish",
            BenignKind::MultiSyn => "SYN retransmissions, deaf client",
            BenignKind::StallOk => "slow-but-honest stall",
        }
    }
}

/// Ground truth about one session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GroundTruth {
    /// A normal, completed request.
    Clean,
    /// A benign anomaly of the given kind.
    Benign(BenignKind),
    /// A middlebox tampered: which vendor profile and at which stage it
    /// was configured to fire. (The stage actually reached can differ if
    /// the connection died earlier; netsim's `TamperEvent` records what
    /// really happened.)
    Tampered {
        /// Vendor profile deployed on the path.
        vendor: Vendor,
        /// Stage at which the middlebox actually fired, if it did.
        fired: Option<TriggerStage>,
    },
}

impl GroundTruth {
    /// True if a middlebox actually fired on this session.
    pub fn was_tampered(self) -> bool {
        matches!(self, GroundTruth::Tampered { fired: Some(_), .. })
    }
}

/// Metadata attached to every generated session.
#[derive(Debug, Clone)]
pub struct SessionMeta {
    /// Originating country (index into the world spec).
    pub country: CountryIdx,
    /// Originating AS.
    pub asn: Asn,
    /// True for IPv6 connections.
    pub ipv6: bool,
    /// True for cleartext HTTP (port 80).
    pub http: bool,
    /// The domain the client requested, if the session carries one.
    pub domain: Option<DomainId>,
    /// Wall-clock start (unix seconds).
    pub start_unix: u64,
    /// Ground truth.
    pub truth: GroundTruth,
}

/// A collected flow with its ground-truth labels.
#[derive(Debug, Clone)]
pub struct LabeledFlow {
    /// What the collection pipeline recorded (classifier input).
    pub flow: FlowRecord,
    /// Ground-truth labels (aggregation keys + truth).
    pub meta: SessionMeta,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tampered_truth_requires_fired() {
        let t = GroundTruth::Tampered {
            vendor: Vendor::PshRst,
            fired: Some(TriggerStage::FirstData),
        };
        assert!(t.was_tampered());
        let not_fired = GroundTruth::Tampered {
            vendor: Vendor::PshRst,
            fired: None,
        };
        assert!(!not_fired.was_tampered());
        assert!(!GroundTruth::Clean.was_tampered());
        assert!(!GroundTruth::Benign(BenignKind::Zmap).was_tampered());
    }
}
