#![warn(missing_docs)]

//! # tamper-wire
//!
//! Wire formats for the tamperscope project: IPv4/IPv6 and TCP header
//! parsing and emission, internet checksums, and minimal application-layer
//! parsers for the two cleartext protocols that deep-packet-inspection
//! middleboxes key on — the TLS ClientHello (Server Name Indication) and
//! HTTP/1.x requests (Host header, request line keywords).
//!
//! The crate is deliberately small and allocation-light: parsing borrows
//! from the input frame wherever possible, and emission writes into a
//! [`bytes::BytesMut`]. Emitted frames are genuine, checksummed IP/TCP
//! packets; they round-trip through [`Packet::parse`] and are accepted by
//! standard tooling when written to pcap files by the `tamper-capture`
//! crate.
//!
//! ## Layout
//!
//! - [`flags`] — the TCP flag byte as a typed bitset.
//! - [`checksum`] — the one's-complement internet checksum.
//! - [`reader`] — the bounds-checked cursor every parser reads through,
//!   so truncated or hostile input surfaces as [`WireError::Truncated`]
//!   instead of a panic.
//! - [`ipv4`], [`ipv6`] — network-layer headers.
//! - [`tcp`] — transport header plus the option kinds that matter for
//!   tampering analysis (MSS, window scale, SACK-permitted, timestamps).
//! - [`packet`] — a full frame (IP header + TCP header + payload) with a
//!   builder, parser, and emitter.
//! - [`tls`] — ClientHello construction and SNI extraction.
//! - [`http`] — HTTP/1.x request construction and parsing.

pub mod checksum;
pub mod error;
pub mod flags;
pub mod http;
pub mod ipv4;
pub mod ipv6;
pub mod packet;
pub mod reader;
pub mod tcp;
pub mod tls;

pub use error::WireError;
pub use flags::TcpFlags;
pub use ipv4::Ipv4Header;
pub use ipv6::Ipv6Header;
pub use packet::{IpHeader, Packet, PacketBuilder, PacketView};
pub use reader::Reader;
pub use tcp::{TcpHeader, TcpOption};

/// Result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, WireError>;
