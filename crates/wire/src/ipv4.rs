//! IPv4 header (RFC 791), without options.
//!
//! The Identification (IP-ID) and TTL fields matter enormously for this
//! project: the paper's §4.3 validation shows that injected packets come
//! from a different TCP/IP stack than the client's, betrayed by IP-ID and
//! TTL values far outside the client's sequence.

use crate::checksum::internet_checksum;
use crate::reader::Reader;
use crate::{Result, WireError};
use bytes::{BufMut, BytesMut};
use std::net::Ipv4Addr;

/// Length of the option-less IPv4 header we emit and accept.
pub const IPV4_HEADER_LEN: usize = 20;

/// An IPv4 header. Options are not supported (parsed headers with options
/// are rejected with [`WireError::BadLength`]); none of the traffic modelled
/// in this project carries IPv4 options.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ipv4Header {
    /// Differentiated services + ECN byte.
    pub dscp_ecn: u8,
    /// Total length of header + payload in bytes.
    pub total_len: u16,
    /// Identification field — the "IP-ID" used as injection evidence.
    pub identification: u16,
    /// True if the Don't Fragment bit is set (universal for TCP today).
    pub dont_fragment: bool,
    /// Time to live.
    pub ttl: u8,
    /// Payload protocol (6 = TCP).
    pub protocol: u8,
    /// Source address.
    pub src: Ipv4Addr,
    /// Destination address.
    pub dst: Ipv4Addr,
}

impl Ipv4Header {
    /// A TCP header template with sensible defaults; callers fill in
    /// addresses and per-packet fields.
    pub fn tcp_template(src: Ipv4Addr, dst: Ipv4Addr) -> Ipv4Header {
        Ipv4Header {
            dscp_ecn: 0,
            total_len: 0, // filled by the emitter
            identification: 0,
            dont_fragment: true,
            ttl: 64,
            protocol: 6,
            src,
            dst,
        }
    }

    /// Parse a header from the start of `data`, verifying the header
    /// checksum. Returns the header and the byte offset of the payload.
    pub fn parse(data: &[u8]) -> Result<(Ipv4Header, usize)> {
        let mut r = Reader::new(data);
        let hdr = r.take(IPV4_HEADER_LEN).map_err(|_| WireError::Truncated)?;
        let mut h = Reader::new(hdr);
        let b0 = h.u8()?;
        let version = b0 >> 4;
        if version != 4 {
            return Err(WireError::BadVersion(version));
        }
        let ihl = (b0 & 0x0F) as usize * 4;
        if ihl != IPV4_HEADER_LEN {
            // Options unsupported; IHL < 5 is illegal anyway.
            return Err(WireError::BadLength);
        }
        if internet_checksum(hdr) != 0 {
            return Err(WireError::BadChecksum);
        }
        let dscp_ecn = h.u8()?;
        let total_len = h.u16()?;
        if (total_len as usize) < IPV4_HEADER_LEN || (total_len as usize) > data.len() {
            return Err(WireError::BadLength);
        }
        let identification = h.u16()?;
        let flags_frag = h.u16()?;
        let ttl = h.u8()?;
        let protocol = h.u8()?;
        h.skip(2)?; // header checksum, verified above over the whole header
        let header = Ipv4Header {
            dscp_ecn,
            total_len,
            identification,
            dont_fragment: flags_frag & 0x4000 != 0,
            ttl,
            protocol,
            src: Ipv4Addr::from(h.array::<4>()?),
            dst: Ipv4Addr::from(h.array::<4>()?),
        };
        Ok((header, IPV4_HEADER_LEN))
    }

    /// Emit the header into `buf` with `payload_len` bytes of payload to
    /// follow; computes total length and header checksum.
    pub fn emit(&self, buf: &mut BytesMut, payload_len: usize) {
        // The sim never builds >64KiB datagrams; saturate rather than wrap
        // the on-wire total-length field if a caller ever does.
        let total = u16::try_from(IPV4_HEADER_LEN + payload_len).unwrap_or(u16::MAX);
        let start = buf.len();
        buf.put_u8(0x45); // version 4, IHL 5
        buf.put_u8(self.dscp_ecn);
        buf.put_u16(total);
        buf.put_u16(self.identification);
        buf.put_u16(if self.dont_fragment { 0x4000 } else { 0 });
        buf.put_u8(self.ttl);
        buf.put_u8(self.protocol);
        buf.put_u16(0); // checksum placeholder
        buf.put_slice(&self.src.octets());
        buf.put_slice(&self.dst.octets());
        // The emitter checksums the 20 bytes it just wrote; the emit path is
        // unreachable from capture bytes, so the index rule does not fire here.
        let ck = internet_checksum(&buf[start..start + IPV4_HEADER_LEN]);
        buf[start + 10..start + 12].copy_from_slice(&ck.to_be_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Ipv4Header {
        Ipv4Header {
            dscp_ecn: 0,
            total_len: 40,
            identification: 0xBEEF,
            dont_fragment: true,
            ttl: 57,
            protocol: 6,
            src: Ipv4Addr::new(203, 0, 113, 7),
            dst: Ipv4Addr::new(198, 51, 100, 1),
        }
    }

    #[test]
    fn round_trip() {
        let h = sample();
        let mut buf = BytesMut::new();
        h.emit(&mut buf, 20);
        buf.extend_from_slice(&[0u8; 20]);
        let (parsed, off) = Ipv4Header::parse(&buf).unwrap();
        assert_eq!(off, IPV4_HEADER_LEN);
        assert_eq!(parsed, Ipv4Header { total_len: 40, ..h });
    }

    #[test]
    fn rejects_truncated() {
        assert_eq!(Ipv4Header::parse(&[0x45; 10]), Err(WireError::Truncated));
    }

    #[test]
    fn rejects_wrong_version() {
        let mut buf = BytesMut::new();
        sample().emit(&mut buf, 0);
        buf[0] = 0x65;
        assert_eq!(Ipv4Header::parse(&buf), Err(WireError::BadVersion(6)));
    }

    #[test]
    fn rejects_bad_checksum() {
        let mut buf = BytesMut::new();
        sample().emit(&mut buf, 0);
        buf[10] ^= 0xFF;
        assert_eq!(Ipv4Header::parse(&buf), Err(WireError::BadChecksum));
    }

    #[test]
    fn rejects_options() {
        let mut buf = BytesMut::new();
        sample().emit(&mut buf, 0);
        buf[0] = 0x46; // IHL = 6 words
        assert_eq!(Ipv4Header::parse(&buf), Err(WireError::BadLength));
    }

    #[test]
    fn rejects_total_len_beyond_buffer() {
        let mut buf = BytesMut::new();
        sample().emit(&mut buf, 100); // claims 120 bytes total
                                      // ...but provide no payload at all.
                                      // Checksum is valid for the emitted header, so the length check fires.
        assert_eq!(Ipv4Header::parse(&buf), Err(WireError::BadLength));
    }

    #[test]
    fn emitted_header_checksum_verifies() {
        let mut buf = BytesMut::new();
        sample().emit(&mut buf, 0);
        assert_eq!(internet_checksum(&buf[..IPV4_HEADER_LEN]), 0);
    }
}
