//! IPv6 fixed header (RFC 8200). Extension headers are not supported — the
//! simulated traffic never carries them, and the classifier only needs the
//! hop limit (the IPv6 analogue of the TTL evidence) and the addresses.

use crate::reader::Reader;
use crate::{Result, WireError};
use bytes::{BufMut, BytesMut};
use std::net::Ipv6Addr;

/// Length of the fixed IPv6 header.
pub const IPV6_HEADER_LEN: usize = 40;

/// An IPv6 fixed header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ipv6Header {
    /// Traffic class byte.
    pub traffic_class: u8,
    /// Flow label (20 bits).
    pub flow_label: u32,
    /// Payload length in bytes (excludes this header).
    pub payload_len: u16,
    /// Next header (6 = TCP).
    pub next_header: u8,
    /// Hop limit — plays the role TTL plays in IPv4 evidence.
    pub hop_limit: u8,
    /// Source address.
    pub src: Ipv6Addr,
    /// Destination address.
    pub dst: Ipv6Addr,
}

impl Ipv6Header {
    /// A TCP header template with sensible defaults.
    pub fn tcp_template(src: Ipv6Addr, dst: Ipv6Addr) -> Ipv6Header {
        Ipv6Header {
            traffic_class: 0,
            flow_label: 0,
            payload_len: 0, // filled by the emitter
            next_header: 6,
            hop_limit: 64,
            src,
            dst,
        }
    }

    /// Parse a header from the start of `data`. Returns the header and the
    /// byte offset of the payload.
    pub fn parse(data: &[u8]) -> Result<(Ipv6Header, usize)> {
        if data.len() < IPV6_HEADER_LEN {
            return Err(WireError::Truncated);
        }
        let mut r = Reader::new(data);
        let b0 = r.u8()?;
        let version = b0 >> 4;
        if version != 6 {
            return Err(WireError::BadVersion(version));
        }
        let b1 = r.u8()?;
        let flow_lo = r.u16()?;
        let payload_len = r.u16()?;
        if IPV6_HEADER_LEN + payload_len as usize > data.len() {
            return Err(WireError::BadLength);
        }
        let next_header = r.u8()?;
        let hop_limit = r.u8()?;
        let src: [u8; 16] = r.array()?;
        let dst: [u8; 16] = r.array()?;
        let header = Ipv6Header {
            traffic_class: (b0 << 4) | (b1 >> 4),
            flow_label: (u32::from(b1 & 0x0F) << 16) | u32::from(flow_lo),
            payload_len,
            next_header,
            hop_limit,
            src: Ipv6Addr::from(src),
            dst: Ipv6Addr::from(dst),
        };
        Ok((header, IPV6_HEADER_LEN))
    }

    /// Emit the header into `buf` with `payload_len` payload bytes to follow.
    pub fn emit(&self, buf: &mut BytesMut, payload_len: usize) {
        buf.put_u8(0x60 | (self.traffic_class >> 4));
        buf.put_u8((self.traffic_class << 4) | ((self.flow_label >> 16) as u8 & 0x0F));
        buf.put_u16((self.flow_label & 0xFFFF) as u16);
        buf.put_u16(u16::try_from(payload_len).unwrap_or(u16::MAX));
        buf.put_u8(self.next_header);
        buf.put_u8(self.hop_limit);
        buf.put_slice(&self.src.octets());
        buf.put_slice(&self.dst.octets());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Ipv6Header {
        Ipv6Header {
            traffic_class: 0,
            flow_label: 0xABCDE,
            payload_len: 20,
            next_header: 6,
            hop_limit: 58,
            src: Ipv6Addr::new(0x2001, 0xdb8, 0, 0, 0, 0, 0, 1),
            dst: Ipv6Addr::new(0x2001, 0xdb8, 0, 0, 0, 0, 0, 2),
        }
    }

    #[test]
    fn round_trip() {
        let h = sample();
        let mut buf = BytesMut::new();
        h.emit(&mut buf, 20);
        buf.extend_from_slice(&[0u8; 20]);
        let (parsed, off) = Ipv6Header::parse(&buf).unwrap();
        assert_eq!(off, IPV6_HEADER_LEN);
        assert_eq!(parsed, h);
    }

    #[test]
    fn rejects_truncated() {
        assert_eq!(Ipv6Header::parse(&[0x60; 30]), Err(WireError::Truncated));
    }

    #[test]
    fn rejects_wrong_version() {
        let mut buf = BytesMut::new();
        sample().emit(&mut buf, 0);
        buf[0] = 0x45;
        assert_eq!(Ipv6Header::parse(&buf), Err(WireError::BadVersion(4)));
    }

    #[test]
    fn rejects_payload_len_beyond_buffer() {
        let mut buf = BytesMut::new();
        sample().emit(&mut buf, 64);
        assert_eq!(Ipv6Header::parse(&buf), Err(WireError::BadLength));
    }

    #[test]
    fn flow_label_is_20_bits() {
        let mut h = sample();
        h.flow_label = 0xFFFFF;
        let mut buf = BytesMut::new();
        h.emit(&mut buf, 0);
        let (parsed, _) = Ipv6Header::parse(&buf).unwrap();
        assert_eq!(parsed.flow_label, 0xFFFFF);
    }
}
