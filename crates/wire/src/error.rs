//! Error type for wire-format parsing.

use std::fmt;

/// Errors produced while parsing or emitting wire formats.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// The input buffer ended before the structure was complete.
    Truncated,
    /// The IP version nibble was neither 4 nor 6.
    BadVersion(u8),
    /// A length field was inconsistent with the buffer (e.g. IHL < 5,
    /// data offset < 5, or a total length exceeding the frame).
    BadLength,
    /// A checksum did not verify.
    BadChecksum,
    /// The IP payload is not TCP.
    UnsupportedProtocol(u8),
    /// An application-layer structure was malformed.
    Malformed(&'static str),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "buffer truncated"),
            WireError::BadVersion(v) => write!(f, "bad IP version {v}"),
            WireError::BadLength => write!(f, "inconsistent length field"),
            WireError::BadChecksum => write!(f, "checksum mismatch"),
            WireError::UnsupportedProtocol(p) => {
                write!(f, "unsupported IP protocol {p} (only TCP is handled)")
            }
            WireError::Malformed(what) => write!(f, "malformed {what}"),
        }
    }
}

impl std::error::Error for WireError {}
