//! The TCP flag byte as a typed bitset.
//!
//! Tampering signatures are sequences of flag combinations, so this type is
//! central to the whole project: it is `Copy`, hashable, ordered, and has a
//! human-readable `Display` that matches the paper's notation (`SYN`,
//! `RST+ACK`, `PSH+ACK`, ...).

use std::fmt;
use std::ops::{BitAnd, BitOr, BitOrAssign, Not};

/// A set of TCP header flags.
///
/// The bit layout follows the TCP header byte (RFC 793 plus the ECN bits of
/// RFC 3168): `CWR ECE URG ACK PSH RST SYN FIN`, most significant first.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct TcpFlags(u8);

impl TcpFlags {
    /// No flags set.
    pub const EMPTY: TcpFlags = TcpFlags(0);
    /// Connection-teardown request (graceful).
    pub const FIN: TcpFlags = TcpFlags(0x01);
    /// Connection-open request.
    pub const SYN: TcpFlags = TcpFlags(0x02);
    /// Abortive reset.
    pub const RST: TcpFlags = TcpFlags(0x04);
    /// Push: deliver buffered data to the application.
    pub const PSH: TcpFlags = TcpFlags(0x08);
    /// Acknowledgement field is significant.
    pub const ACK: TcpFlags = TcpFlags(0x10);
    /// Urgent pointer is significant (rare in the wild, kept for fidelity).
    pub const URG: TcpFlags = TcpFlags(0x20);
    /// ECN echo.
    pub const ECE: TcpFlags = TcpFlags(0x40);
    /// Congestion window reduced.
    pub const CWR: TcpFlags = TcpFlags(0x80);

    /// `SYN+ACK`, the second step of the three-way handshake.
    pub const SYN_ACK: TcpFlags = TcpFlags(0x12);
    /// `RST+ACK`, the reset form commonly injected by middleboxes in
    /// response to an unsolicited or offending packet.
    pub const RST_ACK: TcpFlags = TcpFlags(0x14);
    /// `PSH+ACK`, the usual shape of a client data packet.
    pub const PSH_ACK: TcpFlags = TcpFlags(0x18);
    /// `FIN+ACK`, the usual shape of a graceful teardown segment.
    pub const FIN_ACK: TcpFlags = TcpFlags(0x11);

    /// Construct from the raw header byte.
    #[inline]
    pub const fn from_bits(bits: u8) -> TcpFlags {
        TcpFlags(bits)
    }

    /// The raw header byte.
    #[inline]
    pub const fn bits(self) -> u8 {
        self.0
    }

    /// True if every flag in `other` is also set in `self`.
    #[inline]
    pub const fn contains(self, other: TcpFlags) -> bool {
        self.0 & other.0 == other.0
    }

    /// True if any flag in `other` is set in `self`.
    #[inline]
    pub const fn intersects(self, other: TcpFlags) -> bool {
        self.0 & other.0 != 0
    }

    /// True if no flags are set.
    #[inline]
    pub const fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Convenience predicates used throughout classification.
    #[inline]
    pub const fn has_syn(self) -> bool {
        self.contains(TcpFlags::SYN)
    }
    /// True if the RST flag is set.
    #[inline]
    pub const fn has_rst(self) -> bool {
        self.contains(TcpFlags::RST)
    }
    /// True if the ACK flag is set.
    #[inline]
    pub const fn has_ack(self) -> bool {
        self.contains(TcpFlags::ACK)
    }
    /// True if the FIN flag is set.
    #[inline]
    pub const fn has_fin(self) -> bool {
        self.contains(TcpFlags::FIN)
    }
    /// True if the PSH flag is set.
    #[inline]
    pub const fn has_psh(self) -> bool {
        self.contains(TcpFlags::PSH)
    }

    /// True for a pure RST (no ACK) — the paper distinguishes `RST` from
    /// `RST+ACK` injections because different middlebox vendors emit
    /// different forms.
    #[inline]
    pub const fn is_pure_rst(self) -> bool {
        self.has_rst() && !self.has_ack()
    }

    /// True for `RST+ACK`.
    #[inline]
    pub const fn is_rst_ack(self) -> bool {
        self.has_rst() && self.has_ack()
    }
}

impl BitOr for TcpFlags {
    type Output = TcpFlags;
    #[inline]
    fn bitor(self, rhs: TcpFlags) -> TcpFlags {
        TcpFlags(self.0 | rhs.0)
    }
}

impl BitOrAssign for TcpFlags {
    #[inline]
    fn bitor_assign(&mut self, rhs: TcpFlags) {
        self.0 |= rhs.0;
    }
}

impl BitAnd for TcpFlags {
    type Output = TcpFlags;
    #[inline]
    fn bitand(self, rhs: TcpFlags) -> TcpFlags {
        TcpFlags(self.0 & rhs.0)
    }
}

impl Not for TcpFlags {
    type Output = TcpFlags;
    #[inline]
    fn not(self) -> TcpFlags {
        TcpFlags(!self.0)
    }
}

impl fmt::Display for TcpFlags {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return write!(f, "∅");
        }
        let names: [(TcpFlags, &str); 8] = [
            (TcpFlags::SYN, "SYN"),
            (TcpFlags::FIN, "FIN"),
            (TcpFlags::RST, "RST"),
            (TcpFlags::PSH, "PSH"),
            (TcpFlags::ACK, "ACK"),
            (TcpFlags::URG, "URG"),
            (TcpFlags::ECE, "ECE"),
            (TcpFlags::CWR, "CWR"),
        ];
        let mut first = true;
        for (flag, name) in names {
            if self.contains(flag) {
                if !first {
                    write!(f, "+")?;
                }
                write!(f, "{name}")?;
                first = false;
            }
        }
        Ok(())
    }
}

impl fmt::Debug for TcpFlags {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TcpFlags({self})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_bits_match_rfc793_layout() {
        assert_eq!(TcpFlags::FIN.bits(), 0x01);
        assert_eq!(TcpFlags::SYN.bits(), 0x02);
        assert_eq!(TcpFlags::RST.bits(), 0x04);
        assert_eq!(TcpFlags::PSH.bits(), 0x08);
        assert_eq!(TcpFlags::ACK.bits(), 0x10);
        assert_eq!(TcpFlags::URG.bits(), 0x20);
    }

    #[test]
    fn composite_constants() {
        assert_eq!(TcpFlags::SYN | TcpFlags::ACK, TcpFlags::SYN_ACK);
        assert_eq!(TcpFlags::RST | TcpFlags::ACK, TcpFlags::RST_ACK);
        assert_eq!(TcpFlags::PSH | TcpFlags::ACK, TcpFlags::PSH_ACK);
        assert_eq!(TcpFlags::FIN | TcpFlags::ACK, TcpFlags::FIN_ACK);
    }

    #[test]
    fn contains_and_intersects() {
        let f = TcpFlags::PSH_ACK;
        assert!(f.contains(TcpFlags::PSH));
        assert!(f.contains(TcpFlags::ACK));
        assert!(!f.contains(TcpFlags::SYN));
        assert!(f.intersects(TcpFlags::SYN | TcpFlags::ACK));
        assert!(!f.intersects(TcpFlags::SYN | TcpFlags::RST));
    }

    #[test]
    fn pure_rst_vs_rst_ack() {
        assert!(TcpFlags::RST.is_pure_rst());
        assert!(!TcpFlags::RST_ACK.is_pure_rst());
        assert!(TcpFlags::RST_ACK.is_rst_ack());
        assert!(!TcpFlags::RST.is_rst_ack());
        assert!(!TcpFlags::ACK.has_rst());
    }

    #[test]
    fn display_notation() {
        assert_eq!(TcpFlags::SYN.to_string(), "SYN");
        assert_eq!(TcpFlags::RST_ACK.to_string(), "RST+ACK");
        assert_eq!(TcpFlags::PSH_ACK.to_string(), "PSH+ACK");
        assert_eq!(TcpFlags::EMPTY.to_string(), "∅");
    }

    #[test]
    fn bit_ops() {
        let f = TcpFlags::SYN | TcpFlags::ACK;
        assert_eq!(f & TcpFlags::SYN, TcpFlags::SYN);
        assert_eq!((!f) & TcpFlags::SYN, TcpFlags::EMPTY);
        let mut g = TcpFlags::SYN;
        g |= TcpFlags::ACK;
        assert_eq!(g, TcpFlags::SYN_ACK);
    }
}
