//! Minimal TLS ClientHello handling: enough to build a realistic
//! ClientHello carrying a Server Name Indication (SNI) extension, and to
//! extract the SNI from one — which is exactly the visibility a censoring
//! middlebox (and this project's classifier) has into an HTTPS connection.
//!
//! TLS 1.3 with plain ClientHello is modelled; the record and handshake
//! framing follows RFC 8446 §4 and RFC 6066 §3 for server_name.

use crate::reader::Reader;
use crate::{Result, WireError};
use bytes::{BufMut, Bytes, BytesMut};

/// TLS record content type for handshake messages.
const CONTENT_TYPE_HANDSHAKE: u8 = 0x16;
/// Handshake message type for ClientHello.
const HANDSHAKE_CLIENT_HELLO: u8 = 0x01;
/// Extension number for server_name.
const EXT_SERVER_NAME: u16 = 0x0000;

/// A TLS length field: everything this builder measures is bounded by the
/// hello template plus a DNS-limited SNI, but saturate rather than wrap if
/// a caller ever hands something oversized.
fn len16(n: usize) -> u16 {
    u16::try_from(n).unwrap_or(u16::MAX)
}

/// Build a TLS 1.2-compatible ClientHello record carrying `sni` in a
/// server_name extension. The `random` bytes let callers derandomize.
///
/// ```
/// let hello = tamper_wire::tls::build_client_hello("example.com", [0u8; 32]);
/// assert!(tamper_wire::tls::is_client_hello(&hello));
/// assert_eq!(
///     tamper_wire::tls::parse_sni(&hello).unwrap().as_deref(),
///     Some("example.com"),
/// );
/// ```
pub fn build_client_hello(sni: &str, random: [u8; 32]) -> Bytes {
    // server_name extension body: list length, type 0 (host_name), name.
    let name = sni.as_bytes();
    // tamperlint: allow(hot-path-alloc) — the simulated client composes one owned ClientHello per flow
    let mut ext_body = BytesMut::with_capacity(5 + name.len());
    ext_body.put_u16(len16(3 + name.len())); // server name list length
    ext_body.put_u8(0); // name type: host_name
    ext_body.put_u16(len16(name.len()));
    ext_body.put_slice(name);

    // A small, realistic second extension so the hello isn't SNI-only:
    // supported_versions offering TLS 1.3 and 1.2.
    let supported_versions: &[u8] = &[0x04, 0x03, 0x04, 0x03, 0x03];

    let mut exts = BytesMut::new();
    exts.put_u16(EXT_SERVER_NAME);
    exts.put_u16(len16(ext_body.len()));
    exts.put_slice(&ext_body);
    exts.put_u16(0x002b); // supported_versions
    exts.put_u16(len16(supported_versions.len()));
    exts.put_slice(supported_versions);

    let cipher_suites: &[u16] = &[0x1301, 0x1302, 0x1303, 0xc02f];

    let mut body = BytesMut::new();
    body.put_u16(0x0303); // legacy_version TLS 1.2
    body.put_slice(&random);
    body.put_u8(32); // legacy_session_id length
    body.put_slice(&[0xAA; 32]);
    body.put_u16(len16(cipher_suites.len() * 2));
    for cs in cipher_suites {
        body.put_u16(*cs);
    }
    body.put_u8(1); // compression methods length
    body.put_u8(0); // null compression
    body.put_u16(len16(exts.len()));
    body.put_slice(&exts);

    // tamperlint: allow(hot-path-alloc) — the simulated client composes one owned ClientHello per flow
    let mut hs = BytesMut::with_capacity(body.len() + 4);
    hs.put_u8(HANDSHAKE_CLIENT_HELLO);
    hs.put_u8(0);
    hs.put_u16(len16(body.len())); // 24-bit length, high byte zero
    hs.put_slice(&body);

    // tamperlint: allow(hot-path-alloc) — the simulated client composes one owned ClientHello per flow
    let mut rec = BytesMut::with_capacity(hs.len() + 5);
    rec.put_u8(CONTENT_TYPE_HANDSHAKE);
    rec.put_u16(0x0301); // record legacy version
    rec.put_u16(len16(hs.len()));
    rec.put_slice(&hs);
    rec.freeze()
}

/// True if the payload starts like a TLS handshake record containing a
/// ClientHello. Used by middleboxes and the classifier to decide whether a
/// data packet is "the TLS request".
pub fn is_client_hello(payload: &[u8]) -> bool {
    payload.first() == Some(&CONTENT_TYPE_HANDSHAKE)
        && payload.get(1) == Some(&0x03)
        && payload.get(5) == Some(&HANDSHAKE_CLIENT_HELLO)
}

/// Extract the SNI host name from a ClientHello payload, if present and
/// well-formed. This is the middlebox's-eye view: no decryption, just the
/// cleartext extension.
pub fn parse_sni(payload: &[u8]) -> Result<Option<String>> {
    if !is_client_hello(payload) {
        return Err(WireError::Malformed("tls record"));
    }
    let mut rec = Reader::new(payload);
    rec.skip(3)?; // content type + record version
    let record_len = rec.u16()? as usize;
    let record = rec.take(record_len)?;
    // Handshake header: type(1) + len(3).
    let mut hs = Reader::new(record);
    hs.skip(1)?; // handshake type (checked by is_client_hello)
    let [l0, l1, l2] = hs.array()?;
    let hs_len = (usize::from(l0) << 16) | (usize::from(l1) << 8) | usize::from(l2);
    let body = hs.take(hs_len)?;

    let mut r = Reader::new(body);
    r.skip(2)?; // legacy_version
    r.skip(32)?; // random
    let sid_len = r.u8()? as usize;
    r.skip(sid_len)?;
    let cs_len = r.u16()? as usize;
    r.skip(cs_len)?;
    let comp_len = r.u8()? as usize;
    r.skip(comp_len)?;
    if r.is_empty() {
        return Ok(None); // no extensions block at all
    }
    let ext_total = r.u16()? as usize;
    let ext_end = r.pos() + ext_total;
    while r.pos() + 4 <= ext_end.min(body.len()) {
        let ext_type = r.u16()?;
        let ext_len = r.u16()? as usize;
        let ext = r.take(ext_len)?;
        if ext_type == EXT_SERVER_NAME {
            // list length(2) + type(1) + name length(2) + name
            if ext.len() < 5 {
                return Err(WireError::Malformed("sni extension"));
            }
            let mut e = Reader::new(ext);
            e.skip(2)?; // server name list length
            if e.u8()? != 0 {
                continue; // not a host_name entry
            }
            let name_len = e.u16()? as usize;
            let name = e.take(name_len)?;
            let s = std::str::from_utf8(name)
                .map_err(|_| WireError::Malformed("sni utf-8"))?
                // tamperlint: allow(hot-path-alloc) — the SNI string is the verdict-owned trigger domain; one bounded allocation per TLS flow
                .to_owned();
            return Ok(Some(s));
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_then_parse_sni() {
        let ch = build_client_hello("blocked.example.com", [7u8; 32]);
        assert!(is_client_hello(&ch));
        assert_eq!(
            parse_sni(&ch).unwrap().as_deref(),
            Some("blocked.example.com")
        );
    }

    #[test]
    fn sni_with_unicode_label_round_trips() {
        // IDNs appear on the wire in punycode, but parse must not crash on
        // any valid UTF-8 either.
        let ch = build_client_hello("xn--bcher-kva.example", [0u8; 32]);
        assert_eq!(
            parse_sni(&ch).unwrap().as_deref(),
            Some("xn--bcher-kva.example")
        );
    }

    #[test]
    fn non_tls_payload_rejected() {
        assert!(parse_sni(b"GET / HTTP/1.1\r\n\r\n").is_err());
        assert!(!is_client_hello(b"GET / HTTP/1.1\r\n"));
    }

    #[test]
    fn truncated_record_rejected() {
        let ch = build_client_hello("a.example", [0u8; 32]);
        for cut in [6, 10, 40, ch.len() - 1] {
            assert!(
                parse_sni(&ch[..cut]).is_err(),
                "cut at {cut} should not parse"
            );
        }
    }

    #[test]
    fn hello_without_sni_yields_none() {
        // Build a hello, then splice out the SNI extension by rebuilding
        // the extensions block with only supported_versions.
        let ch = build_client_hello("x.example", [0u8; 32]);
        // Simpler: craft a minimal hello with zero extensions length.
        let mut body = Vec::new();
        body.extend_from_slice(&[0x03, 0x03]);
        body.extend_from_slice(&[0u8; 32]);
        body.push(0); // empty session id
        body.extend_from_slice(&[0x00, 0x02, 0x13, 0x01]); // one suite
        body.extend_from_slice(&[0x01, 0x00]); // null compression
        body.extend_from_slice(&[0x00, 0x00]); // empty extensions
        let mut rec = Vec::new();
        rec.push(0x16);
        rec.extend_from_slice(&[0x03, 0x01]);
        rec.extend_from_slice(&((body.len() + 4) as u16).to_be_bytes());
        rec.push(0x01);
        rec.push(0);
        rec.extend_from_slice(&(body.len() as u16).to_be_bytes());
        rec.extend_from_slice(&body);
        assert_eq!(parse_sni(&rec).unwrap(), None);
        // And the full builder output still parses.
        assert!(parse_sni(&ch).unwrap().is_some());
    }

    #[test]
    fn first_bytes_look_like_tls() {
        let ch = build_client_hello("a.b", [1u8; 32]);
        assert_eq!(ch[0], 0x16);
        assert_eq!(&ch[1..3], &[0x03, 0x01]);
    }
}
