//! TCP header (RFC 793) with the option kinds relevant to tampering
//! analysis.
//!
//! Options matter for two reasons in the paper: (1) scanners like ZMap send
//! option-less SYNs, one of the three scanner heuristics in §4.2, and
//! (2) injected packets usually lack the option signature of the client's
//! real stack.

use crate::flags::TcpFlags;
use crate::reader::Reader;
use crate::{Result, WireError};
use bytes::{BufMut, BytesMut};

/// Minimum (option-less) TCP header length.
pub const TCP_HEADER_LEN: usize = 20;

/// A TCP option.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TcpOption {
    /// End of option list.
    Eol,
    /// Padding.
    Nop,
    /// Maximum segment size (SYN only).
    Mss(u16),
    /// Window scale shift (SYN only).
    WindowScale(u8),
    /// SACK permitted (SYN only).
    SackPermitted,
    /// Timestamps: TSval and TSecr.
    Timestamps {
        /// Sender timestamp value.
        tsval: u32,
        /// Echoed peer timestamp.
        tsecr: u32,
    },
    /// Any unrecognized option, kept verbatim.
    Unknown {
        /// Option kind byte.
        kind: u8,
        /// Option body (excluding kind and length bytes).
        data: Vec<u8>,
    },
}

impl TcpOption {
    /// Encoded length in bytes.
    pub fn wire_len(&self) -> usize {
        match self {
            TcpOption::Eol | TcpOption::Nop => 1,
            TcpOption::Mss(_) => 4,
            TcpOption::WindowScale(_) => 3,
            TcpOption::SackPermitted => 2,
            TcpOption::Timestamps { .. } => 10,
            TcpOption::Unknown { data, .. } => 2 + data.len(),
        }
    }
}

/// A TCP header plus its options.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TcpHeader {
    /// Source port.
    pub src_port: u16,
    /// Destination port (80 = HTTP, 443 = HTTPS throughout this project).
    pub dst_port: u16,
    /// Sequence number.
    pub seq: u32,
    /// Acknowledgement number (meaningful when ACK flag set; the
    /// `RST;RST₀` signature keys on injectors that set it to zero).
    pub ack: u32,
    /// Flag byte.
    pub flags: TcpFlags,
    /// Receive window.
    pub window: u16,
    /// Urgent pointer (always zero in practice).
    pub urgent: u16,
    /// Options, in wire order.
    pub options: Vec<TcpOption>,
}

impl TcpHeader {
    /// A header with all-zero numeric fields and no options.
    pub fn new(src_port: u16, dst_port: u16, flags: TcpFlags) -> TcpHeader {
        TcpHeader {
            src_port,
            dst_port,
            seq: 0,
            ack: 0,
            flags,
            window: 65535,
            urgent: 0,
            // tamperlint: allow(hot-path-alloc) — zero-capacity Vec; builders fill it per composed segment
            options: Vec::new(),
        }
    }

    /// Total header length including options, padded to a 4-byte multiple.
    pub fn header_len(&self) -> usize {
        let opt_len: usize = self.options.iter().map(TcpOption::wire_len).sum();
        TCP_HEADER_LEN + opt_len.div_ceil(4) * 4
    }

    /// Look up the MSS option, if present.
    pub fn mss(&self) -> Option<u16> {
        self.options.iter().find_map(|o| match o {
            TcpOption::Mss(v) => Some(*v),
            _ => None,
        })
    }

    /// True if the header carries no options at all — one of the scanner
    /// heuristics from the paper's §4.2.
    pub fn has_no_options(&self) -> bool {
        self.options.is_empty()
    }

    /// Parse a header (and options) from the start of `data`. Returns the
    /// header and the byte offset of the payload. The checksum is *not*
    /// verified here because it needs the IP pseudo-header; see
    /// [`crate::packet::Packet::parse`].
    pub fn parse(data: &[u8]) -> Result<(TcpHeader, usize)> {
        let mut r = Reader::new(data);
        let src_port = r.u16()?;
        let dst_port = r.u16()?;
        let seq = r.u32()?;
        let ack = r.u32()?;
        let off_byte = r.u8()?;
        let flags = TcpFlags::from_bits(r.u8()?);
        let window = r.u16()?;
        r.skip(2)?; // checksum: verified at the packet layer (pseudo-header)
        let urgent = r.u16()?;
        let data_offset = (off_byte >> 4) as usize * 4;
        if data_offset > data.len() {
            return Err(WireError::BadLength);
        }
        let opts_len = data_offset
            .checked_sub(TCP_HEADER_LEN)
            .ok_or(WireError::BadLength)?;
        let mut opts = Reader::new(r.take(opts_len)?);
        // tamperlint: allow(hot-path-alloc) — zero-capacity Vec: headers without options (the common case) never touch the heap
        let mut options = Vec::new();
        while !opts.is_empty() {
            let kind = opts.u8()?;
            match kind {
                0 => {
                    options.push(TcpOption::Eol);
                    break;
                }
                1 => options.push(TcpOption::Nop),
                _ => {
                    let len = opts
                        .u8()
                        .map_err(|_| WireError::Malformed("tcp option length"))?
                        as usize;
                    if len < 2 {
                        return Err(WireError::Malformed("tcp option length"));
                    }
                    let body = opts
                        .take(len - 2)
                        .map_err(|_| WireError::Malformed("tcp option length"))?;
                    let opt = match (kind, body) {
                        (2, &[a, b]) => TcpOption::Mss(u16::from_be_bytes([a, b])),
                        (3, &[s]) => TcpOption::WindowScale(s),
                        (4, &[]) => TcpOption::SackPermitted,
                        (8, &[a, b, c, d, e, f, g, h]) => TcpOption::Timestamps {
                            tsval: u32::from_be_bytes([a, b, c, d]),
                            tsecr: u32::from_be_bytes([e, f, g, h]),
                        },
                        _ => TcpOption::Unknown {
                            kind,
                            // tamperlint: allow(hot-path-alloc) — unknown-option payload (≤40 B) owned by the parsed header; rare on real traffic
                            data: body.to_vec(),
                        },
                    };
                    options.push(opt);
                }
            }
        }
        let header = TcpHeader {
            src_port,
            dst_port,
            seq,
            ack,
            flags,
            window,
            urgent,
            options,
        };
        Ok((header, data_offset))
    }

    /// Emit the header into `buf` with the checksum field zeroed; the caller
    /// computes and patches the checksum over the pseudo-header + segment.
    pub fn emit(&self, buf: &mut BytesMut) {
        let header_len = self.header_len();
        debug_assert!(header_len <= 60, "options overflow the data offset field");
        buf.put_u16(self.src_port);
        buf.put_u16(self.dst_port);
        buf.put_u32(self.seq);
        buf.put_u32(self.ack);
        buf.put_u8(((header_len / 4) as u8) << 4);
        buf.put_u8(self.flags.bits());
        buf.put_u16(self.window);
        buf.put_u16(0); // checksum placeholder
        buf.put_u16(self.urgent);
        let mut emitted = 0usize;
        for opt in &self.options {
            emitted += opt.wire_len();
            match opt {
                TcpOption::Eol => buf.put_u8(0),
                TcpOption::Nop => buf.put_u8(1),
                TcpOption::Mss(v) => {
                    buf.put_u8(2);
                    buf.put_u8(4);
                    buf.put_u16(*v);
                }
                TcpOption::WindowScale(s) => {
                    buf.put_u8(3);
                    buf.put_u8(3);
                    buf.put_u8(*s);
                }
                TcpOption::SackPermitted => {
                    buf.put_u8(4);
                    buf.put_u8(2);
                }
                TcpOption::Timestamps { tsval, tsecr } => {
                    buf.put_u8(8);
                    buf.put_u8(10);
                    buf.put_u32(*tsval);
                    buf.put_u32(*tsecr);
                }
                TcpOption::Unknown { kind, data } => {
                    buf.put_u8(*kind);
                    buf.put_u8((2 + data.len()) as u8);
                    buf.put_slice(data);
                }
            }
        }
        // Pad options to the 4-byte boundary implied by the data offset.
        for _ in emitted..header_len - TCP_HEADER_LEN {
            buf.put_u8(1); // NOP padding
        }
    }

    /// The standard option set a modern client stack puts on a SYN.
    pub fn standard_syn_options() -> Vec<TcpOption> {
        // tamperlint: allow(hot-path-alloc) — five-entry SYN option list, one per simulated connection open
        vec![
            TcpOption::Mss(1460),
            TcpOption::SackPermitted,
            TcpOption::Timestamps { tsval: 0, tsecr: 0 },
            TcpOption::Nop,
            TcpOption::WindowScale(7),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TcpHeader {
        TcpHeader {
            src_port: 40123,
            dst_port: 443,
            seq: 0x1234_5678,
            ack: 0x9ABC_DEF0,
            flags: TcpFlags::SYN,
            window: 64240,
            urgent: 0,
            options: TcpHeader::standard_syn_options(),
        }
    }

    #[test]
    fn round_trip_with_options() {
        let h = sample();
        let mut buf = BytesMut::new();
        h.emit(&mut buf);
        let (parsed, off) = TcpHeader::parse(&buf).unwrap();
        assert_eq!(off, h.header_len());
        assert_eq!(parsed.src_port, h.src_port);
        assert_eq!(parsed.seq, h.seq);
        assert_eq!(parsed.flags, h.flags);
        assert_eq!(parsed.mss(), Some(1460));
        // Padding NOPs may be appended but all real options survive.
        for opt in &h.options {
            assert!(parsed.options.contains(opt), "missing {opt:?}");
        }
    }

    #[test]
    fn round_trip_without_options() {
        let mut h = sample();
        h.options.clear();
        h.flags = TcpFlags::RST_ACK;
        let mut buf = BytesMut::new();
        h.emit(&mut buf);
        assert_eq!(buf.len(), TCP_HEADER_LEN);
        let (parsed, off) = TcpHeader::parse(&buf).unwrap();
        assert_eq!(off, TCP_HEADER_LEN);
        assert!(parsed.has_no_options());
        assert_eq!(parsed.flags, TcpFlags::RST_ACK);
    }

    #[test]
    fn header_len_is_padded() {
        let mut h = sample();
        h.options = vec![TcpOption::WindowScale(2)]; // 3 bytes -> pads to 4
        assert_eq!(h.header_len(), 24);
    }

    #[test]
    fn rejects_truncated() {
        assert_eq!(TcpHeader::parse(&[0u8; 10]), Err(WireError::Truncated));
    }

    #[test]
    fn rejects_bad_data_offset() {
        let mut buf = BytesMut::new();
        let mut h = sample();
        h.options.clear();
        h.emit(&mut buf);
        buf[12] = 0x30; // data offset 12 bytes < 20
        assert_eq!(TcpHeader::parse(&buf), Err(WireError::BadLength));
    }

    #[test]
    fn rejects_malformed_option_length() {
        let mut buf = BytesMut::new();
        let mut h = sample();
        h.options = vec![TcpOption::Mss(1460)];
        h.emit(&mut buf);
        buf[21] = 0; // MSS length byte -> 0, illegal
        assert_eq!(
            TcpHeader::parse(&buf),
            Err(WireError::Malformed("tcp option length"))
        );
    }

    #[test]
    fn unknown_options_round_trip() {
        let mut h = sample();
        h.options = vec![TcpOption::Unknown {
            kind: 254,
            data: vec![0xde, 0xad],
        }];
        let mut buf = BytesMut::new();
        h.emit(&mut buf);
        let (parsed, _) = TcpHeader::parse(&buf).unwrap();
        assert!(parsed.options.contains(&TcpOption::Unknown {
            kind: 254,
            data: vec![0xde, 0xad]
        }));
    }

    #[test]
    fn eol_stops_option_parsing() {
        let mut h = sample();
        h.options = vec![TcpOption::Eol];
        let mut buf = BytesMut::new();
        h.emit(&mut buf);
        let (parsed, _) = TcpHeader::parse(&buf).unwrap();
        assert_eq!(parsed.options, vec![TcpOption::Eol]);
    }
}
