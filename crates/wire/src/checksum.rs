//! The one's-complement internet checksum (RFC 1071) and the TCP
//! pseudo-header sums for IPv4 and IPv6.

use std::net::{Ipv4Addr, Ipv6Addr};

/// Running one's-complement sum that can be fed incrementally.
#[derive(Debug, Clone, Copy, Default)]
pub struct Checksum {
    sum: u32,
}

impl Checksum {
    /// Start a new checksum computation.
    pub fn new() -> Checksum {
        Checksum { sum: 0 }
    }

    /// Feed a byte slice. Odd-length slices are padded with a zero byte, so
    /// only the final slice of a message may have odd length.
    pub fn add_bytes(&mut self, data: &[u8]) {
        let mut chunks = data.chunks_exact(2);
        for c in &mut chunks {
            if let &[a, b] = c {
                self.sum += u32::from(u16::from_be_bytes([a, b]));
            }
        }
        if let [last] = chunks.remainder() {
            self.sum += u32::from(u16::from_be_bytes([*last, 0]));
        }
    }

    /// Feed a single big-endian 16-bit word.
    pub fn add_u16(&mut self, word: u16) {
        self.sum += u32::from(word);
    }

    /// Feed a big-endian 32-bit word as two 16-bit words.
    pub fn add_u32(&mut self, word: u32) {
        self.add_u16((word >> 16) as u16);
        self.add_u16(word as u16);
    }

    /// Finish: fold carries and complement.
    pub fn finish(self) -> u16 {
        let mut sum = self.sum;
        while sum > 0xFFFF {
            sum = (sum & 0xFFFF) + (sum >> 16);
        }
        !(sum as u16)
    }
}

/// Checksum of a standalone byte buffer (e.g. an IPv4 header with its
/// checksum field zeroed).
pub fn internet_checksum(data: &[u8]) -> u16 {
    let mut c = Checksum::new();
    c.add_bytes(data);
    c.finish()
}

/// TCP checksum over the IPv4 pseudo-header plus segment bytes.
///
/// `segment` must be the full TCP header (with checksum field zeroed) plus
/// payload.
pub fn tcp_checksum_v4(src: Ipv4Addr, dst: Ipv4Addr, segment: &[u8]) -> u16 {
    let mut c = Checksum::new();
    c.add_bytes(&src.octets());
    c.add_bytes(&dst.octets());
    c.add_u16(6); // protocol = TCP, with zero padding byte
                  // A >64KiB segment cannot be a valid IPv4 TCP segment; saturate rather
                  // than silently wrapping the pseudo-header length.
    c.add_u16(u16::try_from(segment.len()).unwrap_or(u16::MAX));
    c.add_bytes(segment);
    c.finish()
}

/// TCP checksum over the IPv6 pseudo-header plus segment bytes.
pub fn tcp_checksum_v6(src: Ipv6Addr, dst: Ipv6Addr, segment: &[u8]) -> u16 {
    let mut c = Checksum::new();
    c.add_bytes(&src.octets());
    c.add_bytes(&dst.octets());
    c.add_u32(u32::try_from(segment.len()).unwrap_or(u32::MAX));
    c.add_u32(6); // next header = TCP in the low byte
    c.add_bytes(segment);
    c.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc1071_worked_example() {
        // The classic example: 00 01 f2 03 f4 f5 f6 f7 sums to ddf2 before
        // complement, so the checksum is !0xddf2 = 0x220d.
        let data = [0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        assert_eq!(internet_checksum(&data), !0xddf2);
    }

    #[test]
    fn odd_length_pads_with_zero() {
        // Odd buffer [ab] is treated as [ab 00].
        assert_eq!(internet_checksum(&[0xab]), internet_checksum(&[0xab, 0x00]));
    }

    #[test]
    fn verification_of_valid_buffer_is_zero_complement() {
        // A buffer whose checksum field is filled in sums to 0xFFFF; i.e.
        // recomputing the checksum over it yields 0.
        let mut data = vec![0x45, 0x00, 0x00, 0x28, 0x1c, 0x46, 0x40, 0x00, 0x40, 0x06];
        let ck = internet_checksum(&data);
        data.extend_from_slice(&ck.to_be_bytes());
        assert_eq!(internet_checksum(&data), 0);
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data: Vec<u8> = (0u8..64).collect();
        let mut c = Checksum::new();
        c.add_bytes(&data[..10]);
        c.add_bytes(&data[10..]);
        assert_eq!(c.finish(), internet_checksum(&data));
    }

    #[test]
    fn pseudo_header_sums_differ_by_address() {
        let seg = [0u8; 20];
        let a = tcp_checksum_v4(Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(10, 0, 0, 2), &seg);
        let b = tcp_checksum_v4(Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(10, 0, 0, 3), &seg);
        assert_ne!(a, b);
    }

    #[test]
    fn v6_pseudo_header_includes_length() {
        let src = Ipv6Addr::LOCALHOST;
        let dst = Ipv6Addr::new(0xfd00, 0, 0, 0, 0, 0, 0, 1);
        let a = tcp_checksum_v6(src, dst, &[0u8; 20]);
        let b = tcp_checksum_v6(src, dst, &[0u8; 22]);
        assert_ne!(a, b);
    }
}
