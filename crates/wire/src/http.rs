//! Minimal HTTP/1.x request handling: building GET requests and parsing
//! the fields a DPI middlebox keys on — the request line (path keywords)
//! and the Host header — plus the User-Agent, which the paper observes
//! often identifies commercial firewalls in Post-Data tampering.

use crate::{Result, WireError};
use bytes::Bytes;

/// A parsed HTTP/1.x request head.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpRequest {
    /// Request method (`GET`, `POST`, ...).
    pub method: String,
    /// Request target (path + query).
    pub path: String,
    /// Host header value, lowercased, if present.
    pub host: Option<String>,
    /// User-Agent header value, if present.
    pub user_agent: Option<String>,
}

/// Build a plain HTTP/1.1 GET request.
pub fn build_get(host: &str, path: &str, user_agent: &str) -> Bytes {
    // tamperlint: allow(hot-path-alloc) — the simulated client composes one owned request per flow
    let req = format!(
        "GET {path} HTTP/1.1\r\nHost: {host}\r\nUser-Agent: {user_agent}\r\nAccept: */*\r\nConnection: keep-alive\r\n\r\n"
    );
    // tamperlint: allow(hot-path-alloc) — the simulated client composes one owned request per flow
    Bytes::from(req)
}

/// Build a POST with a body — used to model keyword-bearing uploads that
/// trigger Post-Data tampering.
pub fn build_post(host: &str, path: &str, user_agent: &str, body: &str) -> Bytes {
    let req = format!(
        "POST {path} HTTP/1.1\r\nHost: {host}\r\nUser-Agent: {user_agent}\r\nContent-Length: {}\r\nContent-Type: text/plain\r\n\r\n{body}",
        body.len()
    );
    Bytes::from(req)
}

/// True if the payload plausibly starts an HTTP/1.x request.
pub fn is_http_request(payload: &[u8]) -> bool {
    const METHODS: [&[u8]; 5] = [b"GET ", b"POST ", b"HEAD ", b"PUT ", b"OPTIONS "];
    METHODS.iter().any(|m| payload.starts_with(m))
}

/// Parse the request head (request line + headers). Returns
/// [`WireError::Malformed`] when the payload is not an HTTP request or the
/// request line is broken. Tolerates a truncated header block (parses what
/// is there), matching what a DPI box sees in the first packet.
///
/// ```
/// let req = tamper_wire::http::build_get("Example.com", "/x", "demo/1.0");
/// let parsed = tamper_wire::http::parse_request(&req).unwrap();
/// assert_eq!(parsed.host.as_deref(), Some("example.com"));
/// ```
pub fn parse_request(payload: &[u8]) -> Result<HttpRequest> {
    const BAD: WireError = WireError::Malformed("http request line");
    if !is_http_request(payload) {
        return Err(BAD);
    }
    let text = match std::str::from_utf8(payload) {
        Ok(t) => t,
        // Bodies can be binary; only the head must be UTF-8.
        Err(e) => payload
            .get(..e.valid_up_to())
            .and_then(|head| std::str::from_utf8(head).ok())
            .ok_or(WireError::Malformed("http head utf-8"))?,
    };
    let mut lines = text.split("\r\n");
    let request_line = lines.next().ok_or(BAD)?;
    let mut parts = request_line.split(' ');
    let method = parts.next().ok_or(BAD)?.to_owned();
    let path = parts.next().ok_or(BAD)?.to_owned();
    let version = parts.next().ok_or(BAD)?;
    if !version.starts_with("HTTP/") {
        return Err(BAD);
    }
    let mut host = None;
    let mut user_agent = None;
    for line in lines {
        if line.is_empty() {
            break; // end of headers
        }
        if let Some((name, value)) = line.split_once(':') {
            let value = value.trim();
            if name.eq_ignore_ascii_case("host") {
                host = Some(value.to_ascii_lowercase());
            } else if name.eq_ignore_ascii_case("user-agent") {
                user_agent = Some(value.to_owned());
            }
        }
    }
    Ok(HttpRequest {
        method,
        path,
        host,
        user_agent,
    })
}

/// Extract just the lowercased Host header from a request head. This is
/// the hot-path variant of [`parse_request`]: the per-flow trigger
/// extraction only needs the domain, so nothing else is materialized —
/// the one allocation is the returned host string the verdict owns.
///
/// ```
/// let req = tamper_wire::http::build_get("Example.com", "/x", "demo/1.0");
/// let host = tamper_wire::http::parse_host(&req).unwrap();
/// assert_eq!(host.as_deref(), Some("example.com"));
/// ```
pub fn parse_host(payload: &[u8]) -> Result<Option<String>> {
    const BAD: WireError = WireError::Malformed("http request line");
    if !is_http_request(payload) {
        return Err(BAD);
    }
    let text = match std::str::from_utf8(payload) {
        Ok(t) => t,
        Err(e) => payload
            .get(..e.valid_up_to())
            .and_then(|head| std::str::from_utf8(head).ok())
            .ok_or(WireError::Malformed("http head utf-8"))?,
    };
    let mut lines = text.split("\r\n");
    let request_line = lines.next().ok_or(BAD)?;
    if !request_line
        .rsplit(' ')
        .next()
        .is_some_and(|v| v.starts_with("HTTP/"))
    {
        return Err(BAD);
    }
    for line in lines {
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("host") {
                // tamperlint: allow(hot-path-alloc) — the lowercased Host string is the verdict-owned trigger domain; one bounded allocation per HTTP flow
                return Ok(Some(value.trim().to_ascii_lowercase()));
            }
        }
    }
    Ok(None)
}

/// Case-insensitive substring search over a payload — the primitive behind
/// keyword-based DPI rules (and the "Substring" rows of the paper's
/// Table 3).
pub fn contains_keyword(payload: &[u8], keyword: &str) -> bool {
    let kw = keyword.as_bytes();
    if kw.is_empty() || payload.len() < kw.len() {
        return payload.len() >= kw.len();
    }
    payload
        .windows(kw.len())
        .any(|w| w.eq_ignore_ascii_case(kw))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_then_parse_get() {
        let req = build_get("Example.COM", "/watch?v=1", "curl/8.0");
        let parsed = parse_request(&req).unwrap();
        assert_eq!(parsed.method, "GET");
        assert_eq!(parsed.path, "/watch?v=1");
        assert_eq!(parsed.host.as_deref(), Some("example.com")); // lowercased
        assert_eq!(parsed.user_agent.as_deref(), Some("curl/8.0"));
    }

    #[test]
    fn post_with_body_parses_head() {
        let req = build_post("example.com", "/submit", "ua", "forbidden words here");
        let parsed = parse_request(&req).unwrap();
        assert_eq!(parsed.method, "POST");
        assert!(contains_keyword(&req, "FORBIDDEN"));
    }

    #[test]
    fn non_http_rejected() {
        assert!(parse_request(b"\x16\x03\x01").is_err());
        assert!(parse_request(b"").is_err());
        assert!(parse_request(b"NOTAMETHOD / HTTP/1.1\r\n").is_err());
    }

    #[test]
    fn request_line_without_version_rejected() {
        assert_eq!(
            parse_request(b"GET /\r\n"),
            Err(WireError::Malformed("http request line"))
        );
    }

    #[test]
    fn truncated_headers_parse_partially() {
        let full = build_get("example.com", "/", "ua");
        let cut = &full[..30]; // mid-Host header
        let parsed = parse_request(cut).unwrap();
        assert_eq!(parsed.method, "GET");
        // Host header may or may not survive the cut; must not panic.
    }

    #[test]
    fn keyword_matching_is_case_insensitive() {
        let req = build_get("example.com", "/Falun-Info", "ua");
        assert!(contains_keyword(&req, "falun"));
        assert!(!contains_keyword(&req, "tiananmen"));
        assert!(contains_keyword(b"", ""));
        assert!(!contains_keyword(b"ab", "abc"));
    }

    #[test]
    fn binary_body_does_not_break_parsing() {
        let mut req = build_get("example.com", "/", "ua").to_vec();
        req.extend_from_slice(&[0xFF, 0xFE, 0x00]);
        let parsed = parse_request(&req).unwrap();
        assert_eq!(parsed.host.as_deref(), Some("example.com"));
    }
}
