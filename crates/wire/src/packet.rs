//! A full frame: IP header + TCP header + payload, with a builder, a
//! parser, and a checksumming emitter.

use crate::checksum::{tcp_checksum_v4, tcp_checksum_v6};
use crate::flags::TcpFlags;
use crate::ipv4::Ipv4Header;
use crate::ipv6::Ipv6Header;
use crate::tcp::{TcpHeader, TcpOption};
use crate::{Result, WireError};
use bytes::{Bytes, BytesMut};
use std::net::IpAddr;

/// The network-layer header of a packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IpHeader {
    /// IPv4.
    V4(Ipv4Header),
    /// IPv6.
    V6(Ipv6Header),
}

impl IpHeader {
    /// Source address.
    pub fn src(&self) -> IpAddr {
        match self {
            IpHeader::V4(h) => IpAddr::V4(h.src),
            IpHeader::V6(h) => IpAddr::V6(h.src),
        }
    }

    /// Destination address.
    pub fn dst(&self) -> IpAddr {
        match self {
            IpHeader::V4(h) => IpAddr::V4(h.dst),
            IpHeader::V6(h) => IpAddr::V6(h.dst),
        }
    }

    /// TTL (IPv4) or hop limit (IPv6).
    pub fn ttl(&self) -> u8 {
        match self {
            IpHeader::V4(h) => h.ttl,
            IpHeader::V6(h) => h.hop_limit,
        }
    }

    /// Set the TTL / hop limit.
    pub fn set_ttl(&mut self, ttl: u8) {
        match self {
            IpHeader::V4(h) => h.ttl = ttl,
            IpHeader::V6(h) => h.hop_limit = ttl,
        }
    }

    /// IP-ID for IPv4; `None` for IPv6, which has no identification field
    /// outside fragment headers (the paper notes IP-ID evidence is
    /// IPv4-only).
    pub fn ip_id(&self) -> Option<u16> {
        match self {
            IpHeader::V4(h) => Some(h.identification),
            IpHeader::V6(_) => None,
        }
    }

    /// True for IPv4.
    pub fn is_v4(&self) -> bool {
        matches!(self, IpHeader::V4(_))
    }
}

/// A parsed or constructed TCP/IP packet.
///
/// ```
/// use tamper_wire::{Packet, PacketBuilder, TcpFlags};
/// let pkt = PacketBuilder::new(
///     "203.0.113.1".parse().unwrap(),
///     "198.51.100.1".parse().unwrap(),
///     40000,
///     443,
/// )
/// .flags(TcpFlags::SYN)
/// .seq(42)
/// .build();
/// let frame = pkt.emit(); // checksummed wire bytes
/// let parsed = Packet::parse(&frame).unwrap();
/// assert_eq!(parsed.tcp.seq, 42);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packet {
    /// Network-layer header.
    pub ip: IpHeader,
    /// Transport header.
    pub tcp: TcpHeader,
    /// TCP payload bytes.
    pub payload: Bytes,
}

impl Packet {
    /// Parse a frame starting at the IP header. Verifies the IPv4 header
    /// checksum and the TCP checksum over the pseudo-header.
    pub fn parse(frame: &[u8]) -> Result<Packet> {
        let version = frame.first().map(|b| b >> 4).ok_or(WireError::Truncated)?;
        match version {
            4 => {
                let (ip, off) = Ipv4Header::parse(frame)?;
                if ip.protocol != 6 {
                    return Err(WireError::UnsupportedProtocol(ip.protocol));
                }
                // Ipv4Header::parse guarantees off <= total_len <= frame.len().
                let segment = frame
                    .get(off..ip.total_len as usize)
                    .ok_or(WireError::BadLength)?;
                if tcp_checksum_v4(ip.src, ip.dst, segment) != 0 {
                    return Err(WireError::BadChecksum);
                }
                let (tcp, data_off) = TcpHeader::parse(segment)?;
                let payload = segment.get(data_off..).ok_or(WireError::BadLength)?;
                Ok(Packet {
                    ip: IpHeader::V4(ip),
                    tcp,
                    // tamperlint: allow(hot-path-alloc) — the parsed packet owns its payload; the borrowed frame is a reused read buffer
                    payload: Bytes::copy_from_slice(payload),
                })
            }
            6 => {
                let (ip, off) = Ipv6Header::parse(frame)?;
                if ip.next_header != 6 {
                    return Err(WireError::UnsupportedProtocol(ip.next_header));
                }
                // Ipv6Header::parse guarantees the segment fits in the frame.
                let seg_end = off
                    .checked_add(ip.payload_len as usize)
                    .ok_or(WireError::BadLength)?;
                let segment = frame.get(off..seg_end).ok_or(WireError::BadLength)?;
                if tcp_checksum_v6(ip.src, ip.dst, segment) != 0 {
                    return Err(WireError::BadChecksum);
                }
                let (tcp, data_off) = TcpHeader::parse(segment)?;
                let payload = segment.get(data_off..).ok_or(WireError::BadLength)?;
                Ok(Packet {
                    ip: IpHeader::V6(ip),
                    tcp,
                    // tamperlint: allow(hot-path-alloc) — the parsed packet owns its payload; the borrowed frame is a reused read buffer
                    payload: Bytes::copy_from_slice(payload),
                })
            }
            v => Err(WireError::BadVersion(v)),
        }
    }

    /// Emit the packet as a checksummed frame.
    pub fn emit(&self) -> Bytes {
        let tcp_len = self.tcp.header_len() + self.payload.len();
        let mut buf = BytesMut::with_capacity(40 + tcp_len);
        let seg_start = match &self.ip {
            IpHeader::V4(h) => {
                h.emit(&mut buf, tcp_len);
                crate::ipv4::IPV4_HEADER_LEN
            }
            IpHeader::V6(h) => {
                h.emit(&mut buf, tcp_len);
                crate::ipv6::IPV6_HEADER_LEN
            }
        };
        self.tcp.emit(&mut buf);
        buf.extend_from_slice(&self.payload);
        // The emitter patches the checksum into the buffer it just wrote:
        // seg_start + 16 + 2 <= buf.len() by construction. The emit path is
        // unreachable from capture bytes, so the index rule does not fire here.
        let segment = &buf[seg_start..];
        let ck = match &self.ip {
            IpHeader::V4(h) => tcp_checksum_v4(h.src, h.dst, segment),
            IpHeader::V6(h) => tcp_checksum_v6(h.src, h.dst, segment),
        };
        let ck_at = seg_start + 16;
        buf[ck_at..ck_at + 2].copy_from_slice(&ck.to_be_bytes());
        buf.freeze()
    }

    /// Payload length in bytes.
    pub fn payload_len(&self) -> usize {
        self.payload.len()
    }
}

/// A borrowed, allocation-free view of one parsed frame.
///
/// This is the columnar ingest path's counterpart of [`Packet::parse`]:
/// the same validation (IPv4 header checksum, TCP checksum over the
/// pseudo-header, TCP option-length walk) with the payload left as a
/// slice into the caller's frame and the option list reduced to the
/// `has_tcp_options` bit the classifier actually consumes. A frame is
/// accepted by [`PacketView::parse`] if and only if [`Packet::parse`]
/// accepts it, with the same error on rejection — the equivalence tests
/// below and the `properties` suite hold the two parsers together.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PacketView<'a> {
    /// Source address.
    pub src: IpAddr,
    /// Destination address.
    pub dst: IpAddr,
    /// TTL (IPv4) or hop limit (IPv6).
    pub ttl: u8,
    /// IPv4 identification field; `None` for IPv6.
    pub ip_id: Option<u16>,
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Sequence number.
    pub seq: u32,
    /// Acknowledgement number.
    pub ack: u32,
    /// Flag byte.
    pub flags: TcpFlags,
    /// Receive window.
    pub window: u16,
    /// True if the TCP header carried any options.
    pub has_tcp_options: bool,
    /// Payload bytes, borrowed from the input frame.
    pub payload: &'a [u8],
}

impl<'a> PacketView<'a> {
    /// Parse a frame starting at the IP header without allocating.
    pub fn parse(frame: &'a [u8]) -> Result<PacketView<'a>> {
        let version = frame.first().map(|b| b >> 4).ok_or(WireError::Truncated)?;
        match version {
            4 => {
                let (ip, off) = Ipv4Header::parse(frame)?;
                if ip.protocol != 6 {
                    return Err(WireError::UnsupportedProtocol(ip.protocol));
                }
                let segment = frame
                    .get(off..ip.total_len as usize)
                    .ok_or(WireError::BadLength)?;
                if tcp_checksum_v4(ip.src, ip.dst, segment) != 0 {
                    return Err(WireError::BadChecksum);
                }
                Self::finish_tcp(
                    IpAddr::V4(ip.src),
                    IpAddr::V4(ip.dst),
                    ip.ttl,
                    Some(ip.identification),
                    segment,
                )
            }
            6 => {
                let (ip, off) = Ipv6Header::parse(frame)?;
                if ip.next_header != 6 {
                    return Err(WireError::UnsupportedProtocol(ip.next_header));
                }
                let seg_end = off
                    .checked_add(ip.payload_len as usize)
                    .ok_or(WireError::BadLength)?;
                let segment = frame.get(off..seg_end).ok_or(WireError::BadLength)?;
                if tcp_checksum_v6(ip.src, ip.dst, segment) != 0 {
                    return Err(WireError::BadChecksum);
                }
                Self::finish_tcp(
                    IpAddr::V6(ip.src),
                    IpAddr::V6(ip.dst),
                    ip.hop_limit,
                    None,
                    segment,
                )
            }
            v => Err(WireError::BadVersion(v)),
        }
    }

    /// Parse the TCP fixed header, validate the option region exactly as
    /// [`TcpHeader::parse`] does (without materializing the option list),
    /// and borrow the payload.
    fn finish_tcp(
        src: IpAddr,
        dst: IpAddr,
        ttl: u8,
        ip_id: Option<u16>,
        segment: &'a [u8],
    ) -> Result<PacketView<'a>> {
        let mut r = crate::reader::Reader::new(segment);
        let src_port = r.u16()?;
        let dst_port = r.u16()?;
        let seq = r.u32()?;
        let ack = r.u32()?;
        let off_byte = r.u8()?;
        let flags = TcpFlags::from_bits(r.u8()?);
        let window = r.u16()?;
        r.skip(2)?; // checksum: already verified over the pseudo-header
        r.skip(2)?; // urgent pointer
        let data_offset = (off_byte >> 4) as usize * 4;
        if data_offset > segment.len() {
            return Err(WireError::BadLength);
        }
        let opts_len = data_offset
            .checked_sub(crate::tcp::TCP_HEADER_LEN)
            .ok_or(WireError::BadLength)?;
        let mut opts = crate::reader::Reader::new(r.take(opts_len)?);
        while !opts.is_empty() {
            let kind = opts.u8()?;
            match kind {
                0 => break,
                1 => {}
                _ => {
                    let len = opts
                        .u8()
                        .map_err(|_| WireError::Malformed("tcp option length"))?
                        as usize;
                    if len < 2 {
                        return Err(WireError::Malformed("tcp option length"));
                    }
                    opts.take(len - 2)
                        .map_err(|_| WireError::Malformed("tcp option length"))?;
                }
            }
        }
        let payload = segment.get(data_offset..).ok_or(WireError::BadLength)?;
        Ok(PacketView {
            src,
            dst,
            ttl,
            ip_id,
            src_port,
            dst_port,
            seq,
            ack,
            flags,
            window,
            // TcpHeader::parse pushes at least one option whenever the
            // option region is non-empty, so this bit matches its
            // `!options.is_empty()` on every accepted frame.
            has_tcp_options: opts_len > 0,
            payload,
        })
    }

    /// True for IPv4 frames.
    pub fn is_v4(&self) -> bool {
        self.src.is_ipv4()
    }
}

/// Fluent builder for constructing packets in simulators and tests.
#[derive(Debug, Clone)]
pub struct PacketBuilder {
    ip: IpHeader,
    tcp: TcpHeader,
    payload: Bytes,
}

impl PacketBuilder {
    /// Start building a packet between two addresses. Panics if the
    /// address families differ (mixed-family packets don't exist).
    pub fn new(src: IpAddr, dst: IpAddr, src_port: u16, dst_port: u16) -> PacketBuilder {
        let ip = match (src, dst) {
            (IpAddr::V4(s), IpAddr::V4(d)) => IpHeader::V4(Ipv4Header::tcp_template(s, d)),
            (IpAddr::V6(s), IpAddr::V6(d)) => IpHeader::V6(Ipv6Header::tcp_template(s, d)),
            _ => panic!("mixed address families"),
        };
        PacketBuilder {
            ip,
            tcp: TcpHeader::new(src_port, dst_port, TcpFlags::EMPTY),
            payload: Bytes::new(),
        }
    }

    /// Set the TCP flags.
    pub fn flags(mut self, flags: TcpFlags) -> PacketBuilder {
        self.tcp.flags = flags;
        self
    }

    /// Set the sequence number.
    pub fn seq(mut self, seq: u32) -> PacketBuilder {
        self.tcp.seq = seq;
        self
    }

    /// Set the acknowledgement number.
    pub fn ack(mut self, ack: u32) -> PacketBuilder {
        self.tcp.ack = ack;
        self
    }

    /// Set the receive window.
    pub fn window(mut self, window: u16) -> PacketBuilder {
        self.tcp.window = window;
        self
    }

    /// Set the TTL / hop limit.
    pub fn ttl(mut self, ttl: u8) -> PacketBuilder {
        self.ip.set_ttl(ttl);
        self
    }

    /// Set the IPv4 identification field (ignored for IPv6).
    pub fn ip_id(mut self, id: u16) -> PacketBuilder {
        if let IpHeader::V4(h) = &mut self.ip {
            h.identification = id;
        }
        self
    }

    /// Set the TCP options.
    pub fn options(mut self, options: Vec<TcpOption>) -> PacketBuilder {
        self.tcp.options = options;
        self
    }

    /// Set the payload.
    pub fn payload(mut self, payload: Bytes) -> PacketBuilder {
        self.payload = payload;
        self
    }

    /// Finish building.
    pub fn build(self) -> Packet {
        Packet {
            ip: self.ip,
            tcp: self.tcp,
            payload: self.payload,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{Ipv4Addr, Ipv6Addr};

    fn v4(last: u8) -> IpAddr {
        IpAddr::V4(Ipv4Addr::new(192, 0, 2, last))
    }

    fn v6(last: u16) -> IpAddr {
        IpAddr::V6(Ipv6Addr::new(0x2001, 0xdb8, 0, 0, 0, 0, 0, last))
    }

    #[test]
    fn v4_round_trip_with_payload() {
        let pkt = PacketBuilder::new(v4(1), v4(2), 45000, 443)
            .flags(TcpFlags::PSH_ACK)
            .seq(1000)
            .ack(2000)
            .ttl(57)
            .ip_id(777)
            .payload(Bytes::from_static(b"hello tls"))
            .build();
        let frame = pkt.emit();
        let parsed = Packet::parse(&frame).unwrap();
        // total_len is computed by the emitter; patch it for comparison.
        let mut expected = pkt.clone();
        if let IpHeader::V4(h) = &mut expected.ip {
            h.total_len = frame.len() as u16;
        }
        assert_eq!(parsed, expected);
        assert_eq!(parsed.ip.ip_id(), Some(777));
        assert_eq!(parsed.ip.ttl(), 57);
    }

    #[test]
    fn v6_round_trip() {
        let pkt = PacketBuilder::new(v6(1), v6(2), 45000, 80)
            .flags(TcpFlags::SYN)
            .seq(42)
            .options(TcpHeader::standard_syn_options())
            .build();
        let frame = pkt.emit();
        let parsed = Packet::parse(&frame).unwrap();
        assert_eq!(parsed.tcp.flags, TcpFlags::SYN);
        assert_eq!(parsed.ip.ip_id(), None);
        assert_eq!(parsed.tcp.mss(), Some(1460));
    }

    #[test]
    fn corrupted_tcp_checksum_rejected() {
        let pkt = PacketBuilder::new(v4(1), v4(2), 45000, 443)
            .flags(TcpFlags::SYN)
            .build();
        let mut frame = pkt.emit().to_vec();
        let n = frame.len();
        frame[n - 1] ^= 0x01; // flip a payload-less header bit past the IP header
        assert_eq!(Packet::parse(&frame), Err(WireError::BadChecksum));
    }

    #[test]
    fn non_tcp_protocol_rejected() {
        let mut h = Ipv4Header::tcp_template(Ipv4Addr::new(1, 1, 1, 1), Ipv4Addr::new(2, 2, 2, 2));
        h.protocol = 17; // UDP
        let mut buf = BytesMut::new();
        h.emit(&mut buf, 8);
        buf.extend_from_slice(&[0u8; 8]);
        assert_eq!(Packet::parse(&buf), Err(WireError::UnsupportedProtocol(17)));
    }

    #[test]
    #[should_panic(expected = "mixed address families")]
    fn mixed_families_panic() {
        let _ = PacketBuilder::new(v4(1), v6(2), 1, 2);
    }

    #[test]
    fn empty_frame_truncated() {
        assert_eq!(Packet::parse(&[]), Err(WireError::Truncated));
    }

    /// Assert the borrowed view and the owning parser agree on one frame:
    /// same accept/reject decision, same error, same field values.
    fn assert_view_matches(frame: &[u8]) {
        match (Packet::parse(frame), PacketView::parse(frame)) {
            (Ok(p), Ok(v)) => {
                assert_eq!(v.src, p.ip.src());
                assert_eq!(v.dst, p.ip.dst());
                assert_eq!(v.ttl, p.ip.ttl());
                assert_eq!(v.ip_id, p.ip.ip_id());
                assert_eq!(v.src_port, p.tcp.src_port);
                assert_eq!(v.dst_port, p.tcp.dst_port);
                assert_eq!(v.seq, p.tcp.seq);
                assert_eq!(v.ack, p.tcp.ack);
                assert_eq!(v.flags, p.tcp.flags);
                assert_eq!(v.window, p.tcp.window);
                assert_eq!(v.has_tcp_options, !p.tcp.options.is_empty());
                assert_eq!(v.payload, &p.payload[..]);
                assert_eq!(v.is_v4(), p.ip.is_v4());
            }
            (Err(e), Err(ve)) => assert_eq!(e, ve, "parsers rejected with different errors"),
            (p, v) => panic!("parsers disagree on acceptance: parse={p:?} view={v:?}"),
        }
    }

    #[test]
    fn view_matches_parse_on_valid_and_corrupt_frames() {
        let good_v4 = PacketBuilder::new(v4(1), v4(2), 45000, 443)
            .flags(TcpFlags::PSH_ACK)
            .seq(1000)
            .ack(2000)
            .ttl(57)
            .ip_id(777)
            .options(TcpHeader::standard_syn_options())
            .payload(Bytes::from_static(b"hello tls"))
            .build()
            .emit();
        let good_v6 = PacketBuilder::new(v6(1), v6(2), 45000, 80)
            .flags(TcpFlags::SYN)
            .seq(42)
            .options(TcpHeader::standard_syn_options())
            .build()
            .emit();
        let bare = PacketBuilder::new(v4(9), v4(8), 50000, 80)
            .flags(TcpFlags::RST)
            .build()
            .emit();
        assert_view_matches(&good_v4);
        assert_view_matches(&good_v6);
        assert_view_matches(&bare);
        assert!(PacketView::parse(&good_v4).unwrap().has_tcp_options);
        assert!(!PacketView::parse(&bare).unwrap().has_tcp_options);

        // Every truncation point and every single-bit corruption must get
        // the same verdict from both parsers.
        for cut in 0..good_v4.len() {
            assert_view_matches(&good_v4[..cut]);
        }
        for byte in 0..good_v4.len() {
            let mut bad = good_v4.to_vec();
            bad[byte] ^= 0x04;
            assert_view_matches(&bad);
        }
        for byte in 0..good_v6.len() {
            let mut bad = good_v6.to_vec();
            bad[byte] ^= 0x81;
            assert_view_matches(&bad);
        }
    }
}
