//! A bounds-checked, forward-only byte cursor for the wire parsers.
//!
//! Every accessor returns [`WireError::Truncated`] instead of panicking
//! when the input ends early, so parsers built on it survive arbitrary
//! hostile bytes — the property the `tests/properties.rs` never-panic
//! suite and the tamperlint `panic`/`index` rules enforce for the whole
//! untrusted-input surface.

use crate::{Result, WireError};

/// A forward-only cursor over an input buffer.
#[derive(Debug, Clone, Copy)]
pub struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Start reading at the beginning of `data`.
    pub fn new(data: &'a [u8]) -> Reader<'a> {
        Reader { data, pos: 0 }
    }

    /// Bytes consumed so far.
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// Bytes left to read.
    pub fn remaining(&self) -> usize {
        self.data.len().saturating_sub(self.pos)
    }

    /// True once the cursor has reached the end of the buffer.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Read the next `n` bytes as a borrowed slice.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let end = self.pos.checked_add(n).ok_or(WireError::Truncated)?;
        let s = self.data.get(self.pos..end).ok_or(WireError::Truncated)?;
        self.pos = end;
        Ok(s)
    }

    /// Advance past `n` bytes.
    pub fn skip(&mut self, n: usize) -> Result<()> {
        self.take(n).map(|_| ())
    }

    /// Read the next `N` bytes as a fixed-size array.
    pub fn array<const N: usize>(&mut self) -> Result<[u8; N]> {
        let s = self.take(N)?;
        let mut out = [0u8; N];
        out.copy_from_slice(s);
        Ok(out)
    }

    /// Read one byte.
    pub fn u8(&mut self) -> Result<u8> {
        let [b] = self.array::<1>()?;
        Ok(b)
    }

    /// Read a big-endian u16.
    pub fn u16(&mut self) -> Result<u16> {
        Ok(u16::from_be_bytes(self.array()?))
    }

    /// Read a big-endian u32.
    pub fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_be_bytes(self.array()?))
    }

    /// Read a big-endian u64.
    pub fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_be_bytes(self.array()?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_reads() {
        let mut r = Reader::new(&[1, 0, 2, 0, 0, 0, 3, 0, 0, 0, 0, 0, 0, 0, 4, 9]);
        assert_eq!(r.u8().unwrap(), 1);
        assert_eq!(r.u16().unwrap(), 2);
        assert_eq!(r.u32().unwrap(), 3);
        assert_eq!(r.u64().unwrap(), 4);
        assert_eq!(r.remaining(), 1);
        assert_eq!(r.take(1).unwrap(), &[9]);
        assert!(r.is_empty());
    }

    #[test]
    fn reads_past_end_are_truncated_not_panics() {
        let mut r = Reader::new(&[1, 2]);
        assert_eq!(r.u32(), Err(WireError::Truncated));
        // A failed read does not consume anything.
        assert_eq!(r.pos(), 0);
        assert_eq!(r.u16().unwrap(), 0x0102);
        assert_eq!(r.u8(), Err(WireError::Truncated));
        assert_eq!(r.skip(1), Err(WireError::Truncated));
    }

    #[test]
    fn take_with_overflowing_length() {
        let mut r = Reader::new(&[0; 4]);
        r.skip(2).unwrap();
        assert_eq!(r.take(usize::MAX), Err(WireError::Truncated));
    }
}
