//! Path composition: the links and middlebox hops between a client and the
//! CDN edge.

use crate::hop::Hop;
use crate::time::SimDuration;

/// One link segment of the path.
#[derive(Debug, Clone, Copy)]
pub struct Link {
    /// One-way propagation + queueing latency.
    pub latency: SimDuration,
    /// How many router hops this segment represents (each decrements TTL).
    pub ttl_decrement: u8,
    /// Independent per-packet loss probability on this segment.
    pub loss: f64,
}

impl Link {
    /// A clean link with the given latency and hop count.
    pub fn new(latency: SimDuration, ttl_decrement: u8) -> Link {
        Link {
            latency,
            ttl_decrement,
            loss: 0.0,
        }
    }

    /// Set the loss probability.
    pub fn with_loss(mut self, loss: f64) -> Link {
        self.loss = loss;
        self
    }
}

/// The full client↔server path: `links.len() == hops.len() + 1`, with hop
/// `i` sitting between `links[i]` and `links[i + 1]`.
pub struct Path {
    /// Link segments, client side first.
    pub links: Vec<Link>,
    /// Middleboxes, client side first.
    pub hops: Vec<Box<dyn Hop>>,
}

impl Path {
    /// A direct path with no middleboxes.
    pub fn direct(latency: SimDuration, ttl_decrement: u8) -> Path {
        Path {
            links: vec![Link::new(latency, ttl_decrement)],
            hops: Vec::new(),
        }
    }

    /// A path with a single middlebox splitting the given latency between
    /// the client-side and server-side segments.
    pub fn with_hop(client_side: Link, hop: Box<dyn Hop>, server_side: Link) -> Path {
        Path {
            links: vec![client_side, server_side],
            hops: vec![hop],
        }
    }

    /// Total one-way latency over segments `from..links.len()`.
    pub fn latency_from(&self, from: usize) -> SimDuration {
        self.links[from..]
            .iter()
            .fold(SimDuration::ZERO, |acc, l| acc + l.latency)
    }

    /// Total one-way latency over segments `0..=to`.
    pub fn latency_to(&self, to: usize) -> SimDuration {
        self.links[..=to]
            .iter()
            .fold(SimDuration::ZERO, |acc, l| acc + l.latency)
    }

    /// Sanity check the structural invariant.
    pub fn is_well_formed(&self) -> bool {
        self.links.len() == self.hops.len() + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hop::TransparentHop;

    #[test]
    fn direct_path_is_well_formed() {
        let p = Path::direct(SimDuration::from_millis(40), 12);
        assert!(p.is_well_formed());
        assert_eq!(p.latency_from(0), SimDuration::from_millis(40));
    }

    #[test]
    fn single_hop_path_latencies() {
        let p = Path::with_hop(
            Link::new(SimDuration::from_millis(10), 4),
            Box::new(TransparentHop),
            Link::new(SimDuration::from_millis(30), 8),
        );
        assert!(p.is_well_formed());
        assert_eq!(p.latency_from(0), SimDuration::from_millis(40));
        assert_eq!(p.latency_from(1), SimDuration::from_millis(30));
        assert_eq!(p.latency_to(0), SimDuration::from_millis(10));
    }
}
