//! Session traces: the ground-truth record of everything that happened in
//! one simulated connection.
//!
//! The trace is what the capture pipeline consumes (filtering to inbound
//! packets, truncating, quantizing). The `origin` and `tamper_events`
//! fields are ground truth that exists only in simulation — the classifier
//! in `tamper-core` never sees them; they are used by tests to measure
//! precision/recall.

use crate::time::SimTime;
use tamper_wire::Packet;

/// Which way a packet is travelling.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Client → server ("inbound" from the CDN's perspective; the only
    /// direction the paper's pipeline logs).
    ToServer,
    /// Server → client.
    ToClient,
}

/// Who created a packet (ground truth).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Origin {
    /// The genuine client stack.
    Client,
    /// The CDN edge server.
    Server,
    /// A middlebox at hop index `n` along the path.
    Hop(u8),
}

/// The connection stage at which a middlebox triggered (ground truth).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TriggerStage {
    /// Triggered on the SYN (IP/port based blocking).
    Syn,
    /// Triggered on the first data packet from the client (SNI / Host /
    /// GET line).
    FirstData,
    /// Triggered on a later data packet (keyword deeper in the flow).
    LaterData,
}

/// The mechanism a middlebox used (ground truth).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mechanism {
    /// Packets were dropped (in-path blocking).
    Drop,
    /// Tear-down packets were injected (on-path or in-path injection).
    Inject,
}

/// A ground-truth record of one tampering action.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TamperEvent {
    /// When the middlebox fired.
    pub time: SimTime,
    /// Which hop fired.
    pub hop: u8,
    /// Drop or inject.
    pub mechanism: Mechanism,
    /// What stage of the connection triggered it.
    pub stage: TriggerStage,
}

/// One packet as it arrived at an endpoint.
#[derive(Debug, Clone)]
pub struct TracedPacket {
    /// Arrival time at the recording endpoint.
    pub time: SimTime,
    /// Direction of travel.
    pub dir: Direction,
    /// Ground-truth creator.
    pub origin: Origin,
    /// The packet as received (TTL already decremented by the path).
    pub packet: Packet,
}

/// Everything observed during one simulated connection.
#[derive(Debug, Clone)]
pub struct SessionTrace {
    /// Packets in arrival order at their respective endpoints. Packets
    /// with [`Direction::ToServer`] arrived at the server (these are what
    /// the collection pipeline sees); [`Direction::ToClient`] arrived at
    /// the client (kept for debugging and pcap export).
    pub packets: Vec<TracedPacket>,
    /// When the client initiated the connection.
    pub started: SimTime,
    /// When the simulation of this session went quiescent.
    pub ended: SimTime,
    /// Ground-truth tampering actions, empty for untampered sessions.
    pub tamper_events: Vec<TamperEvent>,
}

impl SessionTrace {
    /// Iterator over the inbound (client→server) packets — the view the
    /// paper's pipeline records.
    pub fn inbound(&self) -> impl Iterator<Item = &TracedPacket> {
        self.packets.iter().filter(|p| p.dir == Direction::ToServer)
    }

    /// True if any middlebox tampered with this session (ground truth).
    pub fn was_tampered(&self) -> bool {
        !self.tamper_events.is_empty()
    }

    /// The first tampering event, if any.
    pub fn first_tamper(&self) -> Option<&TamperEvent> {
        self.tamper_events.first()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{IpAddr, Ipv4Addr};
    use tamper_wire::{PacketBuilder, TcpFlags};

    fn pkt(flags: TcpFlags) -> Packet {
        PacketBuilder::new(
            IpAddr::V4(Ipv4Addr::new(10, 0, 0, 1)),
            IpAddr::V4(Ipv4Addr::new(10, 0, 0, 2)),
            1000,
            443,
        )
        .flags(flags)
        .build()
    }

    #[test]
    fn inbound_filters_direction() {
        let trace = SessionTrace {
            packets: vec![
                TracedPacket {
                    time: SimTime::ZERO,
                    dir: Direction::ToServer,
                    origin: Origin::Client,
                    packet: pkt(TcpFlags::SYN),
                },
                TracedPacket {
                    time: SimTime::from_secs(1),
                    dir: Direction::ToClient,
                    origin: Origin::Server,
                    packet: pkt(TcpFlags::SYN_ACK),
                },
            ],
            started: SimTime::ZERO,
            ended: SimTime::from_secs(2),
            tamper_events: vec![],
        };
        assert_eq!(trace.inbound().count(), 1);
        assert!(!trace.was_tampered());
        assert!(trace.first_tamper().is_none());
    }

    #[test]
    fn tamper_truth_recorded() {
        let trace = SessionTrace {
            packets: vec![],
            started: SimTime::ZERO,
            ended: SimTime::ZERO,
            tamper_events: vec![TamperEvent {
                time: SimTime::ZERO,
                hop: 0,
                mechanism: Mechanism::Inject,
                stage: TriggerStage::FirstData,
            }],
        };
        assert!(trace.was_tampered());
        assert_eq!(trace.first_tamper().unwrap().mechanism, Mechanism::Inject);
    }
}
