//! The middlebox interface.
//!
//! A [`Hop`] sits at a point on the path between client and server, sees
//! every packet that traverses it (in both directions), and can forward,
//! drop, or inject packets toward either endpoint. Concrete tampering
//! middleboxes live in the `tamper-middlebox` crate; this module defines
//! only the contract the simulator needs.

use crate::time::{SimDuration, SimTime};
use crate::trace::{Direction, TamperEvent};
use rand::rngs::StdRng;
use tamper_wire::Packet;

/// Context handed to a hop for each packet.
pub struct HopCtx<'a> {
    /// Current simulated time.
    pub now: SimTime,
    /// The session's deterministic RNG.
    pub rng: &'a mut StdRng,
    /// Ground-truth sink: hops push a [`TamperEvent`] whenever they fire.
    pub tamper_events: &'a mut Vec<TamperEvent>,
    /// This hop's index along the path (for ground-truth attribution).
    pub hop_index: u8,
}

/// What a hop decided to do with one packet.
#[derive(Debug, Default)]
pub struct HopOutcome {
    /// Whether the observed packet continues toward its destination.
    pub forward: bool,
    /// Packets to inject toward the server, each after a relative delay.
    pub inject_to_server: Vec<(Packet, SimDuration)>,
    /// Packets to inject toward the client, each after a relative delay.
    pub inject_to_client: Vec<(Packet, SimDuration)>,
}

impl HopOutcome {
    /// Pass the packet through untouched.
    pub fn pass() -> HopOutcome {
        HopOutcome {
            forward: true,
            ..Default::default()
        }
    }

    /// Silently drop the packet.
    pub fn drop_packet() -> HopOutcome {
        HopOutcome::default()
    }

    /// Add an injection toward the server.
    pub fn with_injection_to_server(mut self, pkt: Packet, delay: SimDuration) -> HopOutcome {
        self.inject_to_server.push((pkt, delay));
        self
    }

    /// Add an injection toward the client.
    pub fn with_injection_to_client(mut self, pkt: Packet, delay: SimDuration) -> HopOutcome {
        self.inject_to_client.push((pkt, delay));
        self
    }
}

/// A point on the path that observes and may manipulate traffic.
pub trait Hop {
    /// Called for every packet traversing this hop. `dir` is the packet's
    /// direction of travel.
    fn on_packet(&mut self, ctx: &mut HopCtx<'_>, pkt: &Packet, dir: Direction) -> HopOutcome;
}

/// A hop that forwards everything — the identity middlebox.
#[derive(Debug, Default, Clone, Copy)]
pub struct TransparentHop;

impl Hop for TransparentHop {
    fn on_packet(&mut self, _ctx: &mut HopCtx<'_>, _pkt: &Packet, _dir: Direction) -> HopOutcome {
        HopOutcome::pass()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::derive_rng;
    use std::net::{IpAddr, Ipv4Addr};
    use tamper_wire::{PacketBuilder, TcpFlags};

    #[test]
    fn transparent_hop_forwards() {
        let pkt = PacketBuilder::new(
            IpAddr::V4(Ipv4Addr::new(10, 0, 0, 1)),
            IpAddr::V4(Ipv4Addr::new(10, 0, 0, 2)),
            1,
            2,
        )
        .flags(TcpFlags::SYN)
        .build();
        let mut rng = derive_rng(1, 1);
        let mut events = Vec::new();
        let mut ctx = HopCtx {
            now: SimTime::ZERO,
            rng: &mut rng,
            tamper_events: &mut events,
            hop_index: 0,
        };
        let out = TransparentHop.on_packet(&mut ctx, &pkt, Direction::ToServer);
        assert!(out.forward);
        assert!(out.inject_to_server.is_empty());
        assert!(out.inject_to_client.is_empty());
        assert!(events.is_empty());
    }

    #[test]
    fn outcome_builders() {
        let pkt = PacketBuilder::new(
            IpAddr::V4(Ipv4Addr::new(10, 0, 0, 1)),
            IpAddr::V4(Ipv4Addr::new(10, 0, 0, 2)),
            1,
            2,
        )
        .flags(TcpFlags::RST)
        .build();
        let out = HopOutcome::drop_packet()
            .with_injection_to_server(pkt.clone(), SimDuration::from_micros(10))
            .with_injection_to_client(pkt, SimDuration::from_micros(20));
        assert!(!out.forward);
        assert_eq!(out.inject_to_server.len(), 1);
        assert_eq!(out.inject_to_client.len(), 1);
    }
}
