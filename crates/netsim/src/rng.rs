//! Deterministic randomness helpers.
//!
//! Every session derives its own RNG stream from a global seed and the
//! session id via SplitMix64, so simulations are reproducible regardless of
//! execution order or thread sharding.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// SplitMix64 step — a strong 64-bit mixer, used to derive independent
/// seeds from (seed, stream) pairs.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derive an [`StdRng`] for stream `stream` of master seed `seed`.
pub fn derive_rng(seed: u64, stream: u64) -> StdRng {
    let a = splitmix64(seed ^ stream.wrapping_mul(0xA24B_AED4_963E_E407));
    let b = splitmix64(a);
    let c = splitmix64(b);
    let d = splitmix64(c);
    let mut bytes = [0u8; 32];
    bytes[0..8].copy_from_slice(&a.to_le_bytes());
    bytes[8..16].copy_from_slice(&b.to_le_bytes());
    bytes[16..24].copy_from_slice(&c.to_le_bytes());
    bytes[24..32].copy_from_slice(&d.to_le_bytes());
    StdRng::from_seed(bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_inputs_same_stream() {
        let mut a = derive_rng(42, 7);
        let mut b = derive_rng(42, 7);
        for _ in 0..16 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_streams_differ() {
        let mut a = derive_rng(42, 7);
        let mut b = derive_rng(42, 8);
        let va: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn splitmix_is_not_identity() {
        assert_ne!(splitmix64(0), 0);
        assert_ne!(splitmix64(1), splitmix64(2));
    }
}
