//! The CDN edge server endpoint.
//!
//! The server is a passive party in the tampering story: its outbound
//! packets are never logged by the collection pipeline, but its behaviour
//! shapes what the client does (and therefore what arrives inbound). It
//! implements the standard accept / respond / teardown cycle with SYN+ACK
//! retransmission.

use crate::endpoint::{
    segment_options, tsval_at, Actions, EndpointInput, EndpointMachine, IpIdGen, IpIdMode,
};
use crate::time::{SimDuration, SimTime};
use bytes::Bytes;
use rand::rngs::StdRng;
use tamper_wire::{Packet, PacketBuilder, TcpFlags, TcpHeader};

use std::net::IpAddr;

/// Static configuration of the server side of one session.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Server address.
    pub addr: IpAddr,
    /// Listening port.
    pub port: u16,
    /// Server initial sequence number.
    pub isn: u32,
    /// Number of response segments per request.
    pub response_segments: u8,
    /// Bytes per response segment.
    pub segment_len: u16,
    /// Server think time before the response.
    pub response_delay: SimDuration,
    /// Initial TTL on server packets.
    pub initial_ttl: u8,
}

impl ServerConfig {
    /// A small, fast responder used by most sessions.
    pub fn default_edge(addr: IpAddr, port: u16) -> ServerConfig {
        ServerConfig {
            addr,
            port,
            isn: 0x7000_0000,
            response_segments: 3,
            segment_len: 1200,
            response_delay: SimDuration::from_millis(3),
            initial_ttl: 64,
        }
    }
}

/// Server timer kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServerTimer {
    /// Retransmit the SYN+ACK if the handshake never completed.
    RetransmitSynAck,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Listen,
    SynReceived,
    Established,
    FinWait,
    Closed,
}

/// The server endpoint state machine.
#[derive(Debug)]
pub struct Server {
    cfg: ServerConfig,
    state: State,
    peer: Option<(IpAddr, u16)>,
    snd_nxt: u32,
    rcv_nxt: u32,
    client_tsval: u32,
    ip_id: IpIdGen,
    synack_retries_left: u8,
    synack_rto: SimDuration,
    buffered_syn_request: bool,
}

impl Server {
    /// Create a listening server.
    pub fn new(cfg: ServerConfig) -> Server {
        Server {
            state: State::Listen,
            peer: None,
            snd_nxt: cfg.isn,
            rcv_nxt: 0,
            client_tsval: 0,
            ip_id: IpIdGen::new(IpIdMode::Counter {
                start: 0x4242,
                stride_max: 1,
            }),
            synack_retries_left: 2,
            synack_rto: SimDuration::from_secs(1),
            buffered_syn_request: false,
            cfg,
        }
    }

    /// True once the connection is torn down.
    pub fn is_closed(&self) -> bool {
        self.state == State::Closed
    }

    fn builder(&mut self, rng: &mut StdRng) -> Option<PacketBuilder> {
        let (peer_addr, peer_port) = self.peer?;
        let id = self.ip_id.next(rng);
        Some(
            PacketBuilder::new(self.cfg.addr, peer_addr, self.cfg.port, peer_port)
                .ttl(self.cfg.initial_ttl)
                .ip_id(id),
        )
    }

    fn seg_options(&self, now: SimTime) -> Vec<tamper_wire::TcpOption> {
        segment_options(tsval_at(now), self.client_tsval)
    }

    fn send_synack(&mut self, now: SimTime, rng: &mut StdRng, actions: &mut Actions<ServerTimer>) {
        let isn = self.cfg.isn;
        let rcv_nxt = self.rcv_nxt;
        let Some(b) = self.builder(rng) else { return };
        let synack = b
            .flags(TcpFlags::SYN_ACK)
            .seq(isn)
            .ack(rcv_nxt)
            .options(TcpHeader::standard_syn_options())
            .build();
        actions.emit(synack, SimDuration::ZERO);
        let _ = now;
    }

    fn send_response(
        &mut self,
        now: SimTime,
        rng: &mut StdRng,
        actions: &mut Actions<ServerTimer>,
    ) {
        let n = self.cfg.response_segments.max(1);
        for i in 0..n {
            let last = i + 1 == n;
            let flags = if last {
                TcpFlags::PSH_ACK
            } else {
                TcpFlags::ACK
            };
            let len = self.cfg.segment_len as usize;
            // tamperlint: allow(hot-path-alloc) — the response body is owned by the emitted packet; the sim composes owned packets by design
            let body = Bytes::from(vec![b'D'; len]);
            let opts = self.seg_options(now);
            let seq = self.snd_nxt;
            let ack = self.rcv_nxt;
            let Some(b) = self.builder(rng) else { return };
            let pkt = b
                .flags(flags)
                .seq(seq)
                .ack(ack)
                .options(opts)
                .payload(body)
                .build();
            // Space segments by 1 ms of serialization plus think time.
            let delay = self.cfg.response_delay + SimDuration::from_millis(u64::from(i));
            actions.emit(pkt, delay);
            self.snd_nxt = self.snd_nxt.wrapping_add(len as u32);
        }
    }

    /// Handle an inbound packet (this call is also the capture point: the
    /// session driver records the packet before invoking it).
    pub fn on_packet(
        &mut self,
        now: SimTime,
        pkt: &Packet,
        rng: &mut StdRng,
    ) -> Actions<ServerTimer> {
        let mut actions = Actions::none();
        if self.state == State::Closed {
            return actions;
        }
        if pkt.tcp.flags.has_rst() {
            // Genuine or injected reset: tear down immediately and silently.
            self.state = State::Closed;
            return actions;
        }
        for opt in &pkt.tcp.options {
            if let tamper_wire::TcpOption::Timestamps { tsval, .. } = opt {
                self.client_tsval = *tsval;
            }
        }

        if pkt.tcp.flags.has_syn() {
            if self.state == State::Listen {
                self.peer = Some((pkt.ip.src(), pkt.tcp.src_port));
                self.rcv_nxt = pkt
                    .tcp
                    .seq
                    .wrapping_add(1)
                    .wrapping_add(pkt.payload.len() as u32);
                self.snd_nxt = self.cfg.isn.wrapping_add(1);
                self.buffered_syn_request = !pkt.payload.is_empty();
                self.state = State::SynReceived;
                self.send_synack(now, rng, &mut actions);
                actions.arm(ServerTimer::RetransmitSynAck, self.synack_rto);
            } else {
                // Duplicate SYN (client retransmission): re-ACK it.
                self.send_synack(now, rng, &mut actions);
            }
            return actions;
        }

        if self.state == State::SynReceived && pkt.tcp.flags.has_ack() && pkt.payload.is_empty() {
            self.state = State::Established;
            if self.buffered_syn_request {
                // The request rode the SYN (§4.1): respond now.
                self.buffered_syn_request = false;
                self.send_response(now, rng, &mut actions);
            }
            return actions;
        }

        if !pkt.payload.is_empty() {
            if self.state == State::SynReceived {
                // Data completes the handshake implicitly.
                self.state = State::Established;
            }
            if pkt.tcp.seq != self.rcv_nxt {
                // Duplicate (e.g. a retransmission that raced our ACK):
                // re-ACK current state.
                let opts = self.seg_options(now);
                let seq = self.snd_nxt;
                let ack = self.rcv_nxt;
                if let Some(b) = self.builder(rng) {
                    actions.emit(
                        b.flags(TcpFlags::ACK)
                            .seq(seq)
                            .ack(ack)
                            .options(opts)
                            .build(),
                        SimDuration::ZERO,
                    );
                }
                return actions;
            }
            self.rcv_nxt = self.rcv_nxt.wrapping_add(pkt.payload.len() as u32);
            let opts = self.seg_options(now);
            let seq = self.snd_nxt;
            let ack = self.rcv_nxt;
            if let Some(b) = self.builder(rng) {
                actions.emit(
                    b.flags(TcpFlags::ACK)
                        .seq(seq)
                        .ack(ack)
                        .options(opts)
                        .build(),
                    SimDuration::ZERO,
                );
            }
            self.send_response(now, rng, &mut actions);
            return actions;
        }

        if pkt.tcp.flags.has_fin() {
            self.rcv_nxt = pkt.tcp.seq.wrapping_add(1);
            // ACK the FIN and send our own FIN+ACK together.
            let opts = self.seg_options(now);
            let seq = self.snd_nxt;
            let ack = self.rcv_nxt;
            if let Some(b) = self.builder(rng) {
                actions.emit(
                    b.flags(TcpFlags::FIN_ACK)
                        .seq(seq)
                        .ack(ack)
                        .options(opts)
                        .build(),
                    SimDuration::ZERO,
                );
            }
            self.snd_nxt = self.snd_nxt.wrapping_add(1);
            self.state = State::FinWait;
            return actions;
        }

        // Pure ACK in Established / FinWait: bookkeeping only.
        if self.state == State::FinWait && pkt.tcp.ack == self.snd_nxt {
            self.state = State::Closed;
        }
        actions
    }

    /// Handle a timer firing.
    pub fn on_timer(
        &mut self,
        now: SimTime,
        timer: ServerTimer,
        rng: &mut StdRng,
    ) -> Actions<ServerTimer> {
        let mut actions = Actions::none();
        match timer {
            ServerTimer::RetransmitSynAck => {
                if self.state == State::SynReceived {
                    if self.synack_retries_left == 0 {
                        self.state = State::Closed;
                        return actions;
                    }
                    self.synack_retries_left -= 1;
                    self.send_synack(now, rng, &mut actions);
                    self.synack_rto = self.synack_rto.double();
                    actions.arm(ServerTimer::RetransmitSynAck, self.synack_rto);
                }
            }
        }
        actions
    }
}

impl EndpointMachine for Server {
    type Timer = ServerTimer;

    /// The sans-IO entry point. A server does nothing at `Start` — it is
    /// already listening; everything else dispatches to the unchanged
    /// packet/timer handlers.
    fn process(
        &mut self,
        input: EndpointInput<ServerTimer>,
        now: SimTime,
        rng: &mut StdRng,
    ) -> Actions<ServerTimer> {
        match input {
            EndpointInput::Start => Actions::none(),
            EndpointInput::Packet(pkt) => self.on_packet(now, &pkt, rng),
            EndpointInput::Timer(t) => self.on_timer(now, t, rng),
        }
    }

    fn is_closed(&self) -> bool {
        Server::is_closed(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::derive_rng;
    use std::net::Ipv4Addr;

    fn addrs() -> (IpAddr, IpAddr) {
        (
            IpAddr::V4(Ipv4Addr::new(203, 0, 113, 5)),
            IpAddr::V4(Ipv4Addr::new(198, 51, 100, 1)),
        )
    }

    fn syn(client: IpAddr, server: IpAddr) -> Packet {
        PacketBuilder::new(client, server, 40000, 443)
            .flags(TcpFlags::SYN)
            .seq(100)
            .options(TcpHeader::standard_syn_options())
            .build()
    }

    #[test]
    fn syn_gets_synack() {
        let (client, server) = addrs();
        let mut s = Server::new(ServerConfig::default_edge(server, 443));
        let mut rng = derive_rng(2, 1);
        let a = s.on_packet(SimTime::ZERO, &syn(client, server), &mut rng);
        assert_eq!(a.emits.len(), 1);
        let synack = &a.emits[0].0;
        assert_eq!(synack.tcp.flags, TcpFlags::SYN_ACK);
        assert_eq!(synack.tcp.ack, 101);
        assert_eq!(a.timers.len(), 1);
    }

    #[test]
    fn data_gets_ack_and_response() {
        let (client, server) = addrs();
        let mut s = Server::new(ServerConfig::default_edge(server, 443));
        let mut rng = derive_rng(2, 2);
        let _ = s.on_packet(SimTime::ZERO, &syn(client, server), &mut rng);
        let ack = PacketBuilder::new(client, server, 40000, 443)
            .flags(TcpFlags::ACK)
            .seq(101)
            .ack(0x7000_0001)
            .build();
        let _ = s.on_packet(SimTime(1), &ack, &mut rng);
        let data = PacketBuilder::new(client, server, 40000, 443)
            .flags(TcpFlags::PSH_ACK)
            .seq(101)
            .ack(0x7000_0001)
            .payload(Bytes::from_static(b"GET / HTTP/1.1\r\nHost: x\r\n\r\n"))
            .build();
        let a = s.on_packet(SimTime(2), &data, &mut rng);
        // One ACK plus three response segments, last carrying PSH.
        assert_eq!(a.emits.len(), 4);
        assert_eq!(a.emits[0].0.tcp.flags, TcpFlags::ACK);
        assert_eq!(a.emits[3].0.tcp.flags, TcpFlags::PSH_ACK);
        assert!(!a.emits[1].0.payload.is_empty());
    }

    #[test]
    fn rst_closes_silently() {
        let (client, server) = addrs();
        let mut s = Server::new(ServerConfig::default_edge(server, 443));
        let mut rng = derive_rng(2, 3);
        let _ = s.on_packet(SimTime::ZERO, &syn(client, server), &mut rng);
        let rst = PacketBuilder::new(client, server, 40000, 443)
            .flags(TcpFlags::RST)
            .seq(101)
            .build();
        let a = s.on_packet(SimTime(1), &rst, &mut rng);
        assert!(a.emits.is_empty());
        assert!(s.is_closed());
        // Subsequent packets are ignored.
        let late = s.on_packet(SimTime(2), &syn(client, server), &mut rng);
        assert!(late.emits.is_empty());
    }

    #[test]
    fn synack_retransmits_then_gives_up() {
        let (client, server) = addrs();
        let mut s = Server::new(ServerConfig::default_edge(server, 443));
        let mut rng = derive_rng(2, 4);
        let _ = s.on_packet(SimTime::ZERO, &syn(client, server), &mut rng);
        let a1 = s.on_timer(
            SimTime::from_secs(1),
            ServerTimer::RetransmitSynAck,
            &mut rng,
        );
        assert_eq!(a1.emits.len(), 1);
        let a2 = s.on_timer(
            SimTime::from_secs(3),
            ServerTimer::RetransmitSynAck,
            &mut rng,
        );
        assert_eq!(a2.emits.len(), 1);
        let a3 = s.on_timer(
            SimTime::from_secs(7),
            ServerTimer::RetransmitSynAck,
            &mut rng,
        );
        assert!(a3.emits.is_empty());
        assert!(s.is_closed());
    }

    #[test]
    fn syn_payload_request_answered_after_handshake() {
        let (client, server) = addrs();
        let mut s = Server::new(ServerConfig::default_edge(server, 443));
        let mut rng = derive_rng(2, 5);
        let syn_with_data = PacketBuilder::new(client, server, 40000, 80)
            .flags(TcpFlags::SYN)
            .seq(100)
            .payload(Bytes::from_static(b"GET / HTTP/1.1\r\nHost: x\r\n\r\n"))
            .build();
        let a = s.on_packet(SimTime::ZERO, &syn_with_data, &mut rng);
        assert_eq!(a.emits[0].0.tcp.flags, TcpFlags::SYN_ACK);
        // Handshake ACK releases the buffered response.
        let ack = PacketBuilder::new(client, server, 40000, 80)
            .flags(TcpFlags::ACK)
            .seq(128)
            .ack(0x7000_0001)
            .build();
        let b = s.on_packet(SimTime(1), &ack, &mut rng);
        assert_eq!(b.emits.len(), 3); // response segments only
    }

    #[test]
    fn fin_is_acked_with_fin() {
        let (client, server) = addrs();
        let mut s = Server::new(ServerConfig::default_edge(server, 443));
        let mut rng = derive_rng(2, 6);
        let _ = s.on_packet(SimTime::ZERO, &syn(client, server), &mut rng);
        let ack = PacketBuilder::new(client, server, 40000, 443)
            .flags(TcpFlags::ACK)
            .seq(101)
            .ack(0x7000_0001)
            .build();
        let _ = s.on_packet(SimTime(1), &ack, &mut rng);
        let fin = PacketBuilder::new(client, server, 40000, 443)
            .flags(TcpFlags::FIN_ACK)
            .seq(101)
            .ack(0x7000_0001)
            .build();
        let a = s.on_packet(SimTime(2), &fin, &mut rng);
        assert_eq!(a.emits.len(), 1);
        assert!(a.emits[0].0.tcp.flags.has_fin());
        assert!(!s.is_closed());
        // Final ACK of our FIN closes.
        let last = PacketBuilder::new(client, server, 40000, 443)
            .flags(TcpFlags::ACK)
            .seq(102)
            .ack(0x7000_0002)
            .build();
        let _ = s.on_packet(SimTime(3), &last, &mut rng);
        assert!(s.is_closed());
    }
}
