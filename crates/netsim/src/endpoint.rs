//! Shared endpoint machinery: emission actions, IP-ID generation policies,
//! and the option sets real stacks put on their packets.

use crate::time::{SimDuration, SimTime};
use rand::rngs::StdRng;
use rand::Rng;
use tamper_wire::{Packet, TcpOption};

/// What an endpoint wants done after handling a packet or timer: packets to
/// emit (after a relative delay) and timers to arm.
#[derive(Debug)]
pub struct Actions<T> {
    /// Packets to send, each after the given delay from "now".
    pub emits: Vec<(Packet, SimDuration)>,
    /// Timers to arm, each firing after the given delay from "now".
    pub timers: Vec<(T, SimDuration)>,
}

impl<T> Default for Actions<T> {
    fn default() -> Actions<T> {
        Actions {
            // tamperlint: allow(hot-path-alloc) — zero-capacity Vecs: the empty Actions shell defers any heap use to the first emit
            emits: Vec::new(),
            // tamperlint: allow(hot-path-alloc) — zero-capacity Vecs: the empty Actions shell defers any heap use to the first emit
            timers: Vec::new(),
        }
    }
}

impl<T> Actions<T> {
    /// No packets, no timers.
    pub fn none() -> Actions<T> {
        Actions::default()
    }

    /// Queue a packet for emission after `delay`.
    pub fn emit(&mut self, pkt: Packet, delay: SimDuration) {
        self.emits.push((pkt, delay));
    }

    /// Arm a timer.
    pub fn arm(&mut self, timer: T, delay: SimDuration) {
        self.timers.push((timer, delay));
    }
}

/// One input to an endpoint state machine: the same sans-IO shape as the
/// classifier's `FlowMachine` — owned events plus injected time, no
/// sockets, no sleeps, no ambient clock.
#[derive(Debug)]
pub enum EndpointInput<T> {
    /// The session begins. Clients emit their opening SYN here; servers
    /// simply listen.
    Start,
    /// A packet arrived from the wire.
    Packet(Packet),
    /// A previously armed timer fired.
    Timer(T),
}

/// The unified sans-IO endpoint interface: `process(input, now, rng)`
/// is the single entry point the session driver calls for both sides.
/// Implementations must be pure of IO — everything they want done comes
/// back as [`Actions`], and time only enters through `now`.
pub trait EndpointMachine {
    /// The endpoint's timer vocabulary.
    type Timer;

    /// Advance the machine by one input.
    fn process(
        &mut self,
        input: EndpointInput<Self::Timer>,
        now: SimTime,
        rng: &mut StdRng,
    ) -> Actions<Self::Timer>;

    /// True once the endpoint has reached its terminal state.
    fn is_closed(&self) -> bool;
}

/// How a stack chooses IPv4 identification values — the behaviours the
/// paper's §4.3 relies on: most clients produce IP-ID deltas of 0 or 1
/// between consecutive packets of a flow, while injectors do not share the
/// client's counter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum IpIdMode {
    /// Always zero (common for modern Linux on DF packets).
    Zero,
    /// A counter starting at `start`, advancing by 1..=`stride_max` per
    /// packet (stride 1 ≈ per-flow counter; larger ≈ global counter shared
    /// with the host's other flows).
    Counter {
        /// Initial counter value.
        start: u16,
        /// Maximum per-packet stride (≥ 1).
        stride_max: u16,
    },
    /// A fixed nonzero value — ZMap famously uses 54321.
    Fixed(u16),
    /// Fresh uniform random value per packet (some injectors).
    Random,
}

/// Stateful IP-ID generator for one stack.
#[derive(Debug, Clone)]
pub struct IpIdGen {
    mode: IpIdMode,
    counter: u16,
}

impl IpIdGen {
    /// Create a generator with the given policy.
    pub fn new(mode: IpIdMode) -> IpIdGen {
        let counter = match mode {
            IpIdMode::Counter { start, .. } => start,
            _ => 0,
        };
        IpIdGen { mode, counter }
    }

    /// Produce the IP-ID for the next packet.
    pub fn next(&mut self, rng: &mut StdRng) -> u16 {
        match self.mode {
            IpIdMode::Zero => 0,
            IpIdMode::Fixed(v) => v,
            IpIdMode::Random => rng.gen(),
            IpIdMode::Counter { stride_max, .. } => {
                let stride = if stride_max <= 1 {
                    1
                } else {
                    rng.gen_range(1..=stride_max)
                };
                let v = self.counter;
                self.counter = self.counter.wrapping_add(stride);
                v
            }
        }
    }
}

/// The options a modern stack puts on non-SYN segments once timestamps
/// were negotiated: `NOP NOP Timestamps`.
pub fn segment_options(tsval: u32, tsecr: u32) -> Vec<TcpOption> {
    // tamperlint: allow(hot-path-alloc) — three-entry option list owned by the emitted segment; the sim composes owned packets by design
    vec![
        TcpOption::Nop,
        TcpOption::Nop,
        TcpOption::Timestamps { tsval, tsecr },
    ]
}

/// Millisecond-resolution TCP timestamp value for a simulated instant.
pub fn tsval_at(t: SimTime) -> u32 {
    (t.as_nanos() / 1_000_000) as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::derive_rng;

    #[test]
    fn zero_mode_is_always_zero() {
        let mut g = IpIdGen::new(IpIdMode::Zero);
        let mut rng = derive_rng(1, 1);
        for _ in 0..4 {
            assert_eq!(g.next(&mut rng), 0);
        }
    }

    #[test]
    fn fixed_mode_is_constant() {
        let mut g = IpIdGen::new(IpIdMode::Fixed(54321));
        let mut rng = derive_rng(1, 1);
        assert_eq!(g.next(&mut rng), 54321);
        assert_eq!(g.next(&mut rng), 54321);
    }

    #[test]
    fn unit_stride_counter_increments_by_one() {
        let mut g = IpIdGen::new(IpIdMode::Counter {
            start: 100,
            stride_max: 1,
        });
        let mut rng = derive_rng(1, 1);
        assert_eq!(g.next(&mut rng), 100);
        assert_eq!(g.next(&mut rng), 101);
        assert_eq!(g.next(&mut rng), 102);
    }

    #[test]
    fn counter_wraps() {
        let mut g = IpIdGen::new(IpIdMode::Counter {
            start: u16::MAX,
            stride_max: 1,
        });
        let mut rng = derive_rng(1, 1);
        assert_eq!(g.next(&mut rng), u16::MAX);
        assert_eq!(g.next(&mut rng), 0);
    }

    #[test]
    fn bounded_stride_counter_deltas() {
        let mut g = IpIdGen::new(IpIdMode::Counter {
            start: 0,
            stride_max: 3,
        });
        let mut rng = derive_rng(7, 7);
        let mut prev = g.next(&mut rng);
        for _ in 0..32 {
            let v = g.next(&mut rng);
            let delta = v.wrapping_sub(prev);
            assert!((1..=3).contains(&delta), "delta {delta}");
            prev = v;
        }
    }

    #[test]
    fn tsval_is_milliseconds() {
        assert_eq!(tsval_at(SimTime::from_secs(2)), 2000);
    }
}
