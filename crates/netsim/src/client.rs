//! The client-side TCP state machine and the population of client
//! behaviours the paper's data contains: ordinary web clients, scanners,
//! Happy-Eyeballs losers, user aborts, and clients that simply vanish.
//!
//! The client is deliberately a *simplified but honest* TCP: correct
//! sequence/acknowledgement arithmetic, SYN and request retransmission with
//! exponential backoff, graceful FIN teardown, and abort-on-RST. These are
//! the behaviours that shape the inbound packet sequences the classifier
//! sees.

use crate::endpoint::{
    segment_options, tsval_at, Actions, EndpointInput, EndpointMachine, IpIdGen, IpIdMode,
};
use crate::time::{SimDuration, SimTime};
use bytes::Bytes;
use rand::rngs::StdRng;
use tamper_wire::{http, tls, IpHeader, Packet, PacketBuilder, TcpFlags, TcpHeader};

use std::net::IpAddr;

/// What the client asks for once connected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RequestPayload {
    /// An HTTPS connection: the first data packet is a TLS ClientHello
    /// carrying this SNI.
    TlsClientHello {
        /// Server name sent in the clear.
        sni: String,
    },
    /// A cleartext HTTP GET.
    HttpGet {
        /// Host header.
        host: String,
        /// Request path.
        path: String,
        /// User-Agent header.
        user_agent: String,
    },
    /// Two sequential HTTP requests on one connection; the second path can
    /// carry a keyword that triggers Post-Data tampering.
    HttpTwo {
        /// Host header.
        host: String,
        /// First request path.
        path1: String,
        /// Second request path.
        path2: String,
        /// User-Agent header.
        user_agent: String,
    },
    /// An HTTP GET carried in the SYN payload itself (the §4.1 oddity:
    /// 38% of port-80 SYNs on one sampled day).
    HttpInSyn {
        /// Host header.
        host: String,
        /// Request path.
        path: String,
    },
    /// No request — used by scanners.
    None,
}

impl RequestPayload {
    /// Bytes of the first request, if any (excluding `HttpInSyn`, which is
    /// carried on the SYN).
    fn first_bytes(&self, random: [u8; 32]) -> Option<Bytes> {
        match self {
            RequestPayload::TlsClientHello { sni } => Some(tls::build_client_hello(sni, random)),
            RequestPayload::HttpGet {
                host,
                path,
                user_agent,
            } => Some(http::build_get(host, path, user_agent)),
            RequestPayload::HttpTwo {
                host,
                path1,
                user_agent,
                ..
            } => Some(http::build_get(host, path1, user_agent)),
            RequestPayload::HttpInSyn { .. } | RequestPayload::None => None,
        }
    }

    /// Bytes of the second request, for `HttpTwo`.
    fn second_bytes(&self) -> Option<Bytes> {
        match self {
            RequestPayload::HttpTwo {
                host,
                path2,
                user_agent,
                ..
            } => Some(http::build_get(host, path2, user_agent)),
            _ => None,
        }
    }

    /// Payload to carry on the SYN itself.
    fn syn_bytes(&self) -> Option<Bytes> {
        match self {
            RequestPayload::HttpInSyn { host, path } => {
                Some(http::build_get(host, path, "syn-optimizer/1.0"))
            }
            _ => None,
        }
    }
}

/// The stage at which a vanishing client stops transmitting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VanishStage {
    /// After the SYN (no retransmissions — the host is gone).
    AfterSyn,
    /// After completing the handshake, before any request.
    AfterAck,
    /// After sending the request.
    AfterRequest,
    /// After acknowledging part of the response.
    MidResponse,
}

/// Client behaviour archetypes observed in real CDN traffic.
#[derive(Debug, Clone, PartialEq)]
pub enum ClientKind {
    /// Ordinary browser/client: full handshake, request, response, FIN.
    Normal,
    /// ZMap-style scanner: option-less SYN, IP-ID 54321, TTL ≥ 200,
    /// answers the SYN+ACK with a bare RST (§4.2).
    ZmapScanner,
    /// SYN-only scanner or spoofed SYN-flood residue: one SYN, silence.
    SilentScanner,
    /// Happy-Eyeballs loser that cancels with a RST once the other address
    /// family wins (Chromium / RFC 8305 behaviour).
    HappyEyeballsRst {
        /// When the race is decided.
        cancel_after: SimDuration,
    },
    /// Happy-Eyeballs loser that just abandons the connection (older
    /// RFC 6555 clients such as curl).
    HappyEyeballsSilent {
        /// When the race is decided.
        cancel_after: SimDuration,
    },
    /// User abort: RST after receiving `segments` response segments.
    AbortAfterResponse {
        /// Segments received before the abort.
        segments: u8,
    },
    /// The client loses connectivity (radio gap, roam, crash): stops
    /// transmitting at `stage` without any teardown.
    VanishAfter {
        /// Where transmission stops.
        stage: VanishStage,
    },
    /// A client that stalls mid-connection for `stall` and then resumes —
    /// a benign source of inactivity-gap false positives.
    Stall {
        /// The pause inserted before the request is sent.
        stall: SimDuration,
    },
    /// A client that closes gracefully but follows its FIN with a RST
    /// (common when `close()` is called with unread data). Produces the
    /// paper's unmatched "other possibly tampered" residue.
    FinThenRst,
    /// A client that completes the handshake, emits a duplicate ACK, and
    /// vanishes — "a connection terminated after a SYN and two ACKs", the
    /// paper's example of an unclassifiable sequence.
    DupAckThenVanish,
    /// A client whose network breaks asymmetrically right after connect:
    /// it never receives the SYN+ACK, so it keeps retransmitting the SYN
    /// and gives up. The server sees multiple SYNs then silence — a
    /// Post-SYN sequence no signature covers.
    MultiSynVanish,
}

/// Static configuration of one client session.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Client source address.
    pub src: IpAddr,
    /// Server destination address.
    pub dst: IpAddr,
    /// Ephemeral source port.
    pub src_port: u16,
    /// 80 for HTTP, 443 for HTTPS.
    pub dst_port: u16,
    /// Request content.
    pub request: RequestPayload,
    /// Behaviour archetype.
    pub kind: ClientKind,
    /// IP-ID policy of the client stack.
    pub ip_id: IpIdMode,
    /// Initial TTL / hop limit (64 or 128 for real stacks; 255 for ZMap).
    pub initial_ttl: u8,
    /// Initial sequence number.
    pub isn: u32,
    /// Receive window advertised.
    pub window: u16,
    /// Think time between handshake completion and the request.
    pub request_delay: SimDuration,
    /// Whether the SYN carries a standard option set (scanners don't).
    pub syn_options: bool,
    /// TLS ClientHello random bytes (derandomized per session).
    pub tls_random: [u8; 32],
}

impl ClientConfig {
    /// A plain HTTPS client with sensible defaults, for tests.
    pub fn default_tls(src: IpAddr, dst: IpAddr, sni: &str) -> ClientConfig {
        ClientConfig {
            src,
            dst,
            src_port: 40000,
            dst_port: 443,
            request: RequestPayload::TlsClientHello {
                sni: sni.to_owned(),
            },
            kind: ClientKind::Normal,
            ip_id: IpIdMode::Counter {
                start: 1000,
                stride_max: 1,
            },
            initial_ttl: 64,
            isn: 0x1000_0000,
            window: 64240,
            request_delay: SimDuration::from_millis(5),
            syn_options: true,
            tls_random: [7u8; 32],
        }
    }
}

/// Client timer kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClientTimer {
    /// Retransmit the SYN if still unanswered.
    RetransmitSyn,
    /// Retransmit the request if no response arrived.
    RetransmitRequest,
    /// The Happy-Eyeballs race was decided against this connection.
    HappyEyeballsCancel,
    /// Send the second HTTP request.
    SecondRequest,
    /// Send the deferred (post-stall) request.
    StalledRequest,
    /// Initiate graceful close.
    Close,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Idle,
    SynSent,
    Established,
    Requested,
    FinWait,
    Closed,
}

/// The client endpoint state machine.
#[derive(Debug)]
pub struct Client {
    cfg: ClientConfig,
    state: State,
    snd_nxt: u32,
    rcv_nxt: u32,
    server_tsval: u32,
    ip_id: IpIdGen,
    syn_retries_left: u8,
    syn_rto: SimDuration,
    req_retries_left: u8,
    req_rto: SimDuration,
    request_bytes: Option<Bytes>,
    second_request: Option<Bytes>,
    responses_pending: u8,
    response_segments_seen: u8,
    he_cancelled: bool,
    response_started: bool,
    segs_since_ack: u8,
}

impl Client {
    /// Create the endpoint; call [`Client::start`] to kick off the session.
    pub fn new(cfg: ClientConfig) -> Client {
        let ip_id = IpIdGen::new(cfg.ip_id);
        Client {
            state: State::Idle,
            snd_nxt: cfg.isn,
            rcv_nxt: 0,
            server_tsval: 0,
            ip_id,
            syn_retries_left: 2,
            syn_rto: SimDuration::from_secs(1),
            req_retries_left: 2,
            req_rto: SimDuration::from_secs(1),
            request_bytes: None,
            second_request: None,
            responses_pending: 0,
            response_segments_seen: 0,
            he_cancelled: false,
            response_started: false,
            segs_since_ack: 0,
            cfg,
        }
    }

    /// True once the client will take no further action.
    pub fn is_closed(&self) -> bool {
        self.state == State::Closed
    }

    fn builder(&mut self, rng: &mut StdRng) -> PacketBuilder {
        let id = self.ip_id.next(rng);
        PacketBuilder::new(
            self.cfg.src,
            self.cfg.dst,
            self.cfg.src_port,
            self.cfg.dst_port,
        )
        .ttl(self.cfg.initial_ttl)
        .ip_id(id)
        .window(self.cfg.window)
    }

    fn seg_options(&self, now: SimTime) -> Vec<tamper_wire::TcpOption> {
        if self.cfg.syn_options {
            segment_options(tsval_at(now), self.server_tsval)
        } else {
            // tamperlint: allow(hot-path-alloc) — zero-capacity Vec for the no-options case; Vec::new never touches the heap
            Vec::new()
        }
    }

    /// Begin the connection: emits the SYN and arms initial timers.
    pub fn start(&mut self, _now: SimTime, rng: &mut StdRng) -> Actions<ClientTimer> {
        let mut actions = Actions::none();
        let syn_payload = self.cfg.request.syn_bytes().unwrap_or_default();
        let payload_len = syn_payload.len() as u32;
        let mut b = self
            .builder(rng)
            .flags(TcpFlags::SYN)
            .seq(self.cfg.isn)
            .payload(syn_payload);
        if self.cfg.syn_options {
            b = b.options(TcpHeader::standard_syn_options());
        }
        actions.emit(b.build(), SimDuration::ZERO);
        self.snd_nxt = self.cfg.isn.wrapping_add(1).wrapping_add(payload_len);
        self.state = State::SynSent;

        match &self.cfg.kind {
            ClientKind::VanishAfter {
                stage: VanishStage::AfterSyn,
            }
            | ClientKind::SilentScanner => {
                self.state = State::Closed;
            }
            ClientKind::ZmapScanner => {
                // Waits for the SYN+ACK; no retransmission.
            }
            ClientKind::HappyEyeballsRst { cancel_after }
            | ClientKind::HappyEyeballsSilent { cancel_after } => {
                actions.arm(ClientTimer::HappyEyeballsCancel, *cancel_after);
            }
            _ => {
                actions.arm(ClientTimer::RetransmitSyn, self.syn_rto);
            }
        }
        actions
    }

    /// Handle a packet that arrived at the client.
    pub fn on_packet(
        &mut self,
        now: SimTime,
        pkt: &Packet,
        rng: &mut StdRng,
    ) -> Actions<ClientTimer> {
        let mut actions = Actions::none();
        if self.state == State::Closed {
            return actions;
        }
        if self.cfg.kind == ClientKind::MultiSynVanish {
            // Deaf to everything: the return path is broken.
            return actions;
        }
        if pkt.tcp.flags.has_rst() {
            // Injected or genuine reset: the stack aborts immediately.
            self.state = State::Closed;
            return actions;
        }
        // Track the peer's timestamp for TSecr fidelity.
        for opt in &pkt.tcp.options {
            if let tamper_wire::TcpOption::Timestamps { tsval, .. } = opt {
                self.server_tsval = *tsval;
            }
        }

        if pkt.tcp.flags.contains(TcpFlags::SYN_ACK) && self.state == State::SynSent {
            self.rcv_nxt = pkt.tcp.seq.wrapping_add(1);
            match &self.cfg.kind {
                ClientKind::ZmapScanner => {
                    // ZMap answers with a bare RST and never establishes.
                    let rst = self
                        .builder(rng)
                        .flags(TcpFlags::RST)
                        .seq(pkt.tcp.ack)
                        .build();
                    actions.emit(rst, SimDuration::ZERO);
                    self.state = State::Closed;
                    return actions;
                }
                ClientKind::HappyEyeballsRst { .. } if self.he_cancelled => {
                    let rst = self
                        .builder(rng)
                        .flags(TcpFlags::RST)
                        .seq(pkt.tcp.ack)
                        .build();
                    actions.emit(rst, SimDuration::ZERO);
                    self.state = State::Closed;
                    return actions;
                }
                ClientKind::HappyEyeballsSilent { .. } if self.he_cancelled => {
                    self.state = State::Closed;
                    return actions;
                }
                _ => {}
            }
            // Complete the handshake.
            let opts = self.seg_options(now);
            let ack = self
                .builder(rng)
                .flags(TcpFlags::ACK)
                .seq(self.snd_nxt)
                .ack(self.rcv_nxt)
                .options(opts)
                .build();
            actions.emit(ack, SimDuration::ZERO);
            self.state = State::Established;

            if let ClientKind::VanishAfter {
                stage: VanishStage::AfterAck,
            } = self.cfg.kind
            {
                self.state = State::Closed;
                return actions;
            }
            if self.cfg.kind == ClientKind::DupAckThenVanish {
                let opts = self.seg_options(now);
                let dup = self
                    .builder(rng)
                    .flags(TcpFlags::ACK)
                    .seq(self.snd_nxt)
                    .ack(self.rcv_nxt)
                    .options(opts)
                    .build();
                actions.emit(dup, SimDuration::from_millis(2));
                self.state = State::Closed;
                return actions;
            }
            // Schedule the request (if the behaviour sends one).
            if let ClientKind::Stall { stall } = self.cfg.kind {
                actions.arm(ClientTimer::StalledRequest, stall);
            } else if let Some(req) = self.cfg.request.first_bytes(self.cfg.tls_random) {
                // Send directly after the think time instead of a timer
                // round-trip; simpler and equivalent.
                self.request_bytes = Some(req);
                let send = self.send_request(now, rng);
                for (p, d) in send.emits {
                    actions.emit(p, d + self.cfg.request_delay);
                }
                for (t, d) in send.timers {
                    actions.arm(t, d + self.cfg.request_delay);
                }
            } else if self.cfg.request.syn_bytes().is_some() {
                // Request already rode the SYN; just await the response.
                self.state = State::Requested;
                self.responses_pending = 1;
            } else {
                // No request at all (shouldn't happen for Normal).
                self.state = State::Requested;
            }
            return actions;
        }

        // Data from the server.
        if !pkt.payload.is_empty() && self.state != State::Idle && self.state != State::SynSent {
            if pkt.tcp.seq != self.rcv_nxt {
                // Out-of-window or duplicate; ACK what we have.
                let opts = self.seg_options(now);
                let ack = self
                    .builder(rng)
                    .flags(TcpFlags::ACK)
                    .seq(self.snd_nxt)
                    .ack(self.rcv_nxt)
                    .options(opts)
                    .build();
                actions.emit(ack, SimDuration::ZERO);
                return actions;
            }
            self.rcv_nxt = self.rcv_nxt.wrapping_add(pkt.payload.len() as u32);
            self.response_started = true;
            self.response_segments_seen = self.response_segments_seen.saturating_add(1);

            if let ClientKind::AbortAfterResponse { segments } = self.cfg.kind {
                if self.response_segments_seen >= segments {
                    let rst = self
                        .builder(rng)
                        .flags(TcpFlags::RST)
                        .seq(self.snd_nxt)
                        .build();
                    actions.emit(rst, SimDuration::ZERO);
                    self.state = State::Closed;
                    return actions;
                }
            }
            if let ClientKind::VanishAfter {
                stage: VanishStage::MidResponse,
            } = self.cfg.kind
            {
                if self.response_segments_seen >= 1 {
                    self.state = State::Closed;
                    return actions;
                }
            }

            // Delayed ACK: acknowledge every second segment, and always on
            // a PSH (end of response) — like real stacks, and it keeps
            // healthy flows within the 10-packet collection window.
            self.segs_since_ack += 1;
            if pkt.tcp.flags.has_psh() || self.segs_since_ack >= 2 {
                self.segs_since_ack = 0;
                let opts = self.seg_options(now);
                let ack = self
                    .builder(rng)
                    .flags(TcpFlags::ACK)
                    .seq(self.snd_nxt)
                    .ack(self.rcv_nxt)
                    .options(opts)
                    .build();
                actions.emit(ack, SimDuration::ZERO);
            }

            // PSH on the final segment of a response marks it complete.
            if pkt.tcp.flags.has_psh() {
                self.responses_pending = self.responses_pending.saturating_sub(1);
                if self.second_request.is_some() {
                    actions.arm(ClientTimer::SecondRequest, SimDuration::from_millis(30));
                } else if self.responses_pending == 0 && self.state == State::Requested {
                    actions.arm(ClientTimer::Close, SimDuration::from_millis(10));
                }
            }
            return actions;
        }

        // Server FIN (possibly carried with ACK).
        if pkt.tcp.flags.has_fin() {
            self.rcv_nxt = pkt
                .tcp
                .seq
                .wrapping_add(pkt.payload.len() as u32)
                .wrapping_add(1);
            let opts = self.seg_options(now);
            let ack = self
                .builder(rng)
                .flags(TcpFlags::ACK)
                .seq(self.snd_nxt)
                .ack(self.rcv_nxt)
                .options(opts)
                .build();
            actions.emit(ack, SimDuration::ZERO);
            if self.state != State::FinWait {
                // Server closed first; reply with our FIN.
                let opts = self.seg_options(now);
                let fin = self
                    .builder(rng)
                    .flags(TcpFlags::FIN_ACK)
                    .seq(self.snd_nxt)
                    .ack(self.rcv_nxt)
                    .options(opts)
                    .build();
                actions.emit(fin, SimDuration::from_micros(100));
                self.snd_nxt = self.snd_nxt.wrapping_add(1);
            }
            self.state = State::Closed;
            return actions;
        }

        actions
    }

    fn send_request(&mut self, now: SimTime, rng: &mut StdRng) -> Actions<ClientTimer> {
        let mut actions = Actions::none();
        let Some(req) = self.request_bytes.clone() else {
            return actions;
        };
        let opts = self.seg_options(now);
        let pkt = self
            .builder(rng)
            .flags(TcpFlags::PSH_ACK)
            .seq(self.snd_nxt)
            .ack(self.rcv_nxt)
            .options(opts)
            .payload(req.clone())
            .build();
        actions.emit(pkt, SimDuration::ZERO);
        self.snd_nxt = self.snd_nxt.wrapping_add(req.len() as u32);
        self.state = State::Requested;
        self.responses_pending = self.responses_pending.saturating_add(1);
        self.second_request = self.cfg.request.second_bytes();

        if let ClientKind::VanishAfter {
            stage: VanishStage::AfterRequest,
        } = self.cfg.kind
        {
            self.state = State::Closed;
            return actions;
        }
        actions.arm(ClientTimer::RetransmitRequest, self.req_rto);
        actions
    }

    /// Handle a timer firing.
    pub fn on_timer(
        &mut self,
        now: SimTime,
        timer: ClientTimer,
        rng: &mut StdRng,
    ) -> Actions<ClientTimer> {
        let mut actions = Actions::none();
        if self.state == State::Closed {
            return actions;
        }
        match timer {
            ClientTimer::RetransmitSyn => {
                if self.state == State::SynSent {
                    if self.syn_retries_left == 0 {
                        self.state = State::Closed;
                        return actions;
                    }
                    self.syn_retries_left -= 1;
                    let syn_payload = self.cfg.request.syn_bytes().unwrap_or_default();
                    let mut b = self
                        .builder(rng)
                        .flags(TcpFlags::SYN)
                        .seq(self.cfg.isn)
                        .payload(syn_payload);
                    if self.cfg.syn_options {
                        b = b.options(TcpHeader::standard_syn_options());
                    }
                    actions.emit(b.build(), SimDuration::ZERO);
                    self.syn_rto = self.syn_rto.double();
                    actions.arm(ClientTimer::RetransmitSyn, self.syn_rto);
                }
            }
            ClientTimer::RetransmitRequest => {
                if self.state == State::Requested && !self.response_started {
                    if self.req_retries_left == 0 {
                        self.state = State::Closed;
                        return actions;
                    }
                    self.req_retries_left -= 1;
                    if let Some(req) = self.request_bytes.clone() {
                        let opts = self.seg_options(now);
                        let pkt = self
                            .builder(rng)
                            .flags(TcpFlags::PSH_ACK)
                            .seq(self.snd_nxt.wrapping_sub(req.len() as u32))
                            .ack(self.rcv_nxt)
                            .options(opts)
                            .payload(req)
                            .build();
                        actions.emit(pkt, SimDuration::ZERO);
                    }
                    self.req_rto = self.req_rto.double();
                    actions.arm(ClientTimer::RetransmitRequest, self.req_rto);
                }
            }
            ClientTimer::HappyEyeballsCancel => {
                self.he_cancelled = true;
                if self.state != State::SynSent {
                    // The handshake finished before the race was decided:
                    // tear the connection down now.
                    if let ClientKind::HappyEyeballsRst { .. } = self.cfg.kind {
                        let rst = self
                            .builder(rng)
                            .flags(TcpFlags::RST)
                            .seq(self.snd_nxt)
                            .build();
                        actions.emit(rst, SimDuration::ZERO);
                    }
                    self.state = State::Closed;
                }
                // If still SynSent, the RST/silence happens when (if) the
                // SYN+ACK arrives.
            }
            ClientTimer::SecondRequest => {
                if let Some(req) = self.second_request.take() {
                    let opts = self.seg_options(now);
                    let pkt = self
                        .builder(rng)
                        .flags(TcpFlags::PSH_ACK)
                        .seq(self.snd_nxt)
                        .ack(self.rcv_nxt)
                        .options(opts)
                        .payload(req.clone())
                        .build();
                    actions.emit(pkt, SimDuration::ZERO);
                    self.snd_nxt = self.snd_nxt.wrapping_add(req.len() as u32);
                    self.responses_pending = self.responses_pending.saturating_add(1);
                }
            }
            ClientTimer::StalledRequest => {
                if self.state == State::Established {
                    if let Some(req) = self.cfg.request.first_bytes(self.cfg.tls_random) {
                        self.request_bytes = Some(req);
                        let send = self.send_request(now, rng);
                        actions.emits.extend(send.emits);
                        actions.timers.extend(send.timers);
                    }
                }
            }
            ClientTimer::Close => {
                if self.state == State::Requested {
                    let opts = self.seg_options(now);
                    let fin = self
                        .builder(rng)
                        .flags(TcpFlags::FIN_ACK)
                        .seq(self.snd_nxt)
                        .ack(self.rcv_nxt)
                        .options(opts)
                        .build();
                    actions.emit(fin, SimDuration::ZERO);
                    self.snd_nxt = self.snd_nxt.wrapping_add(1);
                    self.state = State::FinWait;
                    if self.cfg.kind == ClientKind::FinThenRst {
                        // Abortive epilogue: RST chases the FIN.
                        let rst = self
                            .builder(rng)
                            .flags(TcpFlags::RST)
                            .seq(self.snd_nxt)
                            .build();
                        actions.emit(rst, SimDuration::from_millis(30));
                        self.state = State::Closed;
                    }
                }
            }
        }
        actions
    }
}

impl EndpointMachine for Client {
    type Timer = ClientTimer;

    /// The sans-IO entry point: dispatches to the kick-off, packet, and
    /// timer handlers without changing their behaviour (the simulation's
    /// RNG draw order is part of the golden-trace contract).
    fn process(
        &mut self,
        input: EndpointInput<ClientTimer>,
        now: SimTime,
        rng: &mut StdRng,
    ) -> Actions<ClientTimer> {
        match input {
            EndpointInput::Start => self.start(now, rng),
            EndpointInput::Packet(pkt) => self.on_packet(now, &pkt, rng),
            EndpointInput::Timer(t) => self.on_timer(now, t, rng),
        }
    }

    fn is_closed(&self) -> bool {
        Client::is_closed(self)
    }
}

/// Extract the client's initial TTL guess for tests.
pub fn client_ttl(pkt: &Packet) -> u8 {
    match &pkt.ip {
        IpHeader::V4(h) => h.ttl,
        IpHeader::V6(h) => h.hop_limit,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::derive_rng;
    use std::net::Ipv4Addr;

    fn addrs() -> (IpAddr, IpAddr) {
        (
            IpAddr::V4(Ipv4Addr::new(203, 0, 113, 5)),
            IpAddr::V4(Ipv4Addr::new(198, 51, 100, 1)),
        )
    }

    #[test]
    fn normal_client_starts_with_option_bearing_syn() {
        let (src, dst) = addrs();
        let mut c = Client::new(ClientConfig::default_tls(src, dst, "example.com"));
        let mut rng = derive_rng(1, 1);
        let a = c.start(SimTime::ZERO, &mut rng);
        assert_eq!(a.emits.len(), 1);
        let syn = &a.emits[0].0;
        assert_eq!(syn.tcp.flags, TcpFlags::SYN);
        assert!(!syn.tcp.has_no_options());
        assert_eq!(a.timers.len(), 1); // SYN retransmit armed
    }

    #[test]
    fn zmap_scanner_syn_is_optionless_with_fixed_ipid() {
        let (src, dst) = addrs();
        let mut cfg = ClientConfig::default_tls(src, dst, "x");
        cfg.kind = ClientKind::ZmapScanner;
        cfg.syn_options = false;
        cfg.ip_id = IpIdMode::Fixed(54321);
        cfg.initial_ttl = 255;
        cfg.request = RequestPayload::None;
        let mut c = Client::new(cfg);
        let mut rng = derive_rng(1, 2);
        let a = c.start(SimTime::ZERO, &mut rng);
        let syn = &a.emits[0].0;
        assert!(syn.tcp.has_no_options());
        assert_eq!(syn.ip.ip_id(), Some(54321));
        assert_eq!(syn.ip.ttl(), 255);
    }

    #[test]
    fn zmap_answers_synack_with_bare_rst() {
        let (src, dst) = addrs();
        let mut cfg = ClientConfig::default_tls(src, dst, "x");
        cfg.kind = ClientKind::ZmapScanner;
        cfg.request = RequestPayload::None;
        let mut c = Client::new(cfg);
        let mut rng = derive_rng(1, 3);
        let _ = c.start(SimTime::ZERO, &mut rng);
        let synack = PacketBuilder::new(dst, src, 443, 40000)
            .flags(TcpFlags::SYN_ACK)
            .seq(9999)
            .ack(0x1000_0001)
            .build();
        let a = c.on_packet(SimTime::from_secs(1), &synack, &mut rng);
        assert_eq!(a.emits.len(), 1);
        let rst = &a.emits[0].0;
        assert_eq!(rst.tcp.flags, TcpFlags::RST);
        assert_eq!(rst.tcp.seq, 0x1000_0001);
        assert!(c.is_closed());
    }

    #[test]
    fn normal_client_completes_handshake_then_sends_request() {
        let (src, dst) = addrs();
        let mut c = Client::new(ClientConfig::default_tls(src, dst, "blocked.example"));
        let mut rng = derive_rng(1, 4);
        let _ = c.start(SimTime::ZERO, &mut rng);
        let synack = PacketBuilder::new(dst, src, 443, 40000)
            .flags(TcpFlags::SYN_ACK)
            .seq(5000)
            .ack(0x1000_0001)
            .build();
        let a = c.on_packet(SimTime::from_secs(1), &synack, &mut rng);
        // ACK plus the (delayed) ClientHello.
        assert_eq!(a.emits.len(), 2);
        assert_eq!(a.emits[0].0.tcp.flags, TcpFlags::ACK);
        let req = &a.emits[1].0;
        assert_eq!(req.tcp.flags, TcpFlags::PSH_ACK);
        assert_eq!(
            tamper_wire::tls::parse_sni(&req.payload)
                .unwrap()
                .as_deref(),
            Some("blocked.example")
        );
        assert_eq!(req.tcp.seq, 0x1000_0001);
        assert_eq!(req.tcp.ack, 5001);
    }

    #[test]
    fn client_aborts_on_rst() {
        let (src, dst) = addrs();
        let mut c = Client::new(ClientConfig::default_tls(src, dst, "x"));
        let mut rng = derive_rng(1, 5);
        let _ = c.start(SimTime::ZERO, &mut rng);
        let rst = PacketBuilder::new(dst, src, 443, 40000)
            .flags(TcpFlags::RST_ACK)
            .build();
        let a = c.on_packet(SimTime::from_secs(1), &rst, &mut rng);
        assert!(a.emits.is_empty());
        assert!(c.is_closed());
    }

    #[test]
    fn syn_retransmission_backs_off_then_gives_up() {
        let (src, dst) = addrs();
        let mut c = Client::new(ClientConfig::default_tls(src, dst, "x"));
        let mut rng = derive_rng(1, 6);
        let _ = c.start(SimTime::ZERO, &mut rng);
        let a1 = c.on_timer(SimTime::from_secs(1), ClientTimer::RetransmitSyn, &mut rng);
        assert_eq!(a1.emits.len(), 1);
        assert_eq!(a1.emits[0].0.tcp.flags, TcpFlags::SYN);
        let a2 = c.on_timer(SimTime::from_secs(3), ClientTimer::RetransmitSyn, &mut rng);
        assert_eq!(a2.emits.len(), 1);
        let a3 = c.on_timer(SimTime::from_secs(7), ClientTimer::RetransmitSyn, &mut rng);
        assert!(a3.emits.is_empty());
        assert!(c.is_closed());
    }

    #[test]
    fn vanish_after_syn_never_retransmits() {
        let (src, dst) = addrs();
        let mut cfg = ClientConfig::default_tls(src, dst, "x");
        cfg.kind = ClientKind::VanishAfter {
            stage: VanishStage::AfterSyn,
        };
        let mut c = Client::new(cfg);
        let mut rng = derive_rng(1, 7);
        let a = c.start(SimTime::ZERO, &mut rng);
        assert_eq!(a.emits.len(), 1);
        assert!(a.timers.is_empty());
        assert!(c.is_closed());
    }

    #[test]
    fn happy_eyeballs_rst_cancels_late_synack() {
        let (src, dst) = addrs();
        let mut cfg = ClientConfig::default_tls(src, dst, "x");
        cfg.kind = ClientKind::HappyEyeballsRst {
            cancel_after: SimDuration::from_millis(250),
        };
        let mut c = Client::new(cfg);
        let mut rng = derive_rng(1, 8);
        let _ = c.start(SimTime::ZERO, &mut rng);
        let _ = c.on_timer(
            SimTime(250_000_000),
            ClientTimer::HappyEyeballsCancel,
            &mut rng,
        );
        let synack = PacketBuilder::new(dst, src, 443, 40000)
            .flags(TcpFlags::SYN_ACK)
            .seq(5000)
            .ack(0x1000_0001)
            .build();
        let a = c.on_packet(SimTime(300_000_000), &synack, &mut rng);
        assert_eq!(a.emits.len(), 1);
        assert_eq!(a.emits[0].0.tcp.flags, TcpFlags::RST);
        assert!(c.is_closed());
    }

    #[test]
    fn response_with_psh_triggers_close() {
        let (src, dst) = addrs();
        let mut c = Client::new(ClientConfig::default_tls(src, dst, "ok.example"));
        let mut rng = derive_rng(1, 9);
        let _ = c.start(SimTime::ZERO, &mut rng);
        let synack = PacketBuilder::new(dst, src, 443, 40000)
            .flags(TcpFlags::SYN_ACK)
            .seq(5000)
            .ack(0x1000_0001)
            .build();
        let _ = c.on_packet(SimTime(1_000_000), &synack, &mut rng);
        // Server response: one PSH-terminated segment.
        let resp = PacketBuilder::new(dst, src, 443, 40000)
            .flags(TcpFlags::PSH_ACK)
            .seq(5001)
            .ack(c.snd_nxt)
            .payload(Bytes::from_static(b"HTTP/1.1 200 OK\r\n\r\nhi"))
            .build();
        let a = c.on_packet(SimTime(2_000_000), &resp, &mut rng);
        assert!(a.emits.iter().any(|(p, _)| p.tcp.flags == TcpFlags::ACK));
        assert!(a.timers.iter().any(|(t, _)| *t == ClientTimer::Close));
        let close = c.on_timer(SimTime(3_000_000), ClientTimer::Close, &mut rng);
        assert_eq!(close.emits.len(), 1);
        assert!(close.emits[0].0.tcp.flags.has_fin());
    }
}

#[cfg(test)]
mod extra_kind_tests {
    use super::*;
    use crate::rng::derive_rng;
    use std::net::{IpAddr, Ipv4Addr};

    fn addrs() -> (IpAddr, IpAddr) {
        (
            IpAddr::V4(Ipv4Addr::new(203, 0, 113, 5)),
            IpAddr::V4(Ipv4Addr::new(198, 51, 100, 1)),
        )
    }

    #[test]
    fn dup_ack_then_vanish_sends_two_acks() {
        let (src, dst) = addrs();
        let mut cfg = ClientConfig::default_tls(src, dst, "x");
        cfg.kind = ClientKind::DupAckThenVanish;
        let mut c = Client::new(cfg);
        let mut rng = derive_rng(3, 1);
        let _ = c.start(SimTime::ZERO, &mut rng);
        let synack = tamper_wire::PacketBuilder::new(dst, src, 443, 40000)
            .flags(TcpFlags::SYN_ACK)
            .seq(5000)
            .ack(0x1000_0001)
            .build();
        let a = c.on_packet(SimTime(1_000_000), &synack, &mut rng);
        let acks: Vec<_> = a
            .emits
            .iter()
            .filter(|(p, _)| p.tcp.flags == TcpFlags::ACK)
            .collect();
        assert_eq!(acks.len(), 2);
        assert!(c.is_closed());
    }

    #[test]
    fn fin_then_rst_epilogue() {
        let (src, dst) = addrs();
        let mut cfg = ClientConfig::default_tls(src, dst, "x");
        cfg.kind = ClientKind::FinThenRst;
        let mut c = Client::new(cfg);
        let mut rng = derive_rng(3, 2);
        let _ = c.start(SimTime::ZERO, &mut rng);
        let synack = tamper_wire::PacketBuilder::new(dst, src, 443, 40000)
            .flags(TcpFlags::SYN_ACK)
            .seq(5000)
            .ack(0x1000_0001)
            .build();
        let _ = c.on_packet(SimTime(1_000_000), &synack, &mut rng);
        // Skip straight to the close timer (state Requested after request).
        let a = c.on_timer(SimTime(5_000_000), ClientTimer::Close, &mut rng);
        let flags: Vec<_> = a.emits.iter().map(|(p, _)| p.tcp.flags).collect();
        assert_eq!(flags, vec![TcpFlags::FIN_ACK, TcpFlags::RST]);
        assert!(c.is_closed());
    }
}
