//! The per-session discrete-event loop.
//!
//! One session simulates one TCP connection: a client, a path of links and
//! middlebox hops, and the CDN edge server. The loop is fully deterministic
//! given the session RNG: events are ordered by (time, insertion sequence).

use crate::client::{Client, ClientConfig, ClientTimer};
use crate::endpoint::{EndpointInput, EndpointMachine};
use crate::hop::HopCtx;
use crate::path::Path;
use crate::server::{Server, ServerConfig, ServerTimer};
use crate::time::{SimDuration, SimTime};
use crate::trace::{Direction, Origin, SessionTrace, TracedPacket};
use rand::rngs::StdRng;
use rand::Rng;
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use tamper_wire::Packet;

/// Where a scheduled packet event lands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Node {
    Client,
    Server,
    Hop(usize),
}

enum EvKind {
    Packet {
        at: Node,
        pkt: Packet,
        dir: Direction,
        origin: Origin,
    },
    ClientTimer(ClientTimer),
    ServerTimer(ServerTimer),
}

struct Scheduled {
    t: SimTime,
    seq: u64,
    kind: EvKind,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Scheduled) -> bool {
        self.t == other.t && self.seq == other.seq
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Scheduled) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    fn cmp(&self, other: &Scheduled) -> Ordering {
        // Reverse for a min-heap on (time, seq).
        other.t.cmp(&self.t).then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Parameters of one simulated connection.
pub struct SessionParams {
    /// Client behaviour and addressing.
    pub client: ClientConfig,
    /// Server behaviour.
    pub server: ServerConfig,
    /// When the client initiates.
    pub start: SimTime,
    /// How long the observation window stays open after `start`; events
    /// past the horizon are discarded. 30 s matches a generous collector
    /// flow-timeout and comfortably contains all retransmission backoff.
    pub horizon: SimDuration,
}

impl SessionParams {
    /// Standard 30-second observation horizon.
    pub fn new(client: ClientConfig, server: ServerConfig, start: SimTime) -> SessionParams {
        SessionParams {
            client,
            server,
            start,
            horizon: SimDuration::from_secs(30),
        }
    }
}

struct Driver<'a> {
    heap: BinaryHeap<Scheduled>,
    seq: u64,
    path: &'a mut Path,
    trace: Vec<TracedPacket>,
}

impl<'a> Driver<'a> {
    fn push(&mut self, t: SimTime, kind: EvKind) {
        self.seq += 1;
        let seq = self.seq;
        self.heap.push(Scheduled { t, seq, kind });
    }

    fn decrement_ttl(pkt: &mut Packet, by: u8) {
        let t = pkt.ip.ttl();
        pkt.ip.set_ttl(t.saturating_sub(by));
    }

    /// Send a packet across one link segment toward `next`, applying
    /// latency, TTL decrement, and loss.
    #[allow(clippy::too_many_arguments)]
    fn traverse(
        &mut self,
        now: SimTime,
        link_idx: usize,
        mut pkt: Packet,
        next: Node,
        dir: Direction,
        origin: Origin,
        rng: &mut StdRng,
    ) {
        let link = self.path.links[link_idx];
        if link.loss > 0.0 && rng.gen::<f64>() < link.loss {
            return; // lost in transit
        }
        Self::decrement_ttl(&mut pkt, link.ttl_decrement);
        self.push(
            now + link.latency,
            EvKind::Packet {
                at: next,
                pkt,
                dir,
                origin,
            },
        );
    }

    /// Client (or client-side entry) emits toward the server.
    fn emit_from_client(&mut self, now: SimTime, pkt: Packet, origin: Origin, rng: &mut StdRng) {
        let next = if self.path.hops.is_empty() {
            Node::Server
        } else {
            Node::Hop(0)
        };
        self.traverse(now, 0, pkt, next, Direction::ToServer, origin, rng);
    }

    /// Server emits toward the client.
    fn emit_from_server(&mut self, now: SimTime, pkt: Packet, origin: Origin, rng: &mut StdRng) {
        let last = self.path.links.len() - 1;
        let next = if self.path.hops.is_empty() {
            Node::Client
        } else {
            Node::Hop(self.path.hops.len() - 1)
        };
        self.traverse(now, last, pkt, next, Direction::ToClient, origin, rng);
    }

    /// Inject from hop `i` directly to the server (injected packets skip
    /// the `on_packet` processing of downstream hops — multi-censor paths
    /// where one censor filters another's resets are out of scope).
    fn inject_to_server(&mut self, now: SimTime, hop: usize, mut pkt: Packet, rng: &mut StdRng) {
        let mut latency = SimDuration::ZERO;
        let mut decr: u8 = 0;
        for link in &self.path.links[hop + 1..] {
            if link.loss > 0.0 && rng.gen::<f64>() < link.loss {
                return;
            }
            latency = latency + link.latency;
            decr = decr.saturating_add(link.ttl_decrement);
        }
        Self::decrement_ttl(&mut pkt, decr);
        self.push(
            now + latency,
            EvKind::Packet {
                at: Node::Server,
                pkt,
                dir: Direction::ToServer,
                origin: Origin::Hop(hop as u8),
            },
        );
    }

    /// Deliver one sans-IO input to an endpoint machine and scatter the
    /// resulting actions into the event heap — the single dispatch point
    /// both sides of the session share. `side` picks the emission
    /// direction; `wrap` lifts the endpoint's timers into [`EvKind`].
    fn drive<M, W>(
        &mut self,
        machine: &mut M,
        input: EndpointInput<M::Timer>,
        now: SimTime,
        side: Node,
        wrap: W,
        rng: &mut StdRng,
    ) where
        M: EndpointMachine,
        W: Fn(M::Timer) -> EvKind,
    {
        let actions = machine.process(input, now, rng);
        for (pkt, delay) in actions.emits {
            match side {
                Node::Server => self.emit_from_server(now + delay, pkt, Origin::Server, rng),
                _ => self.emit_from_client(now + delay, pkt, Origin::Client, rng),
            }
        }
        for (timer, delay) in actions.timers {
            self.push(now + delay, wrap(timer));
        }
    }

    /// Inject from hop `i` directly to the client.
    fn inject_to_client(&mut self, now: SimTime, hop: usize, mut pkt: Packet, rng: &mut StdRng) {
        let mut latency = SimDuration::ZERO;
        let mut decr: u8 = 0;
        for link in &self.path.links[..=hop] {
            if link.loss > 0.0 && rng.gen::<f64>() < link.loss {
                return;
            }
            latency = latency + link.latency;
            decr = decr.saturating_add(link.ttl_decrement);
        }
        Self::decrement_ttl(&mut pkt, decr);
        self.push(
            now + latency,
            EvKind::Packet {
                at: Node::Client,
                pkt,
                dir: Direction::ToClient,
                origin: Origin::Hop(hop as u8),
            },
        );
    }
}

/// Run one session to completion and return its trace.
pub fn run_session(params: SessionParams, path: &mut Path, rng: &mut StdRng) -> SessionTrace {
    debug_assert!(path.is_well_formed());
    let start = params.start;
    let end = start + params.horizon;
    let mut client = Client::new(params.client);
    let mut server = Server::new(params.server);
    let mut tamper_events = Vec::new();

    let mut driver = Driver {
        heap: BinaryHeap::new(),
        seq: 0,
        path,
        trace: Vec::new(),
    };

    // Kick off: the client's initial actions.
    driver.drive(
        &mut client,
        EndpointInput::Start,
        start,
        Node::Client,
        EvKind::ClientTimer,
        rng,
    );

    while let Some(ev) = driver.heap.pop() {
        if ev.t > end {
            break;
        }
        let now = ev.t;
        match ev.kind {
            EvKind::ClientTimer(k) => {
                driver.drive(
                    &mut client,
                    EndpointInput::Timer(k),
                    now,
                    Node::Client,
                    EvKind::ClientTimer,
                    rng,
                );
            }
            EvKind::ServerTimer(k) => {
                driver.drive(
                    &mut server,
                    EndpointInput::Timer(k),
                    now,
                    Node::Server,
                    EvKind::ServerTimer,
                    rng,
                );
            }
            EvKind::Packet {
                at,
                pkt,
                dir,
                origin,
            } => match at {
                Node::Hop(i) => {
                    let outcome = {
                        let mut ctx = HopCtx {
                            now,
                            rng,
                            tamper_events: &mut tamper_events,
                            hop_index: i as u8,
                        };
                        driver.path.hops[i].on_packet(&mut ctx, &pkt, dir)
                    };
                    if outcome.forward {
                        match dir {
                            Direction::ToServer => {
                                let next = if i + 1 < driver.path.hops.len() {
                                    Node::Hop(i + 1)
                                } else {
                                    Node::Server
                                };
                                driver.traverse(now, i + 1, pkt, next, dir, origin, rng);
                            }
                            Direction::ToClient => {
                                let next = if i == 0 {
                                    Node::Client
                                } else {
                                    Node::Hop(i - 1)
                                };
                                driver.traverse(now, i, pkt, next, dir, origin, rng);
                            }
                        }
                    }
                    for (inj, delay) in outcome.inject_to_server {
                        driver.inject_to_server(now + delay, i, inj, rng);
                    }
                    for (inj, delay) in outcome.inject_to_client {
                        driver.inject_to_client(now + delay, i, inj, rng);
                    }
                }
                Node::Server => {
                    driver.trace.push(TracedPacket {
                        time: now,
                        dir: Direction::ToServer,
                        origin,
                        packet: pkt.clone(),
                    });
                    driver.drive(
                        &mut server,
                        EndpointInput::Packet(pkt),
                        now,
                        Node::Server,
                        EvKind::ServerTimer,
                        rng,
                    );
                }
                Node::Client => {
                    driver.trace.push(TracedPacket {
                        time: now,
                        dir: Direction::ToClient,
                        origin,
                        packet: pkt.clone(),
                    });
                    driver.drive(
                        &mut client,
                        EndpointInput::Packet(pkt),
                        now,
                        Node::Client,
                        EvKind::ClientTimer,
                        rng,
                    );
                }
            },
        }
    }

    SessionTrace {
        packets: driver.trace,
        started: start,
        ended: end,
        tamper_events,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::{ClientKind, RequestPayload, VanishStage};
    use crate::rng::derive_rng;

    use std::net::{IpAddr, Ipv4Addr};
    use tamper_wire::TcpFlags;

    fn addrs() -> (IpAddr, IpAddr) {
        (
            IpAddr::V4(Ipv4Addr::new(203, 0, 113, 5)),
            IpAddr::V4(Ipv4Addr::new(198, 51, 100, 1)),
        )
    }

    fn run_normal(kind: ClientKind) -> SessionTrace {
        let (src, dst) = addrs();
        let mut cfg = ClientConfig::default_tls(src, dst, "ok.example.com");
        cfg.kind = kind;
        let server = ServerConfig::default_edge(dst, 443);
        let mut path = Path::direct(SimDuration::from_millis(40), 12);
        let mut rng = derive_rng(99, 1);
        run_session(
            SessionParams::new(cfg, server, SimTime::from_secs(100)),
            &mut path,
            &mut rng,
        )
    }

    #[test]
    fn untampered_session_is_graceful() {
        let trace = run_normal(ClientKind::Normal);
        let inbound: Vec<_> = trace.inbound().collect();
        // SYN, ACK, ClientHello, ACKs of response, FIN, final ACK.
        assert!(inbound.len() >= 6, "got {} inbound packets", inbound.len());
        assert_eq!(inbound[0].packet.tcp.flags, TcpFlags::SYN);
        assert!(inbound.iter().any(|p| p.packet.tcp.flags.has_fin()));
        assert!(!inbound.iter().any(|p| p.packet.tcp.flags.has_rst()));
        assert!(!trace.was_tampered());
        // TTL at the server reflects the path decrement.
        assert_eq!(inbound[0].packet.ip.ttl(), 64 - 12);
    }

    #[test]
    fn sni_is_visible_inbound() {
        let trace = run_normal(ClientKind::Normal);
        let hello = trace
            .inbound()
            .find(|p| !p.packet.payload.is_empty())
            .expect("no data packet");
        assert_eq!(
            tamper_wire::tls::parse_sni(&hello.packet.payload)
                .unwrap()
                .as_deref(),
            Some("ok.example.com")
        );
    }

    #[test]
    fn vanish_after_syn_leaves_single_syn() {
        let trace = run_normal(ClientKind::VanishAfter {
            stage: VanishStage::AfterSyn,
        });
        let inbound: Vec<_> = trace.inbound().collect();
        assert_eq!(inbound.len(), 1);
        assert_eq!(inbound[0].packet.tcp.flags, TcpFlags::SYN);
    }

    #[test]
    fn zmap_scan_leaves_syn_then_rst() {
        let (src, dst) = addrs();
        let mut cfg = ClientConfig::default_tls(src, dst, "x");
        cfg.kind = ClientKind::ZmapScanner;
        cfg.request = RequestPayload::None;
        cfg.syn_options = false;
        let server = ServerConfig::default_edge(dst, 443);
        let mut path = Path::direct(SimDuration::from_millis(40), 12);
        let mut rng = derive_rng(99, 2);
        let trace = run_session(
            SessionParams::new(cfg, server, SimTime::ZERO),
            &mut path,
            &mut rng,
        );
        let flags: Vec<_> = trace.inbound().map(|p| p.packet.tcp.flags).collect();
        assert_eq!(flags, vec![TcpFlags::SYN, TcpFlags::RST]);
    }

    #[test]
    fn identical_seeds_identical_traces() {
        let t1 = {
            let (src, dst) = addrs();
            let cfg = ClientConfig::default_tls(src, dst, "d.example");
            let server = ServerConfig::default_edge(dst, 443);
            let mut path = Path::direct(SimDuration::from_millis(25), 9);
            let mut rng = derive_rng(7, 3);
            run_session(
                SessionParams::new(cfg, server, SimTime::ZERO),
                &mut path,
                &mut rng,
            )
        };
        let t2 = {
            let (src, dst) = addrs();
            let cfg = ClientConfig::default_tls(src, dst, "d.example");
            let server = ServerConfig::default_edge(dst, 443);
            let mut path = Path::direct(SimDuration::from_millis(25), 9);
            let mut rng = derive_rng(7, 3);
            run_session(
                SessionParams::new(cfg, server, SimTime::ZERO),
                &mut path,
                &mut rng,
            )
        };
        assert_eq!(t1.packets.len(), t2.packets.len());
        for (a, b) in t1.packets.iter().zip(&t2.packets) {
            assert_eq!(a.time, b.time);
            assert_eq!(a.packet, b.packet);
        }
    }

    #[test]
    fn lossy_link_drops_everything_at_loss_one() {
        let (src, dst) = addrs();
        let cfg = ClientConfig::default_tls(src, dst, "x");
        let server = ServerConfig::default_edge(dst, 443);
        let mut path = Path {
            links: vec![crate::path::Link::new(SimDuration::from_millis(10), 4).with_loss(1.0)],
            hops: Vec::new(),
        };
        let mut rng = derive_rng(99, 4);
        let trace = run_session(
            SessionParams::new(cfg, server, SimTime::ZERO),
            &mut path,
            &mut rng,
        );
        assert_eq!(trace.packets.len(), 0);
    }

    #[test]
    fn http_two_requests_both_arrive() {
        let (src, dst) = addrs();
        let mut cfg = ClientConfig::default_tls(src, dst, "x");
        cfg.dst_port = 80;
        cfg.request = RequestPayload::HttpTwo {
            host: "site.example".into(),
            path1: "/".into(),
            path2: "/page2".into(),
            user_agent: "ua/1".into(),
        };
        let server = ServerConfig::default_edge(dst, 80);
        let mut path = Path::direct(SimDuration::from_millis(30), 10);
        let mut rng = derive_rng(99, 5);
        let trace = run_session(
            SessionParams::new(cfg, server, SimTime::ZERO),
            &mut path,
            &mut rng,
        );
        let data: Vec<_> = trace
            .inbound()
            .filter(|p| !p.packet.payload.is_empty())
            .collect();
        assert_eq!(data.len(), 2, "expected two request packets");
        let second = tamper_wire::http::parse_request(&data[1].packet.payload).unwrap();
        assert_eq!(second.path, "/page2");
    }

    #[test]
    fn observation_ends_at_horizon() {
        let trace = run_normal(ClientKind::Normal);
        assert_eq!(
            trace.ended,
            SimTime::from_secs(100) + SimDuration::from_secs(30)
        );
    }
}

#[cfg(test)]
mod path_mechanics_tests {
    use super::*;
    use crate::client::ClientConfig;
    use crate::hop::{Hop, HopCtx, HopOutcome};
    use crate::path::Link;
    use crate::rng::derive_rng;
    use crate::server::ServerConfig;
    use crate::trace::{Direction, Origin};
    use std::net::{IpAddr, Ipv4Addr};
    use tamper_wire::{Packet, PacketBuilder, TcpFlags};

    fn addrs() -> (IpAddr, IpAddr) {
        (
            IpAddr::V4(Ipv4Addr::new(203, 0, 113, 5)),
            IpAddr::V4(Ipv4Addr::new(198, 51, 100, 1)),
        )
    }

    /// A hop that injects one RST toward the server on the first SYN,
    /// recording nothing else.
    struct SynEcho;
    impl Hop for SynEcho {
        fn on_packet(&mut self, _ctx: &mut HopCtx<'_>, pkt: &Packet, dir: Direction) -> HopOutcome {
            if dir == Direction::ToServer && pkt.tcp.flags.has_syn() {
                let rst = PacketBuilder::new(
                    pkt.ip.src(),
                    pkt.ip.dst(),
                    pkt.tcp.src_port,
                    pkt.tcp.dst_port,
                )
                .flags(TcpFlags::RST)
                .seq(pkt.tcp.seq.wrapping_add(1))
                .ttl(200)
                .build();
                HopOutcome::pass().with_injection_to_server(rst, SimDuration::from_micros(10))
            } else {
                HopOutcome::pass()
            }
        }
    }

    #[test]
    fn injected_packets_incur_remaining_path_latency_and_ttl() {
        let (src, dst) = addrs();
        let cfg = ClientConfig::default_tls(src, dst, "x.example");
        let server = ServerConfig::default_edge(dst, 443);
        let mut path = Path {
            links: vec![
                Link::new(SimDuration::from_millis(10), 3),
                Link::new(SimDuration::from_millis(50), 7),
            ],
            hops: vec![Box::new(SynEcho)],
        };
        let mut rng = derive_rng(31, 1);
        let trace = run_session(
            SessionParams::new(cfg, server, SimTime::ZERO),
            &mut path,
            &mut rng,
        );
        let inbound: Vec<_> = trace.inbound().collect();
        let syn = inbound
            .iter()
            .find(|p| p.packet.tcp.flags.has_syn())
            .unwrap();
        let rst = inbound
            .iter()
            .find(|p| p.packet.tcp.flags.has_rst())
            .unwrap();
        // The SYN crossed both links: 10 + 50 ms.
        assert_eq!(syn.time, SimTime(60_000_000));
        // The RST was injected at the hop (t = 10 ms + 10 µs) and crossed
        // only the server-side link (50 ms).
        assert_eq!(rst.time, SimTime(60_010_000));
        // TTL: client initial 64 − 3 − 7 hops; injected 200 − 7.
        assert_eq!(syn.packet.ip.ttl(), 64 - 10);
        assert_eq!(rst.packet.ip.ttl(), 200 - 7);
        // Origin attribution is ground truth.
        assert_eq!(syn.origin, Origin::Client);
        assert_eq!(rst.origin, Origin::Hop(0));
    }

    #[test]
    fn server_to_client_traverses_hops_in_reverse() {
        struct CountBoth {
            to_server: u32,
            to_client: u32,
        }
        // Count via a shared cell smuggled through a static — simpler: use
        // the tamper_events vec as a counter channel.
        impl Hop for CountBoth {
            fn on_packet(
                &mut self,
                _ctx: &mut HopCtx<'_>,
                _pkt: &Packet,
                dir: Direction,
            ) -> HopOutcome {
                match dir {
                    Direction::ToServer => self.to_server += 1,
                    Direction::ToClient => self.to_client += 1,
                }
                HopOutcome::pass()
            }
        }
        // Run the session with the counting hop boxed; read the counters
        // back out afterwards via Box downcast-free trick: keep raw
        // pointers out of it and just re-run with a probe that asserts
        // inside: both directions must be observed by completion.
        let (src, dst) = addrs();
        let cfg = ClientConfig::default_tls(src, dst, "x.example");
        let server = ServerConfig::default_edge(dst, 443);
        let counter = Box::new(CountBoth {
            to_server: 0,
            to_client: 0,
        });
        let mut path = Path {
            links: vec![
                Link::new(SimDuration::from_millis(5), 2),
                Link::new(SimDuration::from_millis(5), 2),
            ],
            hops: vec![counter],
        };
        let mut rng = derive_rng(32, 1);
        let trace = run_session(
            SessionParams::new(cfg, server, SimTime::ZERO),
            &mut path,
            &mut rng,
        );
        // Indirect check: the client received server packets, which is
        // only possible if ToClient traffic traversed the hop.
        assert!(trace
            .packets
            .iter()
            .any(|p| p.dir == Direction::ToClient && !p.packet.payload.is_empty()));
        assert!(trace.inbound().count() >= 5);
    }
}
