#![warn(missing_docs)]

//! # tamper-netsim
//!
//! A deterministic, synchronous, discrete-event session simulator for
//! TCP connections between clients and a CDN edge server, with pluggable
//! middlebox hops on the path.
//!
//! Design (in the spirit of event-driven user-space stacks like smoltcp):
//! no OS sockets, no async runtime — every session is an isolated event
//! loop over a virtual clock, so runs are bit-reproducible from a seed and
//! can be sharded across threads without changing results.
//!
//! The simulator's purpose is to regenerate the *inbound packet-header
//! sequences* a CDN server sees, including the ones produced by tampering
//! middleboxes; the `tamper-capture` crate then applies the paper's
//! collection constraints and `tamper-core` classifies the result.
//!
//! ## Layout
//!
//! - [`time`] — virtual clock types.
//! - [`rng`] — per-session deterministic RNG derivation.
//! - [`trace`] — session traces and ground-truth tamper events.
//! - [`endpoint`] — shared endpoint machinery (actions, IP-ID policies).
//! - [`client`] — the client population: normal clients, scanners,
//!   Happy-Eyeballs losers, aborts, vanishers.
//! - [`server`] — the CDN edge.
//! - [`hop`] — the middlebox interface ([`hop::Hop`]).
//! - [`path`] — link/hop composition.
//! - [`session`] — the per-session event loop.
//!
//! ## Example
//!
//! ```
//! use tamper_netsim::*;
//!
//! let client_ip = "203.0.113.7".parse().unwrap();
//! let server_ip = "198.51.100.1".parse().unwrap();
//! let client = ClientConfig::default_tls(client_ip, server_ip, "site.example");
//! let server = ServerConfig::default_edge(server_ip, 443);
//! let mut path = Path::direct(SimDuration::from_millis(40), 12);
//! let mut rng = derive_rng(1, 1);
//! let trace = run_session(
//!     SessionParams::new(client, server, SimTime::ZERO),
//!     &mut path,
//!     &mut rng,
//! );
//! // A clean session ends with a graceful FIN from the client.
//! assert!(trace.inbound().any(|p| p.packet.tcp.flags.has_fin()));
//! assert!(!trace.was_tampered());
//! ```

pub mod client;
pub mod endpoint;
pub mod hop;
pub mod path;
pub mod rng;
pub mod server;
pub mod session;
pub mod time;
pub mod trace;

pub use client::{Client, ClientConfig, ClientKind, RequestPayload, VanishStage};
pub use endpoint::{Actions, EndpointInput, EndpointMachine, IpIdGen, IpIdMode};
pub use hop::{Hop, HopCtx, HopOutcome, TransparentHop};
pub use path::{Link, Path};
pub use rng::{derive_rng, splitmix64};
pub use server::{Server, ServerConfig};
pub use session::{run_session, SessionParams};
pub use time::{SimDuration, SimTime};
pub use trace::{
    Direction, Mechanism, Origin, SessionTrace, TamperEvent, TracedPacket, TriggerStage,
};
