//! Virtual time for the discrete-event simulator.
//!
//! Times are nanoseconds since the scenario epoch (a wall-clock instant the
//! scenario chooses, e.g. 2023-01-12 00:00 UTC). Durations are nanosecond
//! counts. Both are plain `u64` newtypes: cheap, ordered, and deterministic.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An instant in simulated time (ns since the scenario epoch).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of simulated time in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The scenario epoch.
    pub const ZERO: SimTime = SimTime(0);

    /// Construct from whole seconds since the epoch.
    pub const fn from_secs(secs: u64) -> SimTime {
        SimTime(secs * 1_000_000_000)
    }

    /// Nanoseconds since the epoch.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Whole seconds since the epoch (truncating) — the granularity of the
    /// collection pipeline's timestamps.
    pub const fn as_secs(self) -> u64 {
        self.0 / 1_000_000_000
    }

    /// Seconds since the epoch as a float, for reporting.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Time elapsed since `earlier`; zero if `earlier` is later.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// From whole seconds.
    pub const fn from_secs(secs: u64) -> SimDuration {
        SimDuration(secs * 1_000_000_000)
    }

    /// From milliseconds.
    pub const fn from_millis(ms: u64) -> SimDuration {
        SimDuration(ms * 1_000_000)
    }

    /// From microseconds.
    pub const fn from_micros(us: u64) -> SimDuration {
        SimDuration(us * 1_000)
    }

    /// Nanosecond count.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Milliseconds (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Seconds as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating doubling — used for exponential retransmission backoff.
    pub fn double(self) -> SimDuration {
        SimDuration(self.0.saturating_mul(2))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(10) + SimDuration::from_millis(500);
        assert_eq!(t.as_nanos(), 10_500_000_000);
        assert_eq!(t.as_secs(), 10);
        assert_eq!(t - SimTime::from_secs(10), SimDuration::from_millis(500));
    }

    #[test]
    fn saturating_since_clamps() {
        let a = SimTime::from_secs(5);
        let b = SimTime::from_secs(7);
        assert_eq!(b.saturating_since(a), SimDuration::from_secs(2));
        assert_eq!(a.saturating_since(b), SimDuration::ZERO);
    }

    #[test]
    fn quantization_truncates() {
        let t = SimTime(1_999_999_999);
        assert_eq!(t.as_secs(), 1);
    }

    #[test]
    fn backoff_doubles() {
        let d = SimDuration::from_secs(1);
        assert_eq!(d.double(), SimDuration::from_secs(2));
        assert_eq!(d.double().double(), SimDuration::from_secs(4));
    }
}
