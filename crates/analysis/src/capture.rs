//! Classify-path adapters: feeding raw capture flows — which carry no
//! simulation ground truth — through the same [`Collector`] the worldgen
//! pipeline uses, and summarizing an engine run as JSON.
//!
//! The summary is split in two on purpose:
//!
//! - [`capture_summary_to_json`] holds only values that are a pure
//!   function of the capture bytes and the classifier configuration, so
//!   the line is byte-identical no matter how many engine threads
//!   produced it (the determinism suite compares it verbatim);
//! - [`engine_perf_to_json`] holds everything scheduling-dependent
//!   (thread count, channel stalls, live-table high water, eviction-cause
//!   split, which shifts when `--max-flows` divides across a different
//!   shard count).

use crate::fmt::pct_f;
use crate::jsonl::JsonObject;
use crate::Collector;
use tamper_capture::{EngineStats, FlowRecord};
use tamper_core::Signature;
use tamper_worldgen::{Asn, GroundTruth, LabeledFlow, SessionMeta};

/// Wrap a capture flow in neutral session metadata so the [`Collector`]
/// can aggregate it: one synthetic country/AS, protocol inferred from the
/// destination port, start time from the first retained packet, ground
/// truth `Clean` (a real capture has none).
pub fn label_capture_flow(flow: FlowRecord) -> LabeledFlow {
    let start_unix = flow.packets.first().map(|p| p.ts_sec).unwrap_or(0);
    let meta = SessionMeta {
        country: 0,
        asn: Asn(0),
        ipv6: flow.client_ip.is_ipv6(),
        http: flow.dst_port == 80,
        domain: None,
        start_unix,
        truth: GroundTruth::Clean,
    };
    LabeledFlow { flow, meta }
}

/// A collector sized for capture aggregation (one synthetic country, one
/// day of hourly buckets anchored at the capture's epoch).
pub fn capture_collector(cfg: tamper_core::ClassifierConfig, start_unix: u64) -> Collector {
    Collector::new(cfg, 1, 1, start_unix)
}

/// The deterministic summary line for a classify run: ingest counters
/// plus classification aggregates. Field values depend only on the input
/// capture and classifier configuration — never on thread count.
pub fn capture_summary_to_json(col: &crate::PartialAggregate, stats: &EngineStats) -> String {
    let mut sig_counts = [0u64; 19];
    for row in &col.country_class {
        for (i, c) in row.iter().take(19).enumerate() {
            sig_counts[i] += c;
        }
    }
    let mut sigs = JsonObject::new();
    for sig in Signature::ALL {
        sigs = sigs.uint(sig.label(), sig_counts[sig.index()]);
    }

    let stage_keys = ["post_syn", "post_ack", "post_psh", "post_data", "other"];
    let mut stages = JsonObject::new();
    for (key, (&count, &matched)) in stage_keys
        .iter()
        .zip(col.stage_counts.iter().zip(col.stage_matched.iter()))
    {
        stages = stages.raw(
            key,
            &JsonObject::new()
                .uint("possibly_tampered", count)
                .uint("matched", matched)
                .finish(),
        );
    }

    JsonObject::new()
        .uint("records", stats.records)
        .uint("flows", stats.ingest.flows)
        .uint("packets", stats.ingest.packets)
        .uint("truncated_packets", stats.ingest.truncated_packets)
        .uint("unparsable", stats.ingest.unparsable)
        .uint("not_inbound", stats.ingest.not_inbound)
        .bool("corrupt_tail", stats.corrupt_tail)
        .uint("total_flows", col.total)
        .uint("possibly_tampered", col.possibly_tampered)
        .str(
            "possibly_tampered_pct",
            &pct_f(col.possibly_tampered as f64 / col.total.max(1) as f64),
        )
        .raw("stages", &stages.finish())
        .raw("signatures", &sigs.finish())
        .finish()
}

/// The scheduling-dependent counters of an engine run, as their own JSON
/// line. Kept out of [`capture_summary_to_json`] so determinism checks
/// can compare that line byte-for-byte across thread counts.
pub fn engine_perf_to_json(stats: &EngineStats) -> String {
    JsonObject::new()
        .uint("threads", stats.threads as u64)
        .uint("channel_stalls", stats.channel_stalls)
        .uint("max_live_flows", stats.max_live_flows)
        .uint("evicted_timeout", stats.evicted_timeout)
        .uint("evicted_cap", stats.evicted_cap)
        .uint("drained_eof", stats.drained_eof)
        .finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use std::net::{IpAddr, Ipv4Addr, Ipv6Addr};
    use tamper_capture::{IngestStats, PacketRecord};
    use tamper_core::ClassifierConfig;
    use tamper_wire::TcpFlags;

    fn sample_flow(dst_port: u16, v6: bool) -> FlowRecord {
        let client_ip = if v6 {
            IpAddr::V6(Ipv6Addr::new(0x2001, 0xdb8, 0, 0, 0, 0, 0, 1))
        } else {
            IpAddr::V4(Ipv4Addr::new(203, 0, 113, 9))
        };
        FlowRecord {
            client_ip,
            server_ip: IpAddr::V4(Ipv4Addr::new(198, 51, 100, 1)),
            src_port: 40000,
            dst_port,
            packets: vec![
                PacketRecord {
                    ts_sec: 1234,
                    flags: TcpFlags::SYN,
                    seq: 100,
                    ack: 0,
                    ip_id: Some(7),
                    ttl: 52,
                    window: 65535,
                    payload_len: 0,
                    payload: Bytes::new(),
                    has_tcp_options: true,
                },
                PacketRecord {
                    ts_sec: 1234,
                    flags: TcpFlags::RST,
                    seq: 101,
                    ack: 0,
                    ip_id: Some(8),
                    ttl: 52,
                    window: 0,
                    payload_len: 0,
                    payload: Bytes::new(),
                    has_tcp_options: false,
                },
            ],
            observation_end_sec: 1264,
            truncated: false,
        }
    }

    #[test]
    fn labels_carry_flow_derived_fields() {
        let lf = label_capture_flow(sample_flow(80, false));
        assert_eq!(lf.meta.country, 0);
        assert_eq!(lf.meta.asn, Asn(0));
        assert!(lf.meta.http);
        assert!(!lf.meta.ipv6);
        assert_eq!(lf.meta.start_unix, 1234);
        assert!(matches!(lf.meta.truth, GroundTruth::Clean));

        let lf6 = label_capture_flow(sample_flow(443, true));
        assert!(lf6.meta.ipv6);
        assert!(!lf6.meta.http);
    }

    #[test]
    fn summary_counts_signatures_and_stays_flat() {
        let mut col = capture_collector(ClassifierConfig::default(), 0);
        col.observe(&label_capture_flow(sample_flow(443, false)));
        let stats = EngineStats {
            records: 2,
            ingest: IngestStats {
                flows: 1,
                packets: 2,
                truncated_packets: 0,
                unparsable: 0,
                not_inbound: 0,
            },
            evicted_timeout: 0,
            evicted_cap: 0,
            drained_eof: 1,
            corrupt_tail: false,
            channel_stalls: 0,
            max_live_flows: 1,
            threads: 4,
        };
        let line = capture_summary_to_json(&col, &stats);
        assert!(line.contains("\"total_flows\":1"));
        assert!(line.contains("\"possibly_tampered\":1"));
        assert!(line.contains(&format!("\"{}\":1", Signature::SynRst.label())));
        // Scheduling-dependent values stay out of the deterministic line.
        assert!(!line.contains("threads"));
        assert!(!line.contains("channel_stalls"));
        assert!(!line.contains('\n'));

        let perf = engine_perf_to_json(&stats);
        assert!(perf.contains("\"threads\":4"));
        assert!(perf.contains("\"drained_eof\":1"));
    }
}
