//! Artifact generators: one function per table/figure of the paper.
//!
//! Text tables print the same rows the paper reports; figures with
//! continuous axes (CDFs, time series, scatter plots) are emitted as TSV
//! series, ready to plot, with headline statistics (regression slopes,
//! peak values) computed inline.

use crate::agg::{class_code_label, CLASS_NOT_TAMPERED, CLASS_OTHER};
use crate::fmt::{pct, pct_f, Table};
use crate::stats::{slope_through_origin, Cdf};
use crate::view::ReportView;
use std::collections::{BTreeMap, BTreeSet};
use tamper_core::{Signature, Stage};
use tamper_worldgen::{country_index, Category, TestLists, WorldSim};

/// Regions highlighted in the paper's Tables 2 and 3.
pub const FOCUS_REGIONS: [&str; 9] = ["CN", "IN", "IR", "KR", "MX", "PE", "RU", "US", "GB"];

/// Countries in Figure 6's longitudinal comparison.
pub const FIG6_COUNTRIES: [&str; 7] = ["CN", "DE", "GB", "IN", "IR", "RU", "US"];

// ---------------------------------------------------------------------------
// Table 1 + §4.1 headline statistics
// ---------------------------------------------------------------------------

/// Table 1: the signature taxonomy with observed counts, plus the §4.1
/// headline statistics (possibly-tampered rate, per-stage shares, per-stage
/// signature coverage, overall coverage).
pub fn table1(col: &ReportView) -> String {
    let mut out = String::new();
    let pt = col.possibly_tampered;
    out.push_str(&format!(
        "Connections: {}   possibly tampered: {} ({})\n\n",
        col.total,
        pt,
        pct(pt, col.total)
    ));

    let mut t = Table::new([
        "Type",
        "Signature",
        "Count",
        "% of possibly tampered",
        "Prior work",
    ]);
    for sig in Signature::ALL {
        let n = col.signature_total(sig);
        t.row([
            sig.stage().label().to_owned(),
            sig.label().to_owned(),
            n.to_string(),
            pct(n, pt),
            sig.prior_work().to_owned(),
        ]);
    }
    let other: u64 = col.country_class.iter().map(|c| c[CLASS_OTHER]).sum();
    t.row([
        "—".to_owned(),
        "(unmatched possibly tampered)".to_owned(),
        other.to_string(),
        pct(other, pt),
    ]);
    out.push_str(&t.render());

    out.push_str("\nStage breakdown of possibly tampered connections:\n");
    let mut st = Table::new([
        "Stage",
        "% of possibly tampered",
        "signature coverage within stage",
    ]);
    let labels = [
        "Mid-handshake (Post-SYN)",
        "Immediately post-handshake (Post-ACK)",
        "After first data packet (Post-PSH)",
        "After multiple data packets (Post-Data)",
        "Other sequences",
    ];
    for (i, label) in labels.iter().enumerate() {
        st.row([
            (*label).to_owned(),
            pct(col.stage_counts[i], pt),
            if i < 4 {
                pct(col.stage_matched[i], col.stage_counts[i])
            } else {
                "—".to_owned()
            },
        ]);
    }
    out.push_str(&st.render());
    let matched: u64 = col.stage_matched.iter().sum();
    out.push_str(&format!(
        "\nAll 19 signatures cover {} of possibly tampered connections.\n",
        pct(matched, pt)
    ));
    out
}

// ---------------------------------------------------------------------------
// Figure 1: per-signature country composition
// ---------------------------------------------------------------------------

/// Figure 1: for each signature, the countries contributing the most
/// matching connections (the paper's stacked columns, as top-k lists).
pub fn fig1(col: &ReportView, sim: &WorldSim, top_k: usize) -> String {
    let mut out = String::from("Figure 1 — country composition of each signature's matches\n\n");
    let world = sim.world();
    for sig in Signature::ALL {
        let total = col.signature_total(sig);
        if total == 0 {
            out.push_str(&format!("{}  (no matches)\n", sig.label()));
            continue;
        }
        let mut per_country: Vec<(u64, &str)> = col
            .country_class
            .iter()
            .enumerate()
            .map(|(c, row)| (row[sig.index()], world[c].country.code.as_str()))
            .filter(|(n, _)| *n > 0)
            .collect();
        per_country.sort_by_key(|(n, _)| std::cmp::Reverse(*n));
        let tops: Vec<String> = per_country
            .iter()
            .take(top_k)
            .map(|(n, code)| format!("{code} {}", pct(*n, total)))
            .collect();
        out.push_str(&format!(
            "{:<34} n={:<8} {}\n",
            sig.label(),
            total,
            tops.join("  ")
        ));
    }
    out
}

// ---------------------------------------------------------------------------
// Figures 2 and 3: evidence CDFs
// ---------------------------------------------------------------------------

fn cdf_block<T: Copy + Into<f64>>(
    title: &str,
    xs: &[f64],
    reservoirs: &[Vec<T>],
    label_of: impl Fn(usize) -> String,
) -> String {
    let mut out = format!("{title}\nclass\tn");
    for x in xs {
        out.push_str(&format!("\tF({x})"));
    }
    out.push('\n');
    for (idx, res) in reservoirs.iter().enumerate() {
        if res.is_empty() {
            continue;
        }
        let cdf = Cdf::new(res.iter().map(|v| (*v).into()));
        out.push_str(&format!("{}\t{}", label_of(idx), cdf.len()));
        for x in xs {
            out.push_str(&format!("\t{:.3}", cdf.at(*x)));
        }
        out.push('\n');
    }
    out
}

fn class_label(idx: usize) -> String {
    if idx == 19 {
        "Not Tampering".to_owned()
    } else {
        Signature::ALL[idx].label().to_owned()
    }
}

/// Figure 2: CDF of the maximum absolute IP-ID change between the RST and
/// the preceding packet, per signature, against the Not-Tampering baseline.
pub fn fig2(col: &ReportView) -> String {
    let xs = [0.0, 1.0, 10.0, 100.0, 1000.0, 10_000.0, 30_000.0, 65_535.0];
    cdf_block(
        "Figure 2 — max |ΔIP-ID| between RST and preceding packet (CDF)",
        &xs,
        &col.ipid_samples,
        class_label,
    )
}

/// Figure 3: CDF of the signed TTL change between the RST and the
/// preceding packet, per signature.
pub fn fig3(col: &ReportView) -> String {
    let xs = [
        -200.0, -100.0, -50.0, -10.0, -1.0, 0.0, 1.0, 10.0, 50.0, 100.0, 200.0,
    ];
    cdf_block(
        "Figure 3 — max TTL change between RST and preceding packet (CDF)",
        &xs,
        &col.ttl_samples,
        class_label,
    )
}

// ---------------------------------------------------------------------------
// Figure 4: signature distribution per country
// ---------------------------------------------------------------------------

/// Figure 4: per-country match percentages, countries ordered by total
/// match rate (the paper's x-axis ordering), with each country's dominant
/// signatures.
pub fn fig4(col: &ReportView, sim: &WorldSim, min_flows: u64) -> String {
    let world = sim.world();
    let mut rows: Vec<(f64, usize)> = (0..world.len())
        .filter(|&c| col.country_total(c) >= min_flows)
        .map(|c| {
            let total = col.country_total(c);
            let matched = col.country_matched(c);
            (matched as f64 / total as f64, c)
        })
        .collect();
    rows.sort_by(|a, b| b.0.total_cmp(&a.0));

    let mut t = Table::new([
        "Country",
        "Flows",
        "Match any sig",
        "Not tampered",
        "Top signatures",
    ]);
    for (rate, c) in rows {
        let total = col.country_total(c);
        let mut sigs: Vec<(u64, Signature)> = Signature::ALL
            .iter()
            .map(|s| (col.country_class[c][s.index()], *s))
            .filter(|(n, _)| *n > 0)
            .collect();
        sigs.sort_by_key(|(n, _)| std::cmp::Reverse(*n));
        let tops: Vec<String> = sigs
            .iter()
            .take(3)
            .map(|(n, s)| format!("{} {}", s.label(), pct(*n, total)))
            .collect();
        t.row([
            world[c].country.code.to_owned(),
            total.to_string(),
            pct_f(rate),
            pct(col.country_class[c][CLASS_NOT_TAMPERED], total),
            tops.join("; "),
        ]);
    }
    format!(
        "Figure 4 — % of each country's connections matching signatures\n\n{}",
        t.render()
    )
}

// ---------------------------------------------------------------------------
// Figure 5: per-AS match proportions
// ---------------------------------------------------------------------------

/// Figure 5: per-AS match proportion for the ASes carrying the top 80% of
/// each country's traffic — centralized countries show tight spreads,
/// decentralized ones wide spreads.
pub fn fig5(col: &ReportView, sim: &WorldSim, min_flows: u64) -> String {
    let world = sim.world();
    let mut t = Table::new([
        "Country",
        "ASes (top 80%)",
        "min",
        "median",
        "max",
        "spread",
    ]);
    for (c, spec) in world.iter().enumerate() {
        let mut ases: Vec<(u64, u64)> = col
            .as_counts
            .iter()
            .filter(|((cc, _), _)| *cc == c as u16)
            .map(|(_, &(total, matched))| (total, matched))
            .collect();
        let country_total: u64 = ases.iter().map(|(t, _)| t).sum();
        if country_total < min_flows {
            continue;
        }
        ases.sort_by_key(|(total, _)| std::cmp::Reverse(*total));
        let mut cum = 0;
        let mut props: Vec<f64> = Vec::new();
        for (total, matched) in &ases {
            if cum as f64 > 0.8 * country_total as f64 {
                break;
            }
            cum += total;
            if *total > 0 {
                props.push(*matched as f64 / *total as f64);
            }
        }
        if props.is_empty() {
            continue;
        }
        props.sort_by(|a, b| a.total_cmp(b));
        let median = props[props.len() / 2];
        let spread = props[props.len() - 1] - props[0];
        t.row([
            spec.country.code.to_owned(),
            props.len().to_string(),
            pct_f(props[0]),
            pct_f(median),
            pct_f(props[props.len() - 1]),
            pct_f(spread),
        ]);
    }
    format!(
        "Figure 5 — per-AS signature-match proportions (top-80%-of-traffic ASes)\n\n{}",
        t.render()
    )
}

// ---------------------------------------------------------------------------
// Figures 6, 8, 9: time series
// ---------------------------------------------------------------------------

/// Figure 6: hourly percentage of connections matching Post-ACK/Post-PSH
/// signatures for the selected countries (TSV: hour, then one column per
/// country).
pub fn fig6(col: &ReportView, sim: &WorldSim, codes: &[&str]) -> String {
    let world = sim.world();
    let indices: Vec<usize> = codes
        .iter()
        .filter_map(|c| country_index(world, c).map(|i| i as usize))
        .collect();
    let mut out = String::from("Figure 6 — hourly Post-ACK/Post-PSH match % per country\nhour");
    for &i in &indices {
        out.push_str(&format!("\t{}", world[i].country.code));
    }
    out.push('\n');
    for h in 0..col.hours() {
        out.push_str(&h.to_string());
        for &i in &indices {
            let (total, matched) = col.country_hour[i][h];
            if total == 0 {
                out.push_str("\t-");
            } else {
                out.push_str(&format!("\t{:.2}", 100.0 * matched as f64 / total as f64));
            }
        }
        out.push('\n');
    }
    out
}

/// Diurnal summary used in tests and EXPERIMENTS.md: for a country, the
/// average match rate in local night hours (0–8) vs the rest of the day.
pub fn diurnal_contrast(col: &ReportView, sim: &WorldSim, code: &str) -> Option<(f64, f64)> {
    let world = sim.world();
    let ci = country_index(world, code)? as usize;
    let tz = world[ci].country.tz_offset_hours;
    let (mut night_m, mut night_t, mut day_m, mut day_t) = (0u64, 0u64, 0u64, 0u64);
    for (h, &(total, matched)) in col.country_hour[ci].iter().enumerate() {
        let local = (h as i32 + tz).rem_euclid(24);
        if (0..8).contains(&local) {
            night_m += u64::from(matched);
            night_t += u64::from(total);
        } else {
            day_m += u64::from(matched);
            day_t += u64::from(total);
        }
    }
    if night_t == 0 || day_t == 0 {
        return None;
    }
    Some((night_m as f64 / night_t as f64, day_m as f64 / day_t as f64))
}

/// Figure 9 (Appendix A): hourly percentage of connections matching each
/// signature, globally (TSV).
pub fn fig9(col: &ReportView) -> String {
    let mut out = String::from("Figure 9 — hourly match % per signature (global)\nhour");
    for sig in Signature::ALL {
        out.push_str(&format!("\t{}", sig.label()));
    }
    out.push('\n');
    for h in 0..col.hours() {
        let total = col.hour_totals[h];
        out.push_str(&h.to_string());
        for sig in Signature::ALL {
            if total == 0 {
                out.push_str("\t-");
            } else {
                out.push_str(&format!(
                    "\t{:.2}",
                    100.0 * f64::from(col.sig_hour[h][sig.index()]) / f64::from(total)
                ));
            }
        }
        out.push('\n');
    }
    out
}

/// Figure 8: the Iran case study — identical layout to Figure 9 but run on
/// an Iran-scenario collector (only IR traffic, Sept 2022 window).
pub fn fig8(col: &ReportView) -> String {
    let mut s = fig9(col);
    s = s.replacen(
        "Figure 9 — hourly match % per signature (global)",
        "Figure 8 — hourly match % per signature, Iran, Sept 13–29 2022",
        1,
    );
    s
}

// ---------------------------------------------------------------------------
// Figure 7: IPv4/IPv6 and TLS/HTTP comparisons
// ---------------------------------------------------------------------------

/// Figure 7(a): per-country Post-ACK/Post-PSH match % on IPv4 vs IPv6,
/// with the through-origin regression slope.
pub fn fig7a(col: &ReportView, sim: &WorldSim, min_flows: u64) -> String {
    let world = sim.world();
    let mut points: Vec<(f64, f64)> = Vec::new();
    let mut t = Table::new(["Country", "IPv4 %", "IPv6 %"]);
    for (spec, ipver) in world.iter().zip(&col.country_ipver) {
        let [(t4, m4), (t6, m6)] = *ipver;
        if t4 < min_flows || t6 < min_flows {
            continue;
        }
        let p4 = 100.0 * m4 as f64 / t4 as f64;
        let p6 = 100.0 * m6 as f64 / t6 as f64;
        points.push((p4, p6));
        t.row([
            spec.country.code.to_owned(),
            format!("{p4:.1}"),
            format!("{p6:.1}"),
        ]);
    }
    format!(
        "Figure 7(a) — IPv4 vs IPv6 tampering %, regression slope = {:.2}\n\n{}",
        slope_through_origin(&points),
        t.render()
    )
}

/// Figure 7(b): per-country Post-PSH match % on TLS vs HTTP, with slope.
pub fn fig7b(col: &ReportView, sim: &WorldSim, min_flows: u64) -> String {
    let world = sim.world();
    let mut points: Vec<(f64, f64)> = Vec::new();
    let mut t = Table::new(["Country", "TLS %", "HTTP %"]);
    for (spec, proto) in world.iter().zip(&col.country_proto) {
        let [(th, mh), (tt, mt)] = *proto;
        if th < min_flows || tt < min_flows {
            continue;
        }
        let p_http = 100.0 * mh as f64 / th as f64;
        let p_tls = 100.0 * mt as f64 / tt as f64;
        points.push((p_tls, p_http));
        t.row([
            spec.country.code.to_owned(),
            format!("{p_tls:.1}"),
            format!("{p_http:.1}"),
        ]);
    }
    format!(
        "Figure 7(b) — Post-PSH match % for TLS vs HTTP, regression slope (HTTP on TLS) = {:.2}\n\n{}",
        slope_through_origin(&points),
        t.render()
    )
}

// ---------------------------------------------------------------------------
// Table 2: categories
// ---------------------------------------------------------------------------

struct RegionCategoryView {
    /// (category, tampered connections, tampered domains, seen domains)
    rows: Vec<(Category, u64, u64, u64)>,
    total_tampered_conns: u64,
}

fn region_categories(
    col: &ReportView,
    sim: &WorldSim,
    country: Option<u16>,
    threshold: u32,
) -> RegionCategoryView {
    let catalog = sim.catalog();
    let mut by_cat: Vec<(u64, BTreeSet<u32>, BTreeSet<u32>)> = (0..Category::ALL.len())
        .map(|_| (0, BTreeSet::new(), BTreeSet::new()))
        .collect();
    // Aggregate cells (for Global, sum the same domain across countries).
    // Ordered map: the iteration below feeds rendered rows.
    let mut agg: BTreeMap<u32, (u32, u32)> = BTreeMap::new();
    for ((cc, d), cell) in &col.domain_cells {
        if let Some(c) = country {
            if *cc != c {
                continue;
            }
        }
        let e = agg.entry(*d).or_default();
        e.0 += cell.seen;
        e.1 += cell.psh_tampered;
    }
    let mut total_tampered_conns = 0;
    for (d, (seen, tampered)) in agg {
        let cat = catalog.get(d).category.index();
        if seen > 0 {
            by_cat[cat].2.insert(d);
        }
        if tampered >= threshold {
            by_cat[cat].0 += u64::from(tampered);
            by_cat[cat].1.insert(d);
            total_tampered_conns += u64::from(tampered);
        }
    }
    let rows = Category::ALL
        .iter()
        .enumerate()
        .map(|(i, c)| {
            (
                *c,
                by_cat[i].0,
                by_cat[i].1.len() as u64,
                by_cat[i].2.len() as u64,
            )
        })
        .collect();
    RegionCategoryView {
        rows,
        total_tampered_conns,
    }
}

/// Table 2: the top-3 most affected categories per region with their share
/// of tampered connections and category coverage.
pub fn table2(col: &ReportView, sim: &WorldSim, threshold: u32) -> String {
    let world = sim.world();
    let mut t = Table::new([
        "Region",
        "Most affected categories",
        "% of tampered connections",
        "% of category domains tampered",
    ]);
    let mut regions: Vec<(String, Option<u16>)> = vec![("Global".to_owned(), None)];
    for code in FOCUS_REGIONS {
        if let Some(i) = country_index(world, code) {
            regions.push((code.to_owned(), Some(i)));
        }
    }
    for (name, country) in regions {
        let view = region_categories(col, sim, country, threshold);
        let mut rows = view.rows.clone();
        rows.sort_by_key(|(_, conns, _, _)| std::cmp::Reverse(*conns));
        for (cat, conns, tampered_doms, seen_doms) in rows.into_iter().take(3) {
            if conns == 0 {
                continue;
            }
            t.row([
                name.clone(),
                cat.label().to_owned(),
                pct(conns, view.total_tampered_conns),
                pct(tampered_doms, seen_doms),
            ]);
        }
    }
    format!(
        "Table 2 — Post-PSH tampering by content category (domain threshold: ≥{threshold} tampered connections)\n\n{}",
        t.render()
    )
}

// ---------------------------------------------------------------------------
// Table 3: test-list coverage
// ---------------------------------------------------------------------------

fn observed_tampered_domains(
    col: &ReportView,
    sim: &WorldSim,
    country: Option<u16>,
    threshold: u32,
) -> Vec<String> {
    let catalog = sim.catalog();
    let mut agg: BTreeMap<u32, u32> = BTreeMap::new();
    for ((cc, d), cell) in &col.domain_cells {
        if let Some(c) = country {
            if *cc != c {
                continue;
            }
        }
        *agg.entry(*d).or_default() += cell.psh_tampered;
    }
    let mut v: Vec<String> = agg
        .into_iter()
        .filter(|(_, n)| *n >= threshold)
        .map(|(d, _)| catalog.get(d).name.clone())
        .collect();
    v.sort();
    v
}

/// Table 3: coverage of each test list over the passively observed
/// tampered domains, per region, in exact (eTLD+1) and substring modes.
pub fn table3(col: &ReportView, sim: &WorldSim, lists: &TestLists, threshold: u32) -> String {
    let world = sim.world();
    let mut regions: Vec<(String, Option<u16>)> = vec![("Global".to_owned(), None)];
    for code in ["CN", "IN", "IR", "KR", "MX", "PE", "RU", "US"] {
        if let Some(i) = country_index(world, code) {
            regions.push((code.to_owned(), Some(i)));
        }
    }
    let observed: Vec<Vec<String>> = regions
        .iter()
        .map(|(_, c)| observed_tampered_domains(col, sim, *c, threshold))
        .collect();

    let mut header: Vec<String> = vec!["List".to_owned(), "Entries".to_owned()];
    for ((name, _), obs) in regions.iter().zip(&observed) {
        header.push(format!("{name} (n={})", obs.len()));
    }
    let mut t = Table::new(header);

    let coverage = |pred: &dyn Fn(&str) -> bool, obs: &[String]| -> String {
        if obs.is_empty() {
            return "-".to_owned();
        }
        let hits = obs.iter().filter(|d| pred(d)).count();
        pct(hits as u64, obs.len() as u64)
    };

    for list in &lists.fixed {
        let mut row = vec![list.name.clone(), list.len().to_string()];
        for obs in &observed {
            row.push(coverage(&|d| list.contains(d), obs));
        }
        t.row(row);
    }
    // Citizenlab per-country row.
    {
        let mut row = vec!["Citizenlab_country".to_owned(), "varies".to_owned()];
        for ((_, country), obs) in regions.iter().zip(&observed) {
            match country {
                Some(c) => {
                    let list = &lists.citizenlab_country[c];
                    row.push(coverage(&|d| list.contains(d), obs));
                }
                None => row.push("-".to_owned()),
            }
        }
        t.row(row);
    }
    // Unions.
    let union_pred = |names: &[&str]| {
        let members: Vec<&crate::TestList> = lists
            .fixed
            .iter()
            .filter(|l| names.contains(&l.name.as_str()))
            .collect();
        move |d: &str| members.iter().any(|l| l.contains(d))
    };
    let cl_gf = union_pred(&[
        "Citizenlab",
        "Citizenlab_global",
        "Greatfire_all",
        "Greatfire_30d",
    ]);
    {
        let mut row = vec!["Union: Citizenlab + Greatfire".to_owned(), String::new()];
        for obs in &observed {
            row.push(coverage(&cl_gf, obs));
        }
        t.row(row);
    }
    {
        let all = |d: &str| lists.fixed.iter().any(|l| l.contains(d));
        let mut row = vec!["Union: All lists".to_owned(), String::new()];
        for obs in &observed {
            row.push(coverage(&all, obs));
        }
        t.row(row);
    }
    // Substring best-case rows.
    {
        let members: Vec<&crate::TestList> = lists
            .fixed
            .iter()
            .filter(|l| l.name.starts_with("Citizenlab") || l.name.starts_with("Greatfire"))
            .collect();
        let pred = |d: &str| members.iter().any(|l| l.substring_match(d));
        let mut row = vec![
            "Substring: Citizenlab + Greatfire".to_owned(),
            String::new(),
        ];
        for obs in &observed {
            row.push(coverage(&pred, obs));
        }
        t.row(row);
    }
    {
        let pred = |d: &str| lists.fixed.iter().any(|l| l.substring_match(d));
        let mut row = vec!["Substring: All lists".to_owned(), String::new()];
        for obs in &observed {
            row.push(coverage(&pred, obs));
        }
        t.row(row);
    }
    format!(
        "Table 3 — test-list coverage of passively observed tampered domains (threshold ≥{threshold})\n\n{}",
        t.render()
    )
}

// ---------------------------------------------------------------------------
// Figure 10: signature consistency for (IP, domain) pairs
// ---------------------------------------------------------------------------

/// Figure 10 (Appendix B): for repeated (IP, domain) pairs, the transition
/// matrix from the first matched class to subsequent ones. A strong
/// diagonal means tampering is consistent.
pub fn fig10(col: &ReportView) -> String {
    let mut matrix = [[0u64; 9]; 9];
    for seq in &col.pair_codes {
        if seq.len() < 2 {
            continue;
        }
        let first = seq[0] as usize;
        for &next in &seq[1..] {
            matrix[first][next as usize] += 1;
        }
    }
    let mut header = vec!["first \\ next".to_owned()];
    for code in 0..9u8 {
        header.push(class_code_label(code).to_owned());
    }
    let mut t = Table::new(header);
    let mut diag_mass = 0u64;
    let mut total_mass = 0u64;
    for (i, row) in matrix.iter().enumerate() {
        let row_total: u64 = row.iter().sum();
        let mut cells = vec![class_code_label(i as u8).to_owned()];
        for (j, &n) in row.iter().enumerate() {
            if row_total == 0 {
                cells.push("-".to_owned());
            } else {
                cells.push(format!("{:.2}", n as f64 / row_total as f64));
            }
            if i == j {
                diag_mass += n;
            }
            total_mass += n;
        }
        t.row(cells);
    }
    format!(
        "Figure 10 — class consistency across repeated (IP, domain) pairs (diagonal mass: {})\n\n{}",
        pct(diag_mass, total_mass),
        t.render()
    )
}

/// Fraction of repeat-pair transitions that stay on the diagonal — the
/// headline consistency number for Appendix B.
pub fn fig10_diagonal_mass(col: &ReportView) -> f64 {
    let mut diag = 0u64;
    let mut total = 0u64;
    for seq in &col.pair_codes {
        if seq.len() < 2 {
            continue;
        }
        let first = seq[0];
        for &next in &seq[1..] {
            total += 1;
            if next == first {
                diag += 1;
            }
        }
    }
    if total == 0 {
        return f64::NAN;
    }
    diag as f64 / total as f64
}

// ---------------------------------------------------------------------------
// Validation (§4.2, §4.3) and ground truth
// ---------------------------------------------------------------------------

/// The §4.1–§4.3 validation numbers plus simulation-only ground truth.
pub fn validation(col: &ReportView) -> String {
    let mut out = String::from("Validation (paper §4.1–4.3)\n\n");
    out.push_str(&format!(
        "V1 scanners: {} of ⟨SYN → RST⟩ matches carry the ZMap fingerprint (IP-ID 54321, no options)\n",
        pct(col.syn_rst_zmap, col.syn_rst_total)
    ));
    out.push_str(&format!(
        "    option-less flows: {}   TTL ≥ 200 flows: {}\n",
        pct(col.no_opt_flows, col.total),
        pct(col.high_ttl_flows, col.total)
    ));
    out.push_str(&format!(
        "V2 SYN payloads: port 80: {} of flows carry a GET in the SYN; port 443: {}\n",
        pct(col.port80_syn_payload, col.port80_flows),
        pct(col.port443_syn_payload, col.port443_flows)
    ));
    let magnet_total: u32 = {
        let mut counts: Vec<u32> = col.syn_payload_domains.values().copied().collect();
        counts.sort_unstable_by_key(|c| std::cmp::Reverse(*c));
        counts.iter().take(4).sum()
    };
    let all_payload: u32 = col.syn_payload_domains.values().sum();
    out.push_str(&format!(
        "    top-4 domains receive {} of SYN-payload requests\n",
        pct(u64::from(magnet_total), u64::from(all_payload))
    ));
    out.push_str(&format!(
        "    Post-Data matches carrying a commercial-firewall User-Agent: {}\n",
        pct(col.postdata_fw_ua, col.postdata_matches)
    ));
    out.push_str(&format!(
        "V3 baselines: min consecutive |ΔIP-ID| ≤ 1 for {} of flows; > 100 for {}\n",
        pct(col.ipid_min_le1, col.ipid_flows),
        pct(col.ipid_min_gt100, col.ipid_flows)
    ));
    out.push_str(&format!(
        "    max consecutive |ΔTTL| ≤ 1 for {} of flows\n",
        pct(col.ttl_max_le1, col.ttl_flows)
    ));
    out.push_str(&format!(
        "\nGround truth (simulation only): recall {} precision {} — the precision gap is the benign\nanomaly population (scanners, aborts, vanishing clients) the paper's signatures knowingly include.\n",
        pct_f(col.truth.recall()),
        pct_f(col.truth.precision())
    ));
    out
}

/// Assemble the complete standard-scenario report: every table and figure
/// except the Iran case study (which needs its own scenario world). This
/// is what `examples/global_report.rs` and the CLI `report` subcommand
/// print.
pub fn full_report(col: &ReportView, sim: &WorldSim, lists: &TestLists) -> String {
    let mut out = String::new();
    let mut push = |s: String| {
        out.push_str(&s);
        out.push('\n');
    };
    push(table1(col));
    push(fig1(col, sim, 6));
    push(fig4(col, sim, 100));
    push(fig5(col, sim, 400));
    push(fig7a(col, sim, 150));
    push(fig7b(col, sim, 150));
    push(table2(col, sim, 3));
    push(table3(col, sim, lists, 3));
    push(fig2(col));
    push(fig3(col));
    push(validation(col));
    push(benign_attribution(col));
    push(fig10(col));
    push(fig6(col, sim, &FIG6_COUNTRIES));
    push(fig9(col));
    out
}

/// The anatomy of the benign population (§4.2, simulation-only): for each
/// benign client behaviour, where its flows land in the classification —
/// which signature absorbs it, or whether it stays unmatched/clean.
pub fn benign_attribution(col: &ReportView) -> String {
    let mut t = Table::new([
        "Benign behaviour",
        "n",
        "Dominant class",
        "share",
        "Not tampered",
    ]);
    for kind in tamper_worldgen::BenignKind::ALL {
        let row = &col.benign_attribution[kind.index()];
        let n: u64 = row.iter().sum();
        if n == 0 {
            continue;
        }
        let (best_idx, best_n) = row
            .iter()
            .enumerate()
            .take(20) // exclude the Not-Tampered cell from "dominant class"
            .max_by_key(|(_, v)| **v)
            .unwrap();
        let label = if best_idx < 19 {
            Signature::ALL[best_idx].label().to_owned()
        } else {
            "(possibly tampered, unmatched)".to_owned()
        };
        let (label, best_n) = if *best_n == 0 {
            ("—".to_owned(), 0)
        } else {
            (label, *best_n)
        };
        t.row([
            kind.label().to_owned(),
            n.to_string(),
            label,
            pct(best_n, n),
            pct(row[CLASS_NOT_TAMPERED], n),
        ]);
    }
    format!(
        "Benign-population anatomy (ground truth × classification)

{}",
        t.render()
    )
}

/// Percentage of possibly-tampered flows whose sequence-type stage matched
/// a signature, by stage — convenience for tests.
pub fn stage_share(col: &ReportView, stage: Stage) -> f64 {
    let idx = match stage {
        Stage::PostSyn => 0,
        Stage::PostAck => 1,
        Stage::PostPsh => 2,
        Stage::PostData => 3,
    };
    if col.possibly_tampered == 0 {
        return f64::NAN;
    }
    col.stage_counts[idx] as f64 / col.possibly_tampered as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Collector;
    use tamper_core::ClassifierConfig;
    use tamper_worldgen::{WorldConfig, WorldSim};

    fn tiny() -> (Collector, WorldSim) {
        let sim = WorldSim::new(WorldConfig {
            sessions: 4_000,
            days: 2,
            catalog_size: 600,
            ..Default::default()
        });
        let mut col = Collector::new(
            ClassifierConfig::default(),
            sim.world().len(),
            2,
            sim.config().start_unix,
        );
        sim.run(|lf| col.observe(&lf));
        (col, sim)
    }

    #[test]
    fn table1_contains_all_signatures_and_totals() {
        let (col, _) = tiny();
        let t = table1(&col.view());
        for sig in Signature::ALL {
            assert!(t.contains(sig.label()), "missing {sig}");
        }
        assert!(t.contains("possibly tampered"));
        assert!(t.contains("Mid-handshake"));
    }

    #[test]
    fn fig1_has_a_line_per_signature() {
        let (col, sim) = tiny();
        let f = fig1(&col.view(), &sim, 3);
        for sig in Signature::ALL {
            assert!(f.contains(sig.label()), "missing {sig}");
        }
    }

    #[test]
    fn fig4_sorted_descending() {
        let (col, sim) = tiny();
        let f = fig4(&col.view(), &sim, 10);
        // Parse the "Match any sig" column and check monotonicity.
        let rates: Vec<f64> = f
            .lines()
            .skip(4)
            .filter_map(|l| {
                let cols: Vec<&str> = l.split_whitespace().collect();
                cols.get(2)
                    .and_then(|c| c.trim_end_matches('%').parse().ok())
            })
            .collect();
        assert!(rates.len() > 10);
        for w in rates.windows(2) {
            assert!(w[0] >= w[1] - 1e-9, "not sorted: {} then {}", w[0], w[1]);
        }
    }

    #[test]
    fn cdf_figures_are_tsv_with_headers() {
        let (col, _) = tiny();
        let f2 = fig2(&col.view());
        assert!(f2.starts_with("Figure 2"));
        assert!(f2.contains("Not Tampering"));
        let f3 = fig3(&col.view());
        assert!(f3.contains("F(0)"));
    }

    #[test]
    fn fig6_has_hour_rows() {
        let (col, sim) = tiny();
        let f = fig6(&col.view(), &sim, &["CN", "US"]);
        let lines: Vec<&str> = f.lines().collect();
        assert_eq!(lines[1], "hour\tCN\tUS");
        assert_eq!(lines.len(), 2 + col.hours());
    }

    #[test]
    fn fig7_reports_slopes() {
        let (col, sim) = tiny();
        assert!(fig7a(&col.view(), &sim, 5).contains("slope"));
        assert!(fig7b(&col.view(), &sim, 5).contains("slope"));
    }

    #[test]
    fn tables_2_and_3_render() {
        let (col, sim) = tiny();
        let t2 = table2(&col.view(), &sim, 1);
        assert!(t2.contains("Global"));
        let lists = tamper_worldgen::generate_lists(&sim);
        let t3 = table3(&col.view(), &sim, &lists, 1);
        assert!(t3.contains("Tranco_1K"));
        assert!(t3.contains("Substring: All lists"));
    }

    #[test]
    fn fig10_diagonal_in_unit_range() {
        let (col, _) = tiny();
        let d = fig10_diagonal_mass(&col.view());
        if !d.is_nan() {
            assert!((0.0..=1.0).contains(&d));
        }
        assert!(fig10(&col.view()).contains("first \\ next"));
    }

    #[test]
    fn benign_attribution_maps_kinds_to_expected_classes() {
        let (col, _) = tiny();
        let row = |k: tamper_worldgen::BenignKind| &col.benign_attribution[k.index()];
        // ZMap scanners land on ⟨SYN → RST⟩.
        let zmap = row(tamper_worldgen::BenignKind::Zmap);
        assert!(zmap[Signature::SynRst.index()] > 0);
        // Stalls complete gracefully: overwhelmingly Not Tampered.
        let stall = row(tamper_worldgen::BenignKind::StallOk);
        let n: u64 = stall.iter().sum();
        if n > 0 {
            assert!(stall[crate::agg::CLASS_NOT_TAMPERED] as f64 / n as f64 > 0.8);
        }
        let text = benign_attribution(&col.view());
        assert!(text.contains("ZMap"));
    }

    #[test]
    fn validation_mentions_all_checks() {
        let (col, _) = tiny();
        let v = validation(&col.view());
        for needle in ["V1", "V2", "V3", "ZMap", "recall"] {
            assert!(v.contains(needle), "missing {needle}");
        }
    }

    #[test]
    fn full_report_contains_every_artifact() {
        let (col, sim) = tiny();
        let lists = tamper_worldgen::generate_lists(&sim);
        let r = full_report(&col.view(), &sim, &lists);
        for needle in [
            "possibly tampered",
            "Figure 1",
            "Figure 4",
            "Figure 5",
            "Figure 7(a)",
            "Figure 7(b)",
            "Table 2",
            "Table 3",
            "Figure 2",
            "Figure 3",
            "Validation",
            "Benign-population",
            "Figure 10",
            "Figure 6",
            "Figure 9",
        ] {
            assert!(r.contains(needle), "missing {needle}");
        }
    }

    #[test]
    fn fig9_and_fig8_share_layout() {
        let (col, _) = tiny();
        let f9 = fig9(&col.view());
        assert!(f9.contains("Figure 9"));
        let f8 = fig8(&col.view());
        assert!(f8.contains("Figure 8"));
        assert_eq!(f8.lines().count(), f9.lines().count());
    }
}
