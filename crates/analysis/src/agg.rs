//! The mergeable partial aggregate: everything the report layer needs,
//! in a form that sums losslessly across machines.
//!
//! The paper's pipeline runs at hundreds of PoPs and merges per-PoP
//! tallies centrally. [`PartialAggregate`] is that per-PoP unit: plain
//! counters (exact `u64` sums), ordered tables, and *deterministic
//! mergeable reservoirs* whose sample priorities are a pure function of
//! the flow — so `merge` is associative, commutative, and
//! order-insensitive, and "N PoPs → merge → same bytes as one machine"
//! is a provable property rather than a hope. The binary `.agg`
//! encoding lives in [`crate::aggfile`]; the figure-oriented read side
//! lives in [`crate::view::ReportView`].

use std::collections::BTreeMap;
use tamper_core::{
    is_zmap_fingerprint, max_consecutive_ipid_delta, max_consecutive_ttl_delta, max_rst_ipid_delta,
    max_rst_ttl_delta, min_consecutive_ipid_delta, scanner_marks, user_agent,
};
use tamper_core::{ClassifierConfig, FlowAnalysis, Signature, Stage};
use tamper_netsim::splitmix64;
use tamper_worldgen::LabeledFlow;

/// Number of classification cells per country: 19 signatures, plus
/// "possibly tampered, unmatched", plus "not tampered".
pub const N_CLASSES: usize = 21;
/// Index of the unmatched possibly-tampered cell.
pub const CLASS_OTHER: usize = 19;
/// Index of the not-tampered cell.
pub const CLASS_NOT_TAMPERED: usize = 20;

/// Evidence-reservoir capacity per class (the paper samples up to 1,000
/// connections per signature for Figures 2 and 3).
pub const RESERVOIR_CAP: usize = 1000;

/// Cap on per-(ip, domain) Post-PSH class sequences (Appendix B).
pub const PAIR_SEQ_CAP: usize = 8;

/// Cap on the number of `(ip, domain)` pair-sequence *keys* a partial
/// keeps: the lowest `PAIR_KEY_CAP` keys in `(ip_key, domain)` order.
/// Keep-lowest-K over a keyed union is associative and commutative, and
/// a key can never re-enter once capped out (every kept key is smaller),
/// so per-PoP partials still merge to exactly the single-machine map —
/// while a long-running ingest stays bounded.
pub const PAIR_KEY_CAP: usize = 65536;

/// Ground-truth confusion counts (simulation-only luxury).
#[derive(Debug, Clone, Copy, Default)]
pub struct TruthStats {
    /// Middlebox fired, flow flagged possibly tampered.
    pub true_positive: u64,
    /// Middlebox fired, flow not flagged.
    pub false_negative: u64,
    /// No middlebox, flow flagged.
    pub false_positive: u64,
    /// No middlebox, not flagged.
    pub true_negative: u64,
    /// Middlebox fired and the flow matched a concrete signature.
    pub matched_signature: u64,
}

impl TruthStats {
    /// Recall of possibly-tampered detection against ground truth.
    pub fn recall(&self) -> f64 {
        let p = self.true_positive + self.false_negative;
        if p == 0 {
            return 0.0;
        }
        self.true_positive as f64 / p as f64
    }

    /// Precision of possibly-tampered detection against ground truth.
    /// Note the paper expects this to be well below 1: benign scanners,
    /// aborts, and vanishing clients are genuine parts of the unmatched /
    /// matched population.
    pub fn precision(&self) -> f64 {
        let f = self.true_positive + self.false_positive;
        if f == 0 {
            return 0.0;
        }
        self.true_positive as f64 / f as f64
    }
}

/// Per-(country, domain) cell.
#[derive(Debug, Clone, Copy, Default)]
pub struct DomainCell {
    /// Connections observed.
    pub seen: u32,
    /// Connections matching a Post-PSH signature.
    pub psh_tampered: u32,
}

/// A deterministic mergeable sample: keep the `RESERVOIR_CAP` entries
/// with the lowest `(priority, value)` keys, where the priority is a
/// pure function of the flow ([`flow_priority`]) rather than of stream
/// order. The retained set is then a canonical multiset — the same for
/// any partition of the input and any merge order — which is what lets
/// per-PoP partials reproduce the single-machine CDF figures
/// byte-for-byte.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Reservoir<T> {
    /// Entries sorted ascending by `(priority, value)`.
    entries: Vec<(u64, T)>,
}

impl<T: Copy + Ord> Reservoir<T> {
    /// An empty reservoir.
    pub fn new() -> Reservoir<T> {
        Reservoir {
            entries: Vec::new(),
        }
    }

    /// Offer one sample; kept only while it ranks inside the lowest
    /// `RESERVOIR_CAP` keys seen so far.
    pub fn insert(&mut self, priority: u64, value: T) {
        let key = (priority, value);
        if self.entries.len() >= RESERVOIR_CAP {
            if let Some(last) = self.entries.last() {
                if key >= *last {
                    return;
                }
            }
        }
        let at = self.entries.partition_point(|e| *e < key);
        self.entries.insert(at, key);
        self.entries.truncate(RESERVOIR_CAP);
    }

    /// Fold another reservoir in; keep-lowest-k of the union.
    pub fn merge(&mut self, other: &Reservoir<T>) {
        for &(p, v) in &other.entries {
            self.insert(p, v);
        }
    }

    /// Number of retained samples.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no samples are retained.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Retained sample values, in canonical `(priority, value)` order.
    pub fn values(&self) -> impl Iterator<Item = T> + '_ {
        self.entries.iter().map(|e| e.1)
    }

    /// Retained `(priority, value)` entries, sorted ascending.
    pub fn entries(&self) -> &[(u64, T)] {
        &self.entries
    }

    /// Rebuild from decoded entries; the decoder has already verified
    /// sortedness and the capacity bound.
    pub(crate) fn from_entries(entries: Vec<(u64, T)>) -> Reservoir<T> {
        Reservoir { entries }
    }
}

/// A per-(ip, domain) Post-PSH class sequence (Appendix B / Fig 10):
/// the first [`PAIR_SEQ_CAP`] observations in *time* order, kept as a
/// canonical lowest-`(timestamp, tie, code)` set so per-PoP partials
/// merge to exactly the single-machine sequence. The tie-breaker is
/// [`flow_priority`], a pure function of the flow, so ordering never
/// depends on which PoP saw the flow or in what order merges ran.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PairSeq {
    /// Entries sorted ascending by `(timestamp, tie, code)`.
    entries: Vec<(u64, u64, u8)>,
}

impl PairSeq {
    /// Offer one observation.
    pub fn insert(&mut self, ts: u64, tie: u64, code: u8) {
        let key = (ts, tie, code);
        if self.entries.len() >= PAIR_SEQ_CAP {
            if let Some(last) = self.entries.last() {
                if key >= *last {
                    return;
                }
            }
        }
        let at = self.entries.partition_point(|e| *e < key);
        self.entries.insert(at, key);
        self.entries.truncate(PAIR_SEQ_CAP);
    }

    /// Fold another sequence in.
    pub fn merge(&mut self, other: &PairSeq) {
        for &(ts, tie, code) in &other.entries {
            self.insert(ts, tie, code);
        }
    }

    /// Number of retained observations.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no observations are retained.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Class codes in time order.
    pub fn codes(&self) -> impl Iterator<Item = u8> + '_ {
        self.entries.iter().map(|e| e.2)
    }

    /// Retained `(timestamp, tie, code)` entries, sorted ascending.
    pub fn entries(&self) -> &[(u64, u64, u8)] {
        &self.entries
    }

    /// Rebuild from decoded entries; the decoder has already verified
    /// sortedness and the capacity bound.
    pub(crate) fn from_entries(entries: Vec<(u64, u64, u8)>) -> PairSeq {
        PairSeq { entries }
    }
}

/// Map a signature to its Fig 10 class code (Post-PSH only).
pub fn postpsh_class_code(sig: Option<Signature>) -> Option<u8> {
    use Signature::*;
    Some(match sig {
        None => 0,
        Some(PshNone) => 1,
        Some(PshRst) => 2,
        Some(PshRstAck) => 3,
        Some(PshRstRstAck) => 4,
        Some(PshRstAckRstAck) => 5,
        Some(PshRstEq) => 6,
        Some(PshRstNeq) => 7,
        Some(PshRstZero) => 8,
        Some(
            SynNone | SynRst | SynRstAck | SynRstBoth | AckNone | AckRst | AckRstRst | AckRstAck
            | AckRstAckRstAck | DataRst | DataRstAck,
        ) => return None,
    })
}

/// Human label for a Fig 10 class code.
pub fn class_code_label(code: u8) -> &'static str {
    match code {
        0 => "Not Tampering",
        1 => Signature::PshNone.label(),
        2 => Signature::PshRst.label(),
        3 => Signature::PshRstAck.label(),
        4 => Signature::PshRstRstAck.label(),
        5 => Signature::PshRstAckRstAck.label(),
        6 => Signature::PshRstEq.label(),
        7 => Signature::PshRstNeq.label(),
        _ => Signature::PshRstZero.label(),
    }
}

fn stage_index(stage: Option<Stage>) -> usize {
    match stage {
        Some(Stage::PostSyn) => 0,
        Some(Stage::PostAck) => 1,
        Some(Stage::PostPsh) => 2,
        Some(Stage::PostData) => 3,
        None => 4,
    }
}

/// Stable 64-bit key for an IP address (used for pair-sequence keys and
/// as the base of [`flow_priority`]).
pub fn ip_key(ip: std::net::IpAddr) -> u64 {
    match ip {
        std::net::IpAddr::V4(v4) => splitmix64(u64::from(u32::from(v4))),
        std::net::IpAddr::V6(v6) => {
            let bits = u128::from_be_bytes(v6.octets());
            let hi = (bits >> 64) as u64;
            let lo = bits as u64;
            splitmix64(hi ^ lo.rotate_left(32))
        }
    }
}

/// Deterministic per-flow sample priority: a `splitmix64` chain over the
/// flow's identity (client address, ports, session start, first logged
/// sequence number). Pure in the flow, so every PoP computes the same
/// priority for the same flow regardless of arrival order — the property
/// the mergeable reservoirs rest on.
pub fn flow_priority(lf: &LabeledFlow) -> u64 {
    let mut h = ip_key(lf.flow.client_ip);
    h = splitmix64(h ^ (u64::from(lf.flow.src_port) << 16) ^ u64::from(lf.flow.dst_port));
    h = splitmix64(h ^ lf.meta.start_unix);
    let seq0 = lf.flow.packets.first().map_or(0, |p| p.seq);
    splitmix64(h ^ u64::from(seq0))
}

/// Version of the fingerprint chain (bumped with the `.agg` format).
const FINGERPRINT_VERSION: u64 = 1;

/// Fingerprint of everything two partials must agree on before a merge
/// is meaningful: format version, classifier knobs, aggregation shape,
/// and the caller-supplied world salt (workload identity).
pub fn config_fingerprint(
    cfg: &ClassifierConfig,
    n_countries: usize,
    hours: usize,
    start_unix: u64,
    world_salt: u64,
) -> u64 {
    let mut h = splitmix64(FINGERPRINT_VERSION);
    for x in [
        cfg.inactivity_secs,
        u64::from(cfg.split_rst_counts),
        n_countries as u64,
        hours as u64,
        start_unix,
        world_salt,
        RESERVOIR_CAP as u64,
        N_CLASSES as u64,
        tamper_worldgen::BenignKind::ALL.len() as u64,
    ] {
        h = splitmix64(h ^ x);
    }
    h
}

/// The pure, serializable aggregation state: every counter and table the
/// report layer reads, with no classifier scratch attached. Produced by
/// [`crate::Collector`], encoded by [`crate::aggfile`], merged by
/// [`PartialAggregate::merge`].
#[derive(Clone)]
pub struct PartialAggregate {
    /// Classifier configuration the producing collector ran with.
    pub cfg: ClassifierConfig,
    pub(crate) n_countries: usize,
    pub(crate) hours: usize,
    pub(crate) start_unix: u64,
    pub(crate) fingerprint: u64,

    /// Total flows observed.
    pub total: u64,
    /// Possibly-tampered flows.
    pub possibly_tampered: u64,
    /// Possibly-tampered counts by sequence-type stage
    /// (PostSyn/PostAck/PostPsh/PostData/other).
    pub stage_counts: [u64; 5],
    /// Of those, how many matched a signature.
    pub stage_matched: [u64; 5],
    /// Per-country classification counts.
    pub country_class: Vec<[u64; N_CLASSES]>,
    /// Per-(country, asn) (total, matched-any-signature). Ordered map:
    /// report generators iterate this directly, and iteration order must
    /// not depend on hasher seeds.
    pub as_counts: BTreeMap<(u16, u32), (u64, u64)>,
    /// Per-country per-hour (total, matched Post-ACK/Post-PSH signature).
    pub country_hour: Vec<Vec<(u32, u32)>>,
    /// Global per-hour per-signature counts.
    pub sig_hour: Vec<[u32; 19]>,
    /// Global per-hour totals.
    pub hour_totals: Vec<u32>,
    /// Per-country per-IP-version (total, matched Post-ACK/Post-PSH).
    pub country_ipver: Vec<[(u64, u64); 2]>,
    /// Per-country per-protocol (HTTP=0, TLS=1): (total, matched Post-PSH).
    pub country_proto: Vec<[(u64, u64); 2]>,
    /// Per-(country, domain) cells. Ordered for deterministic reports.
    pub domain_cells: BTreeMap<(u16, u32), DomainCell>,
    /// IP-ID delta reservoirs per class (index 19 = Not Tampering).
    pub ipid_res: Vec<Reservoir<u32>>,
    /// TTL delta reservoirs per class.
    pub ttl_res: Vec<Reservoir<i16>>,

    // V3 baseline sanity counters.
    /// IPv4 flows with ≥2 IP-ID-bearing packets.
    pub ipid_flows: u64,
    /// ... whose minimum consecutive delta is ≤ 1.
    pub ipid_min_le1: u64,
    /// ... whose minimum consecutive delta is > 100.
    pub ipid_min_gt100: u64,
    /// Flows with ≥2 packets (TTL baseline).
    pub ttl_flows: u64,
    /// ... whose largest consecutive TTL change magnitude is ≤ 1.
    pub ttl_max_le1: u64,

    // V1 scanner counters.
    /// Flows matching ⟨SYN → RST⟩.
    pub syn_rst_total: u64,
    /// ... of which carry the ZMap fingerprint.
    pub syn_rst_zmap: u64,
    /// Flows with no TCP options on any packet.
    pub no_opt_flows: u64,
    /// Flows with any TTL ≥ 200.
    pub high_ttl_flows: u64,

    // V2 SYN-payload counters.
    /// Port-80 flows.
    pub port80_flows: u64,
    /// Port-80 flows whose SYN carried payload.
    pub port80_syn_payload: u64,
    /// Port-443 flows.
    pub port443_flows: u64,
    /// Port-443 flows whose SYN carried payload.
    pub port443_syn_payload: u64,
    /// SYN-payload counts per domain id. Ordered for deterministic reports.
    pub syn_payload_domains: BTreeMap<u32, u32>,

    /// Post-Data signature matches observed.
    pub postdata_matches: u64,
    /// ... whose HTTP payloads carry a commercial-firewall User-Agent.
    pub postdata_fw_ua: u64,
    /// Ground-truth confusion.
    pub truth: TruthStats,
    /// Benign-kind × classification-cell counts: which benign behaviours
    /// end up matching which signatures (the §4.2 false-positive anatomy,
    /// observable only in simulation). Indexed
    /// `[BenignKind::index()][class]` with the same class layout as
    /// [`PartialAggregate::country_class`].
    pub benign_attribution: Vec<[u64; N_CLASSES]>,
    /// Per-(ip, domain) Post-PSH class sequences (Appendix B / Fig 10):
    /// class codes 0 = Not Tampering, 1..=8 the Post-PSH signatures.
    /// Ordered for deterministic reports.
    pub pair_seqs: BTreeMap<(u64, u32), PairSeq>,
}

impl PartialAggregate {
    /// Create an empty aggregate for a world of `n_countries` over `days`,
    /// salted with a workload identity (0 for single-machine runs).
    pub fn with_salt(
        cfg: ClassifierConfig,
        n_countries: usize,
        days: u32,
        start_unix: u64,
        world_salt: u64,
    ) -> PartialAggregate {
        let hours = (days as usize) * 24;
        PartialAggregate {
            cfg,
            n_countries,
            hours,
            start_unix,
            fingerprint: config_fingerprint(&cfg, n_countries, hours, start_unix, world_salt),
            total: 0,
            possibly_tampered: 0,
            stage_counts: [0; 5],
            stage_matched: [0; 5],
            country_class: vec![[0; N_CLASSES]; n_countries],
            as_counts: BTreeMap::new(),
            country_hour: vec![vec![(0, 0); hours]; n_countries],
            sig_hour: vec![[0; 19]; hours],
            hour_totals: vec![0; hours],
            country_ipver: vec![[(0, 0); 2]; n_countries],
            country_proto: vec![[(0, 0); 2]; n_countries],
            domain_cells: BTreeMap::new(),
            ipid_res: vec![Reservoir::new(); 20],
            ttl_res: vec![Reservoir::new(); 20],
            ipid_flows: 0,
            ipid_min_le1: 0,
            ipid_min_gt100: 0,
            ttl_flows: 0,
            ttl_max_le1: 0,
            syn_rst_total: 0,
            syn_rst_zmap: 0,
            no_opt_flows: 0,
            high_ttl_flows: 0,
            port80_flows: 0,
            port80_syn_payload: 0,
            port443_flows: 0,
            port443_syn_payload: 0,
            syn_payload_domains: BTreeMap::new(),
            postdata_matches: 0,
            postdata_fw_ua: 0,
            truth: TruthStats::default(),
            benign_attribution: vec![[0; N_CLASSES]; tamper_worldgen::BenignKind::ALL.len()],
            pair_seqs: BTreeMap::new(),
        }
    }

    /// Create an empty aggregate with salt 0 (single-machine runs).
    pub fn new(
        cfg: ClassifierConfig,
        n_countries: usize,
        days: u32,
        start_unix: u64,
    ) -> PartialAggregate {
        PartialAggregate::with_salt(cfg, n_countries, days, start_unix, 0)
    }

    /// Number of countries this aggregate was sized for.
    pub fn n_countries(&self) -> usize {
        self.n_countries
    }

    /// Number of hourly buckets.
    pub fn hours(&self) -> usize {
        self.hours
    }

    /// First hour bucket's unix timestamp.
    pub fn start_unix(&self) -> u64 {
        self.start_unix
    }

    /// Config fingerprint two partials must share to merge.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Record a flow that was already classified.
    pub fn record(&mut self, lf: &LabeledFlow, a: &FlowAnalysis) {
        let c = lf.meta.country as usize;
        debug_assert!(c < self.n_countries);
        self.total += 1;
        let sig = a.signature();
        let class_idx = match (sig, a.is_possibly_tampered()) {
            (Some(s), _) => s.index(),
            (None, true) => CLASS_OTHER,
            (None, false) => CLASS_NOT_TAMPERED,
        };
        self.country_class[c][class_idx] += 1;

        let matched_any = sig.is_some();
        let matched_ackpsh = matches!(
            sig.map(|s| s.stage()),
            Some(Stage::PostAck) | Some(Stage::PostPsh)
        );
        let matched_psh = matches!(sig.map(|s| s.stage()), Some(Stage::PostPsh));

        if a.is_possibly_tampered() {
            self.possibly_tampered += 1;
            let si = stage_index(a.stage);
            self.stage_counts[si] += 1;
            if matched_any {
                self.stage_matched[si] += 1;
            }
        }

        // AS view.
        let as_key = (lf.meta.country, lf.meta.asn.0);
        // tamperlint: allow(unbounded-growth) — keyed by (country, ASN), both from finite worldgen tables
        let as_entry = self.as_counts.entry(as_key).or_insert((0, 0));
        as_entry.0 += 1;
        if matched_any {
            as_entry.1 += 1;
        }

        // Time series.
        let h = ((lf.meta.start_unix.saturating_sub(self.start_unix)) / 3600)
            .min(self.hours as u64 - 1) as usize;
        self.hour_totals[h] += 1;
        let ch = &mut self.country_hour[c][h];
        ch.0 += 1;
        if matched_ackpsh {
            ch.1 += 1;
        }
        if let Some(s) = sig {
            self.sig_hour[h][s.index()] += 1;
        }

        // IP version and protocol views.
        let v = usize::from(lf.meta.ipv6);
        self.country_ipver[c][v].0 += 1;
        if matched_ackpsh {
            self.country_ipver[c][v].1 += 1;
        }
        let p = usize::from(!lf.meta.http); // 0 = HTTP, 1 = TLS
        self.country_proto[c][p].0 += 1;
        if matched_psh {
            self.country_proto[c][p].1 += 1;
        }

        // Domain view (ground-truth domain labels mirror the paper's use
        // of the SNI/Host it observed or the CDN's own hostname records).
        if let Some(d) = lf.meta.domain {
            // tamperlint: allow(unbounded-growth) — keyed by (country, domain) from the fixed monitored-domain table
            let cell = self.domain_cells.entry((lf.meta.country, d)).or_default();
            cell.seen += 1;
            if matched_psh {
                cell.psh_tampered += 1;
            }
        }

        // Evidence reservoirs (class 19 = Not Tampering baseline). The
        // sample priority is a pure function of the flow, so the kept set
        // is identical for any partition of the stream across PoPs.
        let res_idx = match sig {
            Some(s) => Some(s.index()),
            None if !a.is_possibly_tampered() => Some(19),
            None => None,
        };
        if let Some(ri) = res_idx {
            let pri = flow_priority(lf);
            let delta = if ri == 19 {
                max_consecutive_ipid_delta(&lf.flow)
            } else {
                max_rst_ipid_delta(&lf.flow)
            };
            if let Some(d) = delta {
                // tamperlint: allow(unbounded-growth) — fixed-length Vec of Reservoirs; Reservoir::insert keeps lowest-K
                self.ipid_res[ri].insert(pri, d);
            }
            let delta = if ri == 19 {
                max_consecutive_ttl_delta(&lf.flow)
            } else {
                max_rst_ttl_delta(&lf.flow)
            };
            if let Some(d) = delta {
                // tamperlint: allow(unbounded-growth) — fixed-length Vec of Reservoirs; Reservoir::insert keeps lowest-K
                self.ttl_res[ri].insert(pri, d);
            }
        }

        // V3 baselines.
        if let Some(min) = min_consecutive_ipid_delta(&lf.flow) {
            self.ipid_flows += 1;
            if min <= 1 {
                self.ipid_min_le1 += 1;
            }
            if min > 100 {
                self.ipid_min_gt100 += 1;
            }
        }
        if let Some(max) = max_consecutive_ttl_delta(&lf.flow) {
            self.ttl_flows += 1;
            if max.abs() <= 1 {
                self.ttl_max_le1 += 1;
            }
        }

        // V1 scanner evidence.
        if sig == Some(Signature::SynRst) {
            self.syn_rst_total += 1;
            if is_zmap_fingerprint(&lf.flow) {
                self.syn_rst_zmap += 1;
            }
        }
        let marks = scanner_marks(&lf.flow);
        if marks.no_tcp_options {
            self.no_opt_flows += 1;
        }
        if marks.high_ttl {
            self.high_ttl_flows += 1;
        }

        // V2 SYN payloads.
        let syn_payload = lf
            .flow
            .packets
            .iter()
            .any(|pk| pk.flags.has_syn() && pk.payload_len > 0);
        if lf.flow.dst_port == 80 {
            self.port80_flows += 1;
            if syn_payload {
                self.port80_syn_payload += 1;
                if let Some(d) = lf.meta.domain {
                    // tamperlint: allow(unbounded-growth) — keyed by domain id from the fixed monitored-domain table
                    *self.syn_payload_domains.entry(d).or_default() += 1;
                }
            }
        } else if lf.flow.dst_port == 443 {
            self.port443_flows += 1;
            if syn_payload {
                self.port443_syn_payload += 1;
            }
        }

        if matches!(sig.map(|s| s.stage()), Some(Stage::PostData)) {
            self.postdata_matches += 1;
            if user_agent(&lf.flow).is_some_and(|ua| ua == tamper_worldgen::FIREWALL_USER_AGENT) {
                self.postdata_fw_ua += 1;
            }
        }

        if let tamper_worldgen::GroundTruth::Benign(kind) = lf.meta.truth {
            self.benign_attribution[kind.index()][class_idx] += 1;
        }

        // Ground truth confusion.
        match (lf.meta.truth.was_tampered(), a.is_possibly_tampered()) {
            (true, true) => {
                self.truth.true_positive += 1;
                if matched_any {
                    self.truth.matched_signature += 1;
                }
            }
            (true, false) => self.truth.false_negative += 1,
            (false, true) => self.truth.false_positive += 1,
            (false, false) => self.truth.true_negative += 1,
        }

        // Appendix B pairs: Post-PSH classes with a visible domain. Kept
        // as the first PAIR_SEQ_CAP observations in (time, tie) order —
        // canonical under any partition/merge shape.
        if let (Some(code), Some(domain)) = (postpsh_class_code(sig), lf.meta.domain) {
            let in_scope = code != 0 || a.trigger.domain.is_some();
            if in_scope {
                let key = (ip_key(lf.flow.client_ip), domain);
                // Keep-lowest-K keys: at cap, a key above the current
                // maximum is rejected (and, once rejected, can never
                // rejoin — see PAIR_KEY_CAP).
                let within = self.pair_seqs.len() < PAIR_KEY_CAP
                    || self.pair_seqs.contains_key(&key)
                    || self
                        .pair_seqs
                        .last_key_value()
                        .is_some_and(|(top, _)| key < *top);
                if within {
                    self.pair_seqs.entry(key).or_default().insert(
                        lf.meta.start_unix,
                        flow_priority(lf),
                        code,
                    );
                    if self.pair_seqs.len() > PAIR_KEY_CAP {
                        self.pair_seqs.pop_last();
                    }
                }
            }
        }
    }

    /// Merge another partial (same fingerprint) into this one. Exact sums
    /// for counters, keep-lowest-k set union for reservoirs and pair
    /// sequences — associative, commutative, and order-insensitive.
    pub fn merge(&mut self, other: PartialAggregate) {
        assert_eq!(
            self.fingerprint, other.fingerprint,
            "merging partial aggregates with different config fingerprints"
        );
        self.total += other.total;
        self.possibly_tampered += other.possibly_tampered;
        for i in 0..5 {
            self.stage_counts[i] += other.stage_counts[i];
            self.stage_matched[i] += other.stage_matched[i];
        }
        for (a, b) in self.country_class.iter_mut().zip(other.country_class) {
            for i in 0..N_CLASSES {
                a[i] += b[i];
            }
        }
        for (k, v) in other.as_counts {
            // tamperlint: allow(unbounded-growth) — merge unions the same finite (country, ASN) key space
            let e = self.as_counts.entry(k).or_insert((0, 0));
            e.0 += v.0;
            e.1 += v.1;
        }
        for (a, b) in self.country_hour.iter_mut().zip(other.country_hour) {
            for (x, y) in a.iter_mut().zip(b) {
                x.0 += y.0;
                x.1 += y.1;
            }
        }
        for (a, b) in self.sig_hour.iter_mut().zip(other.sig_hour) {
            for i in 0..19 {
                a[i] += b[i];
            }
        }
        for (a, b) in self.hour_totals.iter_mut().zip(other.hour_totals) {
            *a += b;
        }
        for (a, b) in self.country_ipver.iter_mut().zip(other.country_ipver) {
            for i in 0..2 {
                a[i].0 += b[i].0;
                a[i].1 += b[i].1;
            }
        }
        for (a, b) in self.country_proto.iter_mut().zip(other.country_proto) {
            for i in 0..2 {
                a[i].0 += b[i].0;
                a[i].1 += b[i].1;
            }
        }
        for (k, v) in other.domain_cells {
            // tamperlint: allow(unbounded-growth) — merge unions the same finite (country, domain) key space
            let e = self.domain_cells.entry(k).or_default();
            e.seen += v.seen;
            e.psh_tampered += v.psh_tampered;
        }
        for (a, b) in self.ipid_res.iter_mut().zip(&other.ipid_res) {
            a.merge(b);
        }
        for (a, b) in self.ttl_res.iter_mut().zip(&other.ttl_res) {
            a.merge(b);
        }
        self.ipid_flows += other.ipid_flows;
        self.ipid_min_le1 += other.ipid_min_le1;
        self.ipid_min_gt100 += other.ipid_min_gt100;
        self.ttl_flows += other.ttl_flows;
        self.ttl_max_le1 += other.ttl_max_le1;
        self.syn_rst_total += other.syn_rst_total;
        self.syn_rst_zmap += other.syn_rst_zmap;
        self.no_opt_flows += other.no_opt_flows;
        self.high_ttl_flows += other.high_ttl_flows;
        self.port80_flows += other.port80_flows;
        self.port80_syn_payload += other.port80_syn_payload;
        self.port443_flows += other.port443_flows;
        self.port443_syn_payload += other.port443_syn_payload;
        for (k, v) in other.syn_payload_domains {
            // tamperlint: allow(unbounded-growth) — merge unions the same fixed monitored-domain key space
            *self.syn_payload_domains.entry(k).or_default() += v;
        }
        self.truth.true_positive += other.truth.true_positive;
        self.truth.false_negative += other.truth.false_negative;
        self.truth.false_positive += other.truth.false_positive;
        self.truth.true_negative += other.truth.true_negative;
        self.truth.matched_signature += other.truth.matched_signature;
        self.postdata_matches += other.postdata_matches;
        self.postdata_fw_ua += other.postdata_fw_ua;
        for (a, b) in self
            .benign_attribution
            .iter_mut()
            .zip(other.benign_attribution)
        {
            for i in 0..N_CLASSES {
                a[i] += b[i];
            }
        }
        for (k, v) in other.pair_seqs {
            self.pair_seqs.entry(k).or_default().merge(&v);
        }
        // Re-cap after the union: lowest-K of a union of lowest-Ks is the
        // lowest-K of the union, so merge order cannot change the result.
        while self.pair_seqs.len() > PAIR_KEY_CAP {
            self.pair_seqs.pop_last();
        }
    }

    /// Global count for a signature.
    pub fn signature_total(&self, sig: Signature) -> u64 {
        self.country_class.iter().map(|c| c[sig.index()]).sum()
    }

    /// Per-country totals over all classes.
    pub fn country_total(&self, country: usize) -> u64 {
        self.country_class[country].iter().sum()
    }

    /// Per-country count of flows matching any signature.
    pub fn country_matched(&self, country: usize) -> u64 {
        self.country_class[country][..19].iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reservoir_keeps_lowest_k_in_canonical_order() {
        let mut r: Reservoir<u32> = Reservoir::new();
        // Insert priorities high-to-low; only the lowest RESERVOIR_CAP stay.
        for p in (0..(RESERVOIR_CAP as u64 + 500)).rev() {
            r.insert(p, (p % 7) as u32);
        }
        assert_eq!(r.len(), RESERVOIR_CAP);
        let pris: Vec<u64> = r.entries().iter().map(|e| e.0).collect();
        assert!(pris.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(pris.first(), Some(&0));
        assert_eq!(pris.last(), Some(&(RESERVOIR_CAP as u64 - 1)));
    }

    #[test]
    fn reservoir_merge_is_order_insensitive() {
        let samples: Vec<(u64, u32)> = (0..3000u64)
            .map(|i| (splitmix64(i), (i % 101) as u32))
            .collect();
        // One-shot fold.
        let mut whole: Reservoir<u32> = Reservoir::new();
        for &(p, v) in &samples {
            whole.insert(p, v);
        }
        // Three partitions merged in reverse order.
        let mut parts: Vec<Reservoir<u32>> = vec![Reservoir::new(); 3];
        for (i, &(p, v)) in samples.iter().enumerate() {
            parts[i % 3].insert(p, v);
        }
        let mut merged = Reservoir::new();
        for part in parts.iter().rev() {
            merged.merge(part);
        }
        assert_eq!(whole, merged);
    }

    #[test]
    fn pair_seq_keeps_time_order_and_caps() {
        let mut s = PairSeq::default();
        for i in (0..20u64).rev() {
            s.insert(i, splitmix64(i), (i % 9) as u8);
        }
        assert_eq!(s.len(), PAIR_SEQ_CAP);
        let ts: Vec<u64> = s.entries().iter().map(|e| e.0).collect();
        assert_eq!(ts, (0..PAIR_SEQ_CAP as u64).collect::<Vec<_>>());
    }
}
