//! The `.agg` on-disk format: a versioned, length-prefixed binary
//! encoding of one [`PartialAggregate`], written by `tamperscope
//! pop-run` and read back by `tamperscope merge`.
//!
//! Layout (all integers big-endian, matching the wire crate):
//!
//! ```text
//! magic    4 bytes  "TAGG"
//! version  u16      AGG_FORMAT_VERSION
//! fprint   u64      config fingerprint (merge compatibility gate)
//! body_len u64      exact byte length of the body that follows
//! body     ...      shape header, counters, tables, reservoirs
//! ```
//!
//! Decoding is fail-closed in the `wire::Reader` discipline: every read
//! is bounds-checked, every length is validated against its cap before
//! use, ordered tables must arrive strictly sorted (the canonical form
//! `encode` emits), and any violation is a named [`AggError`] — never a
//! panic, no matter the bytes. The never-panic property is enforced by
//! proptests in `tests/properties.rs` and this module sits inside the
//! tamperlint `panic`/`index`/untrusted-length scopes.

use std::collections::BTreeMap;

use tamper_core::ClassifierConfig;
use tamper_wire::{Reader, WireError};

use crate::agg::{
    DomainCell, PairSeq, PartialAggregate, Reservoir, TruthStats, N_CLASSES, PAIR_SEQ_CAP,
    RESERVOIR_CAP,
};

/// File magic: "TAGG".
pub const AGG_MAGIC: [u8; 4] = *b"TAGG";
/// Current format version.
pub const AGG_FORMAT_VERSION: u16 = 1;

/// Named decode/merge failures; each maps to CLI exit 2 with a message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggError {
    /// The file does not start with the `.agg` magic.
    BadMagic,
    /// The file's format version is newer than this build understands.
    UnsupportedVersion(u16),
    /// Partials were produced under different configurations (classifier
    /// knobs, world shape, or workload salt) and must not be merged.
    ConfigMismatch,
    /// The input ended before the structure it promised.
    Truncated,
    /// The bytes violate a structural invariant of the format.
    Malformed(&'static str),
}

impl std::fmt::Display for AggError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AggError::BadMagic => write!(f, "not a .agg file (bad magic)"),
            AggError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported .agg format version {v} (this build reads {AGG_FORMAT_VERSION})"
                )
            }
            AggError::ConfigMismatch => {
                write!(f, "config fingerprint mismatch: partials are not mergeable")
            }
            AggError::Truncated => write!(f, "truncated .agg input"),
            AggError::Malformed(what) => write!(f, "malformed .agg input: {what}"),
        }
    }
}

impl std::error::Error for AggError {}

impl From<WireError> for AggError {
    fn from(e: WireError) -> AggError {
        match e {
            WireError::Truncated => AggError::Truncated,
            _ => AggError::Malformed("wire-level error"),
        }
    }
}

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_be_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_be_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_be_bytes());
}

/// Encode one partial aggregate into the `.agg` byte format. The output
/// is canonical: equal aggregates encode to equal bytes.
pub fn encode(agg: &PartialAggregate) -> Vec<u8> {
    let mut body = Vec::new();

    // Shape header.
    put_u64(&mut body, agg.cfg.inactivity_secs);
    body.push(u8::from(agg.cfg.split_rst_counts));
    put_u32(&mut body, agg.n_countries() as u32);
    put_u32(&mut body, agg.hours() as u32);
    put_u64(&mut body, agg.start_unix());

    // Scalars.
    put_u64(&mut body, agg.total);
    put_u64(&mut body, agg.possibly_tampered);
    for v in agg.stage_counts {
        put_u64(&mut body, v);
    }
    for v in agg.stage_matched {
        put_u64(&mut body, v);
    }

    // Dense tables.
    for row in &agg.country_class {
        for v in row {
            put_u64(&mut body, *v);
        }
    }
    put_u32(&mut body, agg.as_counts.len() as u32);
    for (&(country, asn), &(total, matched)) in &agg.as_counts {
        put_u16(&mut body, country);
        put_u32(&mut body, asn);
        put_u64(&mut body, total);
        put_u64(&mut body, matched);
    }
    for row in &agg.country_hour {
        for &(total, matched) in row {
            put_u32(&mut body, total);
            put_u32(&mut body, matched);
        }
    }
    for row in &agg.sig_hour {
        for v in row {
            put_u32(&mut body, *v);
        }
    }
    for v in &agg.hour_totals {
        put_u32(&mut body, *v);
    }
    for row in &agg.country_ipver {
        for &(total, matched) in row {
            put_u64(&mut body, total);
            put_u64(&mut body, matched);
        }
    }
    for row in &agg.country_proto {
        for &(total, matched) in row {
            put_u64(&mut body, total);
            put_u64(&mut body, matched);
        }
    }
    put_u32(&mut body, agg.domain_cells.len() as u32);
    for (&(country, domain), cell) in &agg.domain_cells {
        put_u16(&mut body, country);
        put_u32(&mut body, domain);
        put_u32(&mut body, cell.seen);
        put_u32(&mut body, cell.psh_tampered);
    }

    // Reservoirs: canonical (priority, value) entries, sorted ascending.
    for res in &agg.ipid_res {
        put_u32(&mut body, res.len() as u32);
        for &(pri, v) in res.entries() {
            put_u64(&mut body, pri);
            put_u32(&mut body, v);
        }
    }
    for res in &agg.ttl_res {
        put_u32(&mut body, res.len() as u32);
        for &(pri, v) in res.entries() {
            put_u64(&mut body, pri);
            put_u16(&mut body, v as u16);
        }
    }

    // Baseline and scanner counters.
    for v in [
        agg.ipid_flows,
        agg.ipid_min_le1,
        agg.ipid_min_gt100,
        agg.ttl_flows,
        agg.ttl_max_le1,
        agg.syn_rst_total,
        agg.syn_rst_zmap,
        agg.no_opt_flows,
        agg.high_ttl_flows,
        agg.port80_flows,
        agg.port80_syn_payload,
        agg.port443_flows,
        agg.port443_syn_payload,
    ] {
        put_u64(&mut body, v);
    }
    put_u32(&mut body, agg.syn_payload_domains.len() as u32);
    for (&domain, &count) in &agg.syn_payload_domains {
        put_u32(&mut body, domain);
        put_u32(&mut body, count);
    }
    put_u64(&mut body, agg.postdata_matches);
    put_u64(&mut body, agg.postdata_fw_ua);
    for v in [
        agg.truth.true_positive,
        agg.truth.false_negative,
        agg.truth.false_positive,
        agg.truth.true_negative,
        agg.truth.matched_signature,
    ] {
        put_u64(&mut body, v);
    }

    put_u32(&mut body, agg.benign_attribution.len() as u32);
    for row in &agg.benign_attribution {
        for v in row {
            put_u64(&mut body, *v);
        }
    }

    put_u32(&mut body, agg.pair_seqs.len() as u32);
    for (&(ip, domain), seq) in &agg.pair_seqs {
        put_u64(&mut body, ip);
        put_u32(&mut body, domain);
        body.push(seq.len() as u8);
        for &(ts, tie, code) in seq.entries() {
            put_u64(&mut body, ts);
            put_u64(&mut body, tie);
            body.push(code);
        }
    }

    let mut out = Vec::with_capacity(4 + 2 + 8 + 8 + body.len());
    out.extend_from_slice(&AGG_MAGIC);
    put_u16(&mut out, AGG_FORMAT_VERSION);
    put_u64(&mut out, agg.fingerprint());
    put_u64(&mut out, body.len() as u64);
    out.extend_from_slice(&body);
    out
}

/// Read `n` `u64` values into a fixed array without indexing.
fn fill_u64<const N: usize>(r: &mut Reader) -> Result<[u64; N], AggError> {
    let mut out = [0u64; N];
    for slot in out.iter_mut() {
        *slot = r.u64()?;
    }
    Ok(out)
}

fn read_u32_row<const N: usize>(r: &mut Reader) -> Result<[u32; N], AggError> {
    let mut out = [0u32; N];
    for slot in out.iter_mut() {
        *slot = r.u32()?;
    }
    Ok(out)
}

fn read_pairs_u32(r: &mut Reader, n: usize) -> Result<Vec<(u32, u32)>, AggError> {
    let mut out = Vec::new();
    for _ in 0..n {
        let a = r.u32()?;
        let b = r.u32()?;
        out.push((a, b));
    }
    Ok(out)
}

fn read_pairs2_u64(r: &mut Reader) -> Result<[(u64, u64); 2], AggError> {
    let mut out = [(0u64, 0u64); 2];
    for slot in out.iter_mut() {
        let a = r.u64()?;
        let b = r.u64()?;
        *slot = (a, b);
    }
    Ok(out)
}

fn read_ipid_reservoir(r: &mut Reader) -> Result<Reservoir<u32>, AggError> {
    let n = r.u32()? as usize;
    if n > RESERVOIR_CAP {
        return Err(AggError::Malformed("reservoir over capacity"));
    }
    let mut entries = Vec::new();
    for _ in 0..n {
        let pri = r.u64()?;
        let v = r.u32()?;
        if let Some(last) = entries.last() {
            if *last >= (pri, v) {
                return Err(AggError::Malformed("reservoir entries out of order"));
            }
        }
        entries.push((pri, v));
    }
    Ok(Reservoir::from_entries(entries))
}

fn read_ttl_reservoir(r: &mut Reader) -> Result<Reservoir<i16>, AggError> {
    let n = r.u32()? as usize;
    if n > RESERVOIR_CAP {
        return Err(AggError::Malformed("reservoir over capacity"));
    }
    let mut entries = Vec::new();
    for _ in 0..n {
        let pri = r.u64()?;
        let v = r.u16()? as i16;
        if let Some(last) = entries.last() {
            if *last >= (pri, v) {
                return Err(AggError::Malformed("reservoir entries out of order"));
            }
        }
        entries.push((pri, v));
    }
    Ok(Reservoir::from_entries(entries))
}

/// Decode one `.agg` buffer, fail-closed. Returns the partial aggregate
/// with the fingerprint the producer stamped into the header; callers
/// that merge must compare fingerprints (see
/// [`merge_checked`]).
pub fn decode(bytes: &[u8]) -> Result<PartialAggregate, AggError> {
    let mut r = Reader::new(bytes);
    if r.array::<4>().map_err(|_| AggError::BadMagic)? != AGG_MAGIC {
        return Err(AggError::BadMagic);
    }
    let version = r.u16()?;
    if version != AGG_FORMAT_VERSION {
        return Err(AggError::UnsupportedVersion(version));
    }
    let fingerprint = r.u64()?;
    let body_len = r.u64()?;
    if body_len != r.remaining() as u64 {
        return Err(AggError::Truncated);
    }

    // Shape header.
    let inactivity_secs = r.u64()?;
    let split_rst_counts = match r.u8()? {
        0 => false,
        1 => true,
        _ => return Err(AggError::Malformed("bad bool")),
    };
    let cfg = ClassifierConfig {
        inactivity_secs,
        split_rst_counts,
    };
    let n_countries = r.u32()? as usize;
    let hours = r.u32()? as usize;
    let start_unix = r.u64()?;

    let total = r.u64()?;
    let possibly_tampered = r.u64()?;
    let stage_counts: [u64; 5] = fill_u64(&mut r)?;
    let stage_matched: [u64; 5] = fill_u64(&mut r)?;

    let mut country_class = Vec::new();
    for _ in 0..n_countries {
        country_class.push(fill_u64::<N_CLASSES>(&mut r)?);
    }

    let n_as = r.u32()? as usize;
    let mut as_counts: BTreeMap<(u16, u32), (u64, u64)> = BTreeMap::new();
    for _ in 0..n_as {
        let country = r.u16()?;
        let asn = r.u32()?;
        let t = r.u64()?;
        let m = r.u64()?;
        let key = (country, asn);
        if let Some((last, _)) = as_counts.last_key_value() {
            if *last >= key {
                return Err(AggError::Malformed("as_counts keys out of order"));
            }
        }
        as_counts.insert(key, (t, m));
    }

    let mut country_hour = Vec::new();
    for _ in 0..n_countries {
        country_hour.push(read_pairs_u32(&mut r, hours)?);
    }
    let mut sig_hour = Vec::new();
    for _ in 0..hours {
        sig_hour.push(read_u32_row::<19>(&mut r)?);
    }
    let mut hour_totals = Vec::new();
    for _ in 0..hours {
        hour_totals.push(r.u32()?);
    }
    let mut country_ipver = Vec::new();
    for _ in 0..n_countries {
        country_ipver.push(read_pairs2_u64(&mut r)?);
    }
    let mut country_proto = Vec::new();
    for _ in 0..n_countries {
        country_proto.push(read_pairs2_u64(&mut r)?);
    }

    let n_cells = r.u32()? as usize;
    let mut domain_cells: BTreeMap<(u16, u32), DomainCell> = BTreeMap::new();
    for _ in 0..n_cells {
        let country = r.u16()?;
        let domain = r.u32()?;
        let seen = r.u32()?;
        let psh_tampered = r.u32()?;
        let key = (country, domain);
        if let Some((last, _)) = domain_cells.last_key_value() {
            if *last >= key {
                return Err(AggError::Malformed("domain_cells keys out of order"));
            }
        }
        domain_cells.insert(key, DomainCell { seen, psh_tampered });
    }

    let mut ipid_res = Vec::new();
    for _ in 0..20 {
        ipid_res.push(read_ipid_reservoir(&mut r)?);
    }
    let mut ttl_res = Vec::new();
    for _ in 0..20 {
        ttl_res.push(read_ttl_reservoir(&mut r)?);
    }

    let [ipid_flows, ipid_min_le1, ipid_min_gt100, ttl_flows, ttl_max_le1, syn_rst_total, syn_rst_zmap, no_opt_flows, high_ttl_flows, port80_flows, port80_syn_payload, port443_flows, port443_syn_payload] =
        fill_u64::<13>(&mut r)?;

    let n_spd = r.u32()? as usize;
    let mut syn_payload_domains: BTreeMap<u32, u32> = BTreeMap::new();
    for _ in 0..n_spd {
        let domain = r.u32()?;
        let count = r.u32()?;
        if let Some((last, _)) = syn_payload_domains.last_key_value() {
            if *last >= domain {
                return Err(AggError::Malformed("syn_payload_domains out of order"));
            }
        }
        syn_payload_domains.insert(domain, count);
    }

    let postdata_matches = r.u64()?;
    let postdata_fw_ua = r.u64()?;
    let [true_positive, false_negative, false_positive, true_negative, matched_signature] =
        fill_u64::<5>(&mut r)?;
    let truth = TruthStats {
        true_positive,
        false_negative,
        false_positive,
        true_negative,
        matched_signature,
    };

    let n_kinds = r.u32()? as usize;
    if n_kinds != tamper_worldgen::BenignKind::ALL.len() {
        return Err(AggError::Malformed("benign-kind count mismatch"));
    }
    let mut benign_attribution = Vec::new();
    for _ in 0..n_kinds {
        benign_attribution.push(fill_u64::<N_CLASSES>(&mut r)?);
    }

    let n_pairs = r.u32()? as usize;
    let mut pair_seqs: BTreeMap<(u64, u32), PairSeq> = BTreeMap::new();
    for _ in 0..n_pairs {
        let ip = r.u64()?;
        let domain = r.u32()?;
        let key = (ip, domain);
        if let Some((last, _)) = pair_seqs.last_key_value() {
            if *last >= key {
                return Err(AggError::Malformed("pair_seqs keys out of order"));
            }
        }
        let n = r.u8()? as usize;
        if n > PAIR_SEQ_CAP {
            return Err(AggError::Malformed("pair sequence over capacity"));
        }
        let mut entries = Vec::new();
        for _ in 0..n {
            let ts = r.u64()?;
            let tie = r.u64()?;
            let code = r.u8()?;
            if let Some(last) = entries.last() {
                if *last >= (ts, tie, code) {
                    return Err(AggError::Malformed("pair sequence out of order"));
                }
            }
            entries.push((ts, tie, code));
        }
        pair_seqs.insert(key, PairSeq::from_entries(entries));
    }

    if !r.is_empty() {
        return Err(AggError::Malformed("trailing bytes after body"));
    }

    let mut agg = PartialAggregate::new(cfg, n_countries, 0, start_unix);
    agg.hours = hours;
    agg.fingerprint = fingerprint;
    agg.total = total;
    agg.possibly_tampered = possibly_tampered;
    agg.stage_counts = stage_counts;
    agg.stage_matched = stage_matched;
    agg.country_class = country_class;
    agg.as_counts = as_counts;
    agg.country_hour = country_hour;
    agg.sig_hour = sig_hour;
    agg.hour_totals = hour_totals;
    agg.country_ipver = country_ipver;
    agg.country_proto = country_proto;
    agg.domain_cells = domain_cells;
    agg.ipid_res = ipid_res;
    agg.ttl_res = ttl_res;
    agg.ipid_flows = ipid_flows;
    agg.ipid_min_le1 = ipid_min_le1;
    agg.ipid_min_gt100 = ipid_min_gt100;
    agg.ttl_flows = ttl_flows;
    agg.ttl_max_le1 = ttl_max_le1;
    agg.syn_rst_total = syn_rst_total;
    agg.syn_rst_zmap = syn_rst_zmap;
    agg.no_opt_flows = no_opt_flows;
    agg.high_ttl_flows = high_ttl_flows;
    agg.port80_flows = port80_flows;
    agg.port80_syn_payload = port80_syn_payload;
    agg.port443_flows = port443_flows;
    agg.port443_syn_payload = port443_syn_payload;
    agg.syn_payload_domains = syn_payload_domains;
    agg.postdata_matches = postdata_matches;
    agg.postdata_fw_ua = postdata_fw_ua;
    agg.truth = truth;
    agg.benign_attribution = benign_attribution;
    agg.pair_seqs = pair_seqs;
    Ok(agg)
}

/// Merge `other` into `acc` after checking fingerprint compatibility;
/// the fallible front door for decoded partials (the CLI path).
pub fn merge_checked(acc: &mut PartialAggregate, other: PartialAggregate) -> Result<(), AggError> {
    if acc.fingerprint() != other.fingerprint() {
        return Err(AggError::ConfigMismatch);
    }
    if acc.n_countries() != other.n_countries()
        || acc.hours() != other.hours()
        || acc.start_unix() != other.start_unix()
    {
        return Err(AggError::ConfigMismatch);
    }
    acc.merge(other);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> PartialAggregate {
        let mut agg = PartialAggregate::new(ClassifierConfig::default(), 3, 1, 1_663_027_200);
        agg.total = 42;
        agg.possibly_tampered = 7;
        agg.country_class[1][2] = 5;
        agg.as_counts.insert((1, 13335), (10, 2));
        agg.domain_cells.insert(
            (2, 9),
            DomainCell {
                seen: 4,
                psh_tampered: 1,
            },
        );
        agg.ipid_res[19].insert(11, 100);
        agg.ipid_res[19].insert(5, 7);
        agg.ttl_res[0].insert(3, -4);
        agg.syn_payload_domains.insert(8, 3);
        agg.truth.true_positive = 6;
        agg.benign_attribution[2][3] = 9;
        let seq = agg.pair_seqs.entry((77, 8)).or_default();
        seq.insert(1000, 2, 1);
        seq.insert(900, 1, 0);
        agg
    }

    #[test]
    fn round_trip_preserves_bytes() {
        let agg = sample();
        let bytes = encode(&agg);
        let back = decode(&bytes).unwrap();
        assert_eq!(encode(&back), bytes);
        assert_eq!(back.total, 42);
        assert_eq!(back.fingerprint(), agg.fingerprint());
        assert_eq!(back.pair_seqs.len(), 1);
    }

    #[test]
    fn truncation_at_every_length_is_a_named_error() {
        let bytes = encode(&sample());
        for cut in 0..bytes.len() {
            match decode(&bytes[..cut]) {
                Err(_) => {}
                Ok(_) => panic!("decode of {cut}-byte prefix unexpectedly succeeded"),
            }
        }
    }

    #[test]
    fn bad_magic_and_future_version_are_named() {
        let mut bytes = encode(&sample());
        let mut wrong = bytes.clone();
        wrong[0] = b'X';
        match decode(&wrong) {
            Err(AggError::BadMagic) => {}
            other => panic!("expected BadMagic, got {:?}", other.err()),
        }
        bytes[4] = 0xFF; // version hi byte
        match decode(&bytes) {
            Err(AggError::UnsupportedVersion(v)) => assert_eq!(v, 0xFF01),
            other => panic!("expected UnsupportedVersion, got {:?}", other.err()),
        }
    }

    #[test]
    fn merge_checked_rejects_mismatched_fingerprints() {
        let mut a = sample();
        let b = PartialAggregate::with_salt(ClassifierConfig::default(), 3, 1, 1_663_027_200, 99);
        match merge_checked(&mut a, b) {
            Err(AggError::ConfigMismatch) => {}
            other => panic!("expected ConfigMismatch, got {other:?}"),
        }
    }
}
