//! Plain-text table formatting for reports.

/// A simple aligned text table.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with the given column headers.
    pub fn new<I: IntoIterator<Item = S>, S: Into<String>>(header: I) -> Table {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (padded/truncated to the header width).
    pub fn row<I: IntoIterator<Item = S>, S: Into<String>>(&mut self, cells: I) {
        let mut row: Vec<String> = cells.into_iter().map(Into::into).collect();
        row.resize(self.header.len(), String::new());
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with column alignment (display-width aware enough for the
    /// signature glyphs used in labels).
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let width = |s: &str| s.chars().count();
        let mut widths: Vec<usize> = self.header.iter().map(|h| width(h)).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(ncols) {
                widths[i] = widths[i].max(width(cell));
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(cell);
                let pad = widths[i].saturating_sub(width(cell));
                if i + 1 < cells.len() {
                    line.extend(std::iter::repeat_n(' ', pad));
                }
            }
            line
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Format a ratio as a percentage string.
pub fn pct(num: u64, den: u64) -> String {
    if den == 0 {
        return "-".to_owned();
    }
    format!("{:.1}%", 100.0 * num as f64 / den as f64)
}

/// Format a fraction (0..1) as a percentage string.
pub fn pct_f(f: f64) -> String {
    if f.is_nan() {
        return "-".to_owned();
    }
    format!("{:.1}%", 100.0 * f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(["name", "count"]);
        t.row(["a", "1"]);
        t.row(["longer-name", "23456"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].starts_with("---"));
        assert!(lines[3].starts_with("longer-name"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = Table::new(["a", "b", "c"]);
        t.row(["only-one"]);
        let s = t.render();
        assert!(s.contains("only-one"));
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(1, 4), "25.0%");
        assert_eq!(pct(0, 0), "-");
        assert_eq!(pct_f(0.123), "12.3%");
        assert_eq!(pct_f(f64::NAN), "-");
    }
}
