//! The streaming statistics collector: one pass over labeled flows feeds
//! every table and figure of the paper.
//!
//! The collector is now a thin classification driver: it runs each flow
//! through the sans-IO `tamper-core` classifier and folds the result
//! into the [`PartialAggregate`] it owns — the pure, serializable
//! aggregation layer in [`crate::agg`]. Reads pass through via `Deref`,
//! so downstream code sees the same counters it always did; the
//! aggregate itself can be encoded to a `.agg` file
//! ([`crate::aggfile`]) and merged across PoPs without losing
//! byte-equality with a single-machine run.

use std::ops::{Deref, DerefMut};

use tamper_core::{ClassifierConfig, FlowAnalysis, FlowMachine};
use tamper_worldgen::LabeledFlow;

use crate::agg::PartialAggregate;

/// The collector: a [`FlowMachine`] driving a [`PartialAggregate`].
pub struct Collector {
    agg: PartialAggregate,
    /// The sans-IO classifier this collector drives in [`Collector::observe`];
    /// carries the scratch buffers so per-flow classification stays
    /// allocation-free across the whole run.
    machine: FlowMachine,
}

impl Collector {
    /// Create a collector for a world of `n_countries` over `days`.
    pub fn new(cfg: ClassifierConfig, n_countries: usize, days: u32, start_unix: u64) -> Collector {
        Collector::with_salt(cfg, n_countries, days, start_unix, 0)
    }

    /// Create a collector whose aggregate carries a workload-identity
    /// salt in its config fingerprint (per-PoP runs; 0 for
    /// single-machine runs).
    pub fn with_salt(
        cfg: ClassifierConfig,
        n_countries: usize,
        days: u32,
        start_unix: u64,
        world_salt: u64,
    ) -> Collector {
        Collector {
            agg: PartialAggregate::with_salt(cfg, n_countries, days, start_unix, world_salt),
            machine: FlowMachine::new(cfg),
        }
    }

    /// Classify and record one flow (through the sans-IO [`FlowMachine`];
    /// differentially tested against the legacy classifier in
    /// `tests/state_machine.rs`).
    pub fn observe(&mut self, lf: &LabeledFlow) {
        let analysis = self.machine.analyze(&lf.flow);
        self.agg.record(lf, &analysis);
    }

    /// Record a flow that was already classified.
    pub fn observe_analyzed(&mut self, lf: &LabeledFlow, a: &FlowAnalysis) {
        self.agg.record(lf, a);
    }

    /// Merge another collector (same configuration) into this one.
    pub fn merge(&mut self, other: Collector) {
        self.agg.merge(other.agg);
    }

    /// Borrow the aggregate this collector folds into.
    pub fn partial(&self) -> &PartialAggregate {
        &self.agg
    }

    /// Take the aggregate out of the collector (serialization path).
    pub fn into_partial(self) -> PartialAggregate {
        self.agg
    }
}

impl Deref for Collector {
    type Target = PartialAggregate;

    fn deref(&self) -> &PartialAggregate {
        &self.agg
    }
}

impl DerefMut for Collector {
    fn deref_mut(&mut self) -> &mut PartialAggregate {
        &mut self.agg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agg::RESERVOIR_CAP;
    use tamper_worldgen::{WorldConfig, WorldSim};

    fn run_collect(sessions: u64) -> (Collector, WorldSim) {
        let sim = WorldSim::new(WorldConfig {
            sessions,
            catalog_size: 600,
            days: 2,
            ..Default::default()
        });
        let mut col = Collector::new(
            ClassifierConfig::default(),
            sim.world().len(),
            2,
            sim.config().start_unix,
        );
        sim.run(|lf| col.observe(&lf));
        (col, sim)
    }

    #[test]
    fn totals_are_consistent() {
        let (col, _) = run_collect(3000);
        assert!(col.total >= 2900);
        let class_sum: u64 = col.country_class.iter().flat_map(|c| c.iter()).sum();
        assert_eq!(class_sum, col.total);
        let stage_sum: u64 = col.stage_counts.iter().sum();
        assert_eq!(stage_sum, col.possibly_tampered);
        assert!(col.possibly_tampered > 0);
        assert!(col.possibly_tampered < col.total);
    }

    #[test]
    fn merge_equals_single_pass() {
        let sim = WorldSim::new(WorldConfig {
            sessions: 2000,
            catalog_size: 600,
            days: 2,
            ..Default::default()
        });
        let mk = || {
            Collector::new(
                ClassifierConfig::default(),
                sim.world().len(),
                2,
                sim.config().start_unix,
            )
        };
        let mut serial = mk();
        sim.run(|lf| serial.observe(&lf));
        let sharded = sim.run_sharded(4, mk, |c, lf| c.observe(&lf), |a, b| a.merge(b));
        assert_eq!(serial.total, sharded.total);
        assert_eq!(serial.possibly_tampered, sharded.possibly_tampered);
        assert_eq!(serial.country_class, sharded.country_class);
        assert_eq!(serial.stage_counts, sharded.stage_counts);
        assert_eq!(serial.truth.true_positive, sharded.truth.true_positive);
    }

    #[test]
    fn merge_is_order_insensitive_for_reservoirs() {
        // The satellite regression for the old `append`+`truncate` merge:
        // fold the same world into 4 partials, merge them in two opposite
        // orders, and require *identical* reservoirs (and pair
        // sequences), not just identical counters.
        let sim = WorldSim::new(WorldConfig {
            sessions: 4000,
            catalog_size: 600,
            days: 2,
            ..Default::default()
        });
        let mk = || {
            Collector::new(
                ClassifierConfig::default(),
                sim.world().len(),
                2,
                sim.config().start_unix,
            )
        };
        let mut parts: Vec<Collector> = (0..4).map(|_| mk()).collect();
        let mut i = 0usize;
        sim.run(|lf| {
            parts[i % 4].observe(&lf);
            i += 1;
        });
        let partials: Vec<_> = parts.into_iter().map(|c| c.into_partial()).collect();

        let merge_in = |order: &[usize]| {
            let mut acc = mk().into_partial();
            for &j in order {
                let mut one = mk().into_partial();
                one.merge(clone_partial(&partials[j]));
                acc.merge(one);
            }
            acc
        };
        let fwd = merge_in(&[0, 1, 2, 3]);
        let rev = merge_in(&[3, 1, 0, 2]);
        assert_eq!(fwd.ipid_res, rev.ipid_res);
        assert_eq!(fwd.ttl_res, rev.ttl_res);
        assert_eq!(fwd.pair_seqs, rev.pair_seqs);
        assert_eq!(crate::aggfile::encode(&fwd), crate::aggfile::encode(&rev));
    }

    /// Partial aggregates are deliberately not `Clone` in the public API;
    /// tests rebuild one through the codec.
    fn clone_partial(agg: &PartialAggregate) -> PartialAggregate {
        crate::aggfile::decode(&crate::aggfile::encode(agg)).expect("round trip")
    }

    #[test]
    fn recall_is_high_precision_is_partial() {
        let (col, _) = run_collect(6000);
        assert!(col.truth.recall() > 0.9, "recall {}", col.truth.recall());
        // Benign anomalies mean precision must be well below 1.
        assert!(col.truth.precision() < 0.9);
        assert!(col.truth.precision() > 0.1);
    }

    #[test]
    fn reservoirs_fill_for_common_signatures() {
        let (col, _) = run_collect(6000);
        // The Not-Tampering reservoir certainly fills.
        assert!(!col.ipid_res[19].is_empty());
        assert!(!col.ttl_res[19].is_empty());
        assert!(col.ipid_res[19].len() <= RESERVOIR_CAP);
        // Baselines: the vast majority of flows have tiny min IP-ID deltas.
        assert!(col.ipid_min_le1 as f64 / col.ipid_flows as f64 > 0.85);
    }

    #[test]
    fn syn_payload_counters_track_port80() {
        let (col, _) = run_collect(6000);
        assert!(col.port80_flows > 0);
        let share = col.port80_syn_payload as f64 / col.port80_flows as f64;
        assert!(share > 0.1, "syn payload share {share}");
        assert_eq!(col.port443_syn_payload, 0);
    }

    #[test]
    fn pair_sequences_accumulate() {
        let (col, _) = run_collect(8000);
        assert!(!col.pair_seqs.is_empty());
        let repeats = col.pair_seqs.values().filter(|v| v.len() >= 2).count();
        assert!(repeats > 0, "no repeated (ip, domain) pairs observed");
    }
}
