//! The paper's reported numbers, as named constants — the single source
//! for calibration targets, EXPERIMENTS.md comparisons, and the
//! paper-vs-measured table printed by `global_report`.
//!
//! All values are from "Global, Passive Detection of Connection Tampering"
//! (SIGCOMM 2023), §4–§5.

/// §4.1: share of all connections that are possibly tampered.
pub const POSSIBLY_TAMPERED: f64 = 0.257;

/// §4.1: stage shares of possibly-tampered connections
/// (Post-SYN, Post-ACK, Post-PSH, Post-Data, other).
pub const STAGE_SHARES: [f64; 5] = [0.432, 0.161, 0.053, 0.330, 0.023];

/// §4.1: signature coverage within each stage.
pub const STAGE_COVERAGE: [f64; 4] = [0.995, 0.987, 0.979, 0.692];

/// §4.1: overall coverage of the 19 signatures.
pub const TOTAL_COVERAGE: f64 = 0.869;

/// §5.1: Turkmenistan's share of connections matching any signature.
pub const TM_MATCH_RATE: f64 = 0.84;

/// §5.1: share of TM's tampered connections that are `⟨SYN; ACK → RST⟩`.
pub const TM_ACK_RST_SHARE: f64 = 0.664;

/// §5.1: Peru's match rate.
pub const PE_MATCH_RATE: f64 = 0.539;

/// §5.1: Mexico's match rate.
pub const MX_MATCH_RATE: f64 = 0.301;

/// §5.3: IPv4-vs-IPv6 regression slope (Figure 7a).
pub const V4_V6_SLOPE: f64 = 0.92;

/// §5.3: TLS-vs-HTTP regression slope (Figure 7b).
pub const TLS_HTTP_SLOPE: f64 = 0.3;

/// §4.2: share of `⟨SYN → RST⟩` matches attributable to ZMap.
pub const ZMAP_SHARE_OF_SYN_RST: f64 = 0.01;

/// §4.1: share of port-80 SYNs carrying an HTTP payload (2023-01-17).
pub const PORT80_SYN_PAYLOAD: f64 = 0.38;

/// §4.1: share of those payloads going to the top four domains.
pub const SYN_PAYLOAD_TOP4: f64 = 0.93;

/// §4.3: share of connections with min consecutive |ΔIP-ID| ≤ 1.
pub const IPID_MIN_LE1: f64 = 0.934;

/// §4.3: share of connections with min consecutive |ΔIP-ID| > 100.
pub const IPID_MIN_GT100: f64 = 0.042;

/// One paper-vs-measured comparison row.
#[derive(Debug, Clone)]
pub struct Comparison {
    /// What is being compared.
    pub statistic: &'static str,
    /// The paper's value.
    pub paper: f64,
    /// Our measured value.
    pub measured: f64,
}

impl Comparison {
    /// Ratio of measured to paper value (NaN when paper value is 0).
    pub fn ratio(&self) -> f64 {
        self.measured / self.paper
    }
}

/// Compute the headline paper-vs-measured comparisons from a collector.
pub fn comparisons(col: &crate::Collector) -> Vec<Comparison> {
    let pt = col.possibly_tampered as f64 / col.total.max(1) as f64;
    let mut rows = vec![Comparison {
        statistic: "possibly tampered share",
        paper: POSSIBLY_TAMPERED,
        measured: pt,
    }];
    let stage_names = [
        "Post-SYN stage share",
        "Post-ACK stage share",
        "Post-PSH stage share",
        "Post-Data stage share",
        "other-sequence share",
    ];
    for (i, name) in stage_names.iter().enumerate() {
        rows.push(Comparison {
            statistic: name,
            paper: STAGE_SHARES[i],
            measured: col.stage_counts[i] as f64 / col.possibly_tampered.max(1) as f64,
        });
    }
    let cov_names = [
        "Post-SYN coverage",
        "Post-ACK coverage",
        "Post-PSH coverage",
        "Post-Data coverage",
    ];
    for (i, name) in cov_names.iter().enumerate() {
        rows.push(Comparison {
            statistic: name,
            paper: STAGE_COVERAGE[i],
            measured: col.stage_matched[i] as f64 / col.stage_counts[i].max(1) as f64,
        });
    }
    rows.push(Comparison {
        statistic: "overall signature coverage",
        paper: TOTAL_COVERAGE,
        measured: col.stage_matched.iter().sum::<u64>() as f64
            / col.possibly_tampered.max(1) as f64,
    });
    rows.push(Comparison {
        statistic: "min |ΔIP-ID| ≤ 1 share",
        paper: IPID_MIN_LE1,
        measured: col.ipid_min_le1 as f64 / col.ipid_flows.max(1) as f64,
    });
    rows.push(Comparison {
        statistic: "min |ΔIP-ID| > 100 share",
        paper: IPID_MIN_GT100,
        measured: col.ipid_min_gt100 as f64 / col.ipid_flows.max(1) as f64,
    });
    rows.push(Comparison {
        statistic: "top-4 share of SYN payloads",
        paper: SYN_PAYLOAD_TOP4,
        measured: {
            let mut counts: Vec<u32> = col.syn_payload_domains.values().copied().collect();
            counts.sort_unstable_by_key(|c| std::cmp::Reverse(*c));
            let top4: u32 = counts.iter().take(4).sum();
            let all: u32 = counts.iter().sum();
            f64::from(top4) / f64::from(all.max(1))
        },
    });
    rows
}

/// Render the comparison table.
pub fn comparison_table(col: &crate::Collector) -> String {
    let mut t = crate::Table::new(["Statistic", "Paper", "Measured", "Ratio"]);
    for c in comparisons(col) {
        t.row([
            c.statistic.to_owned(),
            crate::pct_f(c.paper),
            crate::pct_f(c.measured),
            format!("{:.2}", c.ratio()),
        ]);
    }
    format!("Paper vs. measured (headline statistics)\n\n{}", t.render())
}

#[cfg(test)]
mod tests {
    use super::*;
    use tamper_core::ClassifierConfig;
    use tamper_worldgen::{WorldConfig, WorldSim};

    #[test]
    fn stage_constants_sum_to_one() {
        let s: f64 = STAGE_SHARES.iter().sum();
        assert!((s - 0.999).abs() < 0.01, "sum {s}");
    }

    #[test]
    fn comparison_ratios_near_unity_on_a_real_run() {
        let sim = WorldSim::new(WorldConfig {
            sessions: 30_000,
            days: 2,
            catalog_size: 1000,
            ..Default::default()
        });
        let mut col = crate::Collector::new(
            ClassifierConfig::default(),
            sim.world().len(),
            2,
            sim.config().start_unix,
        );
        sim.run(|lf| col.observe(&lf));
        let rows = comparisons(&col);
        assert!(rows.len() >= 12);
        // The headline ratios must sit in a broad unity band — this is the
        // automated "shape holds" check.
        for c in &rows {
            if c.paper >= 0.05 {
                assert!(
                    (0.5..2.0).contains(&c.ratio()),
                    "{}: paper {} measured {}",
                    c.statistic,
                    c.paper,
                    c.measured
                );
            }
        }
        let table = comparison_table(&col);
        assert!(table.contains("possibly tampered share"));
        assert!(table.contains("Ratio"));
    }
}
