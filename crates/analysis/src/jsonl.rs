//! Minimal JSON-lines emission for classified flows — hand-rolled (the
//! workspace deliberately avoids a JSON dependency; the structures are
//! small and flat).
//!
//! One line per flow, stable field order, suitable for `jq`, BigQuery
//! loads, or the paper's own aggregation pipelines.

use crate::fmt::pct_f;
use tamper_capture::FlowRecord;
use tamper_core::{
    max_rst_ipid_delta, max_rst_ttl_delta, AppProtocol, Classification, FlowAnalysis,
};

/// Escape a string per RFC 8259.
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Incremental single-line JSON object writer.
///
/// ```
/// use tamper_analysis::JsonObject;
/// let line = JsonObject::new().str("k", "v\"x").uint("n", 3).finish();
/// assert_eq!(line, "{\"k\":\"v\\\"x\",\"n\":3}");
/// ```
#[derive(Debug, Default)]
pub struct JsonObject {
    body: String,
}

impl JsonObject {
    /// Start an empty object.
    pub fn new() -> JsonObject {
        JsonObject::default()
    }

    fn sep(&mut self) {
        if !self.body.is_empty() {
            self.body.push(',');
        }
    }

    /// Add a string field.
    pub fn str(mut self, key: &str, value: &str) -> JsonObject {
        self.sep();
        self.body.push_str(&format!(
            "\"{}\":\"{}\"",
            escape_json(key),
            escape_json(value)
        ));
        self
    }

    /// Add an optional string field (`null` when absent).
    pub fn opt_str(self, key: &str, value: Option<&str>) -> JsonObject {
        match value {
            Some(v) => self.str(key, v),
            None => self.null(key),
        }
    }

    /// Add an integer field.
    pub fn int(mut self, key: &str, value: i64) -> JsonObject {
        self.sep();
        self.body
            .push_str(&format!("\"{}\":{value}", escape_json(key)));
        self
    }

    /// Add an unsigned field.
    pub fn uint(mut self, key: &str, value: u64) -> JsonObject {
        self.sep();
        self.body
            .push_str(&format!("\"{}\":{value}", escape_json(key)));
        self
    }

    /// Add a float field (NaN/∞ become `null`; negative zero is
    /// normalized).
    pub fn float(mut self, key: &str, value: f64) -> JsonObject {
        self.sep();
        let value = if value == 0.0 { 0.0 } else { value };
        if value.is_finite() {
            self.body
                .push_str(&format!("\"{}\":{value}", escape_json(key)));
        } else {
            self.body
                .push_str(&format!("\"{}\":null", escape_json(key)));
        }
        self
    }

    /// Add a boolean field.
    pub fn bool(mut self, key: &str, value: bool) -> JsonObject {
        self.sep();
        self.body
            .push_str(&format!("\"{}\":{value}", escape_json(key)));
        self
    }

    /// Add a pre-serialized JSON value verbatim (nested objects/arrays).
    pub fn raw(mut self, key: &str, value: &str) -> JsonObject {
        self.sep();
        self.body
            .push_str(&format!("\"{}\":{value}", escape_json(key)));
        self
    }

    /// Add an explicit null.
    pub fn null(mut self, key: &str) -> JsonObject {
        self.sep();
        self.body
            .push_str(&format!("\"{}\":null", escape_json(key)));
        self
    }

    /// Finish: the `{...}` line.
    pub fn finish(self) -> String {
        format!("{{{}}}", self.body)
    }
}

/// Serialize one classified flow as a JSON line.
pub fn flow_to_jsonl(flow: &FlowRecord, analysis: &FlowAnalysis) -> String {
    let (verdict, signature) = match analysis.classification {
        Classification::Tampered(sig) => ("tampered", Some(sig.label())),
        Classification::PossiblyTamperedOther => ("possibly_tampered", None),
        Classification::NotTampered => ("not_tampered", None),
    };
    let protocol = match analysis.trigger.protocol {
        AppProtocol::Tls => "tls",
        AppProtocol::Http => "http",
        AppProtocol::Other => "other",
    };
    let mut obj = JsonObject::new()
        .str("client_ip", &flow.client_ip.to_string())
        .str("server_ip", &flow.server_ip.to_string())
        .uint("src_port", u64::from(flow.src_port))
        .uint("dst_port", u64::from(flow.dst_port))
        .uint("packets", flow.packets.len() as u64)
        .bool("truncated", flow.truncated)
        .str("verdict", verdict)
        .opt_str("signature", signature)
        .opt_str("stage", analysis.stage.map(|s| s.label()))
        .str("protocol", protocol)
        .opt_str("trigger_domain", analysis.trigger.domain.as_deref())
        .uint("rst_count", analysis.rst_count as u64)
        .uint("rst_ack_count", analysis.rst_ack_count as u64);
    obj = match max_rst_ipid_delta(flow) {
        Some(d) => obj.uint("max_rst_ipid_delta", u64::from(d)),
        None => obj.null("max_rst_ipid_delta"),
    };
    obj = match max_rst_ttl_delta(flow) {
        Some(d) => obj.int("max_rst_ttl_delta", i64::from(d)),
        None => obj.null("max_rst_ttl_delta"),
    };
    obj.finish()
}

/// A compact JSON summary of a collector run (headline statistics).
/// Takes the aggregate layer directly; a `&Collector` coerces via deref.
pub fn summary_to_json(col: &crate::PartialAggregate) -> String {
    JsonObject::new()
        .uint("total_flows", col.total)
        .uint("possibly_tampered", col.possibly_tampered)
        .str(
            "possibly_tampered_pct",
            &pct_f(col.possibly_tampered as f64 / col.total.max(1) as f64),
        )
        .float("recall", col.truth.recall())
        .float("precision", col.truth.precision())
        .finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use std::net::{IpAddr, Ipv4Addr};
    use tamper_capture::PacketRecord;
    use tamper_core::{classify, ClassifierConfig};
    use tamper_wire::TcpFlags;

    #[test]
    fn escaping_covers_specials() {
        assert_eq!(escape_json("a\"b"), "a\\\"b");
        assert_eq!(escape_json("a\\b"), "a\\\\b");
        assert_eq!(escape_json("a\nb"), "a\\nb");
        assert_eq!(escape_json("tab\there"), "tab\\there");
        assert_eq!(escape_json("\u{1}"), "\\u0001");
        assert_eq!(escape_json("unicode ∅ ok"), "unicode ∅ ok");
    }

    #[test]
    fn object_builder_layout() {
        let line = JsonObject::new()
            .str("a", "x")
            .int("b", -3)
            .uint("c", 7)
            .bool("d", true)
            .null("e")
            .float("f", 0.5)
            .float("g", f64::NAN)
            .finish();
        assert_eq!(
            line,
            "{\"a\":\"x\",\"b\":-3,\"c\":7,\"d\":true,\"e\":null,\"f\":0.5,\"g\":null}"
        );
    }

    #[test]
    fn flow_line_round_trips_key_fields() {
        let flow = FlowRecord {
            client_ip: IpAddr::V4(Ipv4Addr::new(203, 0, 113, 4)),
            server_ip: IpAddr::V4(Ipv4Addr::new(198, 51, 100, 1)),
            src_port: 40000,
            dst_port: 443,
            packets: vec![
                PacketRecord {
                    ts_sec: 0,
                    flags: TcpFlags::SYN,
                    seq: 1,
                    ack: 0,
                    ip_id: Some(5),
                    ttl: 52,
                    window: 65535,
                    payload_len: 0,
                    payload: Bytes::new(),
                    has_tcp_options: true,
                },
                PacketRecord {
                    ts_sec: 0,
                    flags: TcpFlags::RST,
                    seq: 2,
                    ack: 0,
                    ip_id: Some(40_000),
                    ttl: 101,
                    window: 0,
                    payload_len: 0,
                    payload: Bytes::new(),
                    has_tcp_options: false,
                },
            ],
            observation_end_sec: 40,
            truncated: false,
        };
        let a = classify(&flow, &ClassifierConfig::default());
        let line = flow_to_jsonl(&flow, &a);
        assert!(line.starts_with('{') && line.ends_with('}'));
        assert!(line.contains("\"verdict\":\"tampered\""));
        assert!(line.contains("⟨SYN → RST⟩"));
        assert!(line.contains("\"max_rst_ipid_delta\":39995"));
        assert!(line.contains("\"max_rst_ttl_delta\":49"));
        assert!(!line.contains('\n'));
    }
}
