//! Metrics emission: render a [`tamper_obs::Snapshot`] as one JSON
//! document, reusing the workspace's hand-rolled [`crate::jsonl`] writer.
//!
//! The document is a single line — `{"kind":"metrics","scopes":[...]}` —
//! written to its own file (`--metrics-json`), never interleaved with
//! verdict lines or the byte-compared summary. Scope and instrument order
//! come pre-sorted from [`tamper_obs::Registry::snapshot`], so two runs
//! that record the same instruments differ only in measured values.

use crate::jsonl::JsonObject;
use tamper_obs::{Histogram, ScopeSnapshot, Snapshot, TimerStat};

fn uint_map(entries: &[(String, u64)]) -> String {
    let mut obj = JsonObject::new();
    for (name, v) in entries {
        obj = obj.uint(name, *v);
    }
    obj.finish()
}

fn timer_map(entries: &[(String, TimerStat)]) -> String {
    let mut obj = JsonObject::new();
    for (name, t) in entries {
        let body = JsonObject::new()
            .uint("count", t.count)
            .uint("total_ns", t.total_ns)
            .finish();
        obj = obj.raw(name, &body);
    }
    obj.finish()
}

fn uint_array(values: impl Iterator<Item = u64>) -> String {
    let mut out = String::from("[");
    for (i, v) in values.enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&v.to_string());
    }
    out.push(']');
    out
}

fn histogram_map(entries: &[(String, Histogram)]) -> String {
    let mut obj = JsonObject::new();
    for (name, h) in entries {
        let body = JsonObject::new()
            .raw("bounds_ns", &uint_array(h.bounds.iter().copied()))
            .raw("counts", &uint_array(h.counts.iter().copied()))
            .uint("count", h.count)
            .uint("total", h.total)
            .uint("max", h.max)
            .finish();
        obj = obj.raw(name, &body);
    }
    obj.finish()
}

fn scope_to_json(s: &ScopeSnapshot) -> String {
    JsonObject::new()
        .str("scope", &s.scope)
        .raw("counters", &uint_map(&s.counters))
        .raw("gauges", &uint_map(&s.gauges))
        .raw("timers", &timer_map(&s.timers))
        .raw("histograms", &histogram_map(&s.histograms))
        .finish()
}

/// Serialize a metrics snapshot as one JSON line.
pub fn metrics_to_json(snap: &Snapshot) -> String {
    let mut scopes = String::from("[");
    for (i, s) in snap.scopes.iter().enumerate() {
        if i > 0 {
            scopes.push(',');
        }
        scopes.push_str(&scope_to_json(s));
    }
    scopes.push(']');
    JsonObject::new()
        .str("kind", "metrics")
        .uint(
            "flows_closed",
            snap.counter_sum("shard", "flows_closed") + snap.counter_sum("offline", "flows_closed"),
        )
        .raw("scopes", &scopes)
        .finish()
}

/// Write a metrics snapshot to `path` as one JSON line (plus a trailing
/// newline).
pub fn write_metrics_json(path: &str, snap: &Snapshot) -> std::io::Result<()> {
    let mut line = metrics_to_json(snap);
    line.push('\n');
    std::fs::write(path, line)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tamper_obs::Registry;

    fn sample_registry() -> Registry {
        let reg = Registry::new();
        let mut sh = reg.scope("shard0");
        sh.count("records", 10);
        sh.count("flows_closed", 4);
        sh.record_timer("parse", 1_000);
        sh.record_hist("classify_latency_ns", 750);
        sh.record_hist("classify_latency_ns", 2_000_000);
        reg.publish(sh);
        let mut m = reg.scope("merge");
        m.gauge_set("threads", 2);
        m.gauge_max("max_live_flows", 3);
        reg.publish(m);
        reg
    }

    #[test]
    fn document_shape_is_one_line_with_sorted_scopes() {
        let line = metrics_to_json(&sample_registry().snapshot());
        assert!(!line.contains('\n'));
        assert!(line.starts_with("{\"kind\":\"metrics\""));
        assert!(line.contains("\"flows_closed\":4"));
        let merge_at = line.find("\"scope\":\"merge\"").unwrap();
        let shard_at = line.find("\"scope\":\"shard0\"").unwrap();
        assert!(merge_at < shard_at, "scopes must arrive pre-sorted");
        assert!(line.contains("\"parse\":{\"count\":1,\"total_ns\":1000}"));
        assert!(line.contains("\"bounds_ns\":[500,1000,"));
    }

    #[test]
    fn document_parses_with_the_workspace_json_parser() {
        let line = metrics_to_json(&sample_registry().snapshot());
        let doc = tamper_worldgen::json::Json::parse(&line).expect("self-emitted JSON must parse");
        assert_eq!(doc.get("kind").and_then(|v| v.as_str()), Some("metrics"));
        assert_eq!(doc.get("flows_closed").and_then(|v| v.as_u64()), Some(4));
        let scopes = doc.get("scopes").and_then(|v| v.as_array()).unwrap();
        assert_eq!(scopes.len(), 2);
        let shard = &scopes[1];
        assert_eq!(
            shard
                .get("counters")
                .and_then(|c| c.get("records"))
                .and_then(|v| v.as_u64()),
            Some(10)
        );
        let hist = shard
            .get("histograms")
            .and_then(|h| h.get("classify_latency_ns"))
            .unwrap();
        assert_eq!(hist.get("count").and_then(|v| v.as_u64()), Some(2));
    }
}
