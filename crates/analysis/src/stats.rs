//! Small numeric helpers: empirical CDFs and regression slopes.

/// An empirical CDF over f64 samples.
///
/// ```
/// use tamper_analysis::Cdf;
/// let cdf = Cdf::new([1.0, 2.0, 2.0, 10.0]);
/// assert_eq!(cdf.at(2.0), 0.75);
/// assert_eq!(cdf.quantile(0.5), 2.0);
/// ```
#[derive(Debug, Clone)]
pub struct Cdf {
    sorted: Vec<f64>,
}

impl Cdf {
    /// Build from samples (NaNs are dropped).
    pub fn new<I: IntoIterator<Item = f64>>(samples: I) -> Cdf {
        let mut sorted: Vec<f64> = samples.into_iter().filter(|x| x.is_finite()).collect();
        sorted.sort_by(|a, b| a.total_cmp(b));
        Cdf { sorted }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// P(X ≤ x).
    pub fn at(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return f64::NAN;
        }
        let idx = self.sorted.partition_point(|v| *v <= x);
        idx as f64 / self.sorted.len() as f64
    }

    /// Quantile q in [0, 1].
    pub fn quantile(&self, q: f64) -> f64 {
        if self.sorted.is_empty() {
            return f64::NAN;
        }
        let idx = ((q * self.sorted.len() as f64).ceil() as usize).clamp(1, self.sorted.len()) - 1;
        self.sorted[idx]
    }

    /// Evaluate at a set of points, yielding (x, F(x)) pairs.
    pub fn evaluate(&self, points: &[f64]) -> Vec<(f64, f64)> {
        points.iter().map(|&x| (x, self.at(x))).collect()
    }
}

/// Least-squares slope of y on x **through the origin** — the comparison
/// statistic the paper reports for Figures 7(a) and 7(b).
pub fn slope_through_origin(points: &[(f64, f64)]) -> f64 {
    let (mut sxy, mut sxx) = (0.0, 0.0);
    for &(x, y) in points {
        if x.is_finite() && y.is_finite() {
            sxy += x * y;
            sxx += x * x;
        }
    }
    if sxx == 0.0 {
        f64::NAN
    } else {
        sxy / sxx
    }
}

/// Ordinary least-squares slope with intercept, for robustness checks.
pub fn ols_slope(points: &[(f64, f64)]) -> f64 {
    let n = points.len() as f64;
    if points.is_empty() {
        return f64::NAN;
    }
    let mx = points.iter().map(|p| p.0).sum::<f64>() / n;
    let my = points.iter().map(|p| p.1).sum::<f64>() / n;
    let (mut sxy, mut sxx) = (0.0, 0.0);
    for &(x, y) in points {
        sxy += (x - mx) * (y - my);
        sxx += (x - mx) * (x - mx);
    }
    if sxx == 0.0 {
        f64::NAN
    } else {
        sxy / sxx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdf_basics() {
        let c = Cdf::new([1.0, 2.0, 3.0, 4.0]);
        assert_eq!(c.len(), 4);
        assert!((c.at(2.0) - 0.5).abs() < 1e-9);
        assert!((c.at(0.5) - 0.0).abs() < 1e-9);
        assert!((c.at(10.0) - 1.0).abs() < 1e-9);
        assert_eq!(c.quantile(0.5), 2.0);
        assert_eq!(c.quantile(1.0), 4.0);
    }

    #[test]
    fn cdf_empty_and_nan() {
        let c = Cdf::new([f64::NAN]);
        assert!(c.is_empty());
        assert!(c.at(1.0).is_nan());
    }

    #[test]
    fn origin_slope_recovers_proportionality() {
        let pts: Vec<(f64, f64)> = (1..20).map(|i| (i as f64, 0.92 * i as f64)).collect();
        assert!((slope_through_origin(&pts) - 0.92).abs() < 1e-9);
    }

    #[test]
    fn ols_slope_with_offset() {
        let pts: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, 3.0 + 0.5 * i as f64)).collect();
        assert!((ols_slope(&pts) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn degenerate_slopes_are_nan() {
        assert!(slope_through_origin(&[]).is_nan());
        assert!(ols_slope(&[(1.0, 1.0)]).is_nan());
    }
}
