//! The read side of the aggregation layer: a thin, figure-oriented view
//! over one [`PartialAggregate`].
//!
//! The report generators consume sample *values* (CDF inputs, Fig 10
//! class sequences); the aggregate stores them with their merge keys
//! (priorities, timestamps). [`ReportView`] materializes the value form
//! once, so the ~20 generators in [`crate::report`] stay simple and the
//! aggregate stays canonical. Everything else passes through via
//! `Deref`, so a view reads like the collector always did.

use std::ops::Deref;

use crate::agg::PartialAggregate;

/// Borrowed, figure-oriented view over a [`PartialAggregate`].
pub struct ReportView<'a> {
    agg: &'a PartialAggregate,
    /// IP-ID delta samples per class, in canonical reservoir order.
    pub ipid_samples: Vec<Vec<u32>>,
    /// TTL delta samples per class, in canonical reservoir order.
    pub ttl_samples: Vec<Vec<i16>>,
    /// Per-(ip, domain) Post-PSH class codes in time order, iterated in
    /// key order — the Fig 10 input.
    pub pair_codes: Vec<Vec<u8>>,
}

impl<'a> ReportView<'a> {
    /// Materialize the sample vectors for one aggregate.
    pub fn new(agg: &'a PartialAggregate) -> ReportView<'a> {
        ReportView {
            agg,
            ipid_samples: agg.ipid_res.iter().map(|r| r.values().collect()).collect(),
            ttl_samples: agg.ttl_res.iter().map(|r| r.values().collect()).collect(),
            pair_codes: agg
                .pair_seqs
                .values()
                .map(|s| s.codes().collect())
                .collect(),
        }
    }
}

impl Deref for ReportView<'_> {
    type Target = PartialAggregate;

    fn deref(&self) -> &PartialAggregate {
        self.agg
    }
}

impl PartialAggregate {
    /// Figure-oriented view over this aggregate.
    pub fn view(&self) -> ReportView<'_> {
        ReportView::new(self)
    }
}
