#![warn(missing_docs)]

//! # tamper-analysis
//!
//! Aggregation and reporting: a single-pass streaming [`Collector`] keyed
//! the way the paper aggregates (country, AS, signature, hour, category,
//! domain, IP version, protocol), plus one generator per paper artifact
//! (Table 1–3, Figures 1–10, the §4 validation numbers) in [`report`].
//!
//! The aggregation state itself lives in [`agg::PartialAggregate`] — a
//! pure, serializable, *mergeable* layer (exact counter sums plus
//! deterministic keep-lowest-k reservoirs), encoded to `.agg` files by
//! [`aggfile`] and read by the generators through [`view::ReportView`].
//! N per-PoP partials merged in any order reproduce the single-machine
//! report byte-for-byte.

pub mod agg;
pub mod aggfile;
pub mod capture;
pub mod collector;
pub mod fmt;
pub mod jsonl;
pub mod metrics;
pub mod paper;
pub mod report;
pub mod stats;
pub mod view;

pub use agg::{
    class_code_label, config_fingerprint, flow_priority, postpsh_class_code, DomainCell, PairSeq,
    PartialAggregate, Reservoir, TruthStats, CLASS_NOT_TAMPERED, CLASS_OTHER, N_CLASSES,
    PAIR_SEQ_CAP, RESERVOIR_CAP,
};
pub use aggfile::{decode as decode_agg, encode as encode_agg, merge_checked, AggError};
pub use capture::{
    capture_collector, capture_summary_to_json, engine_perf_to_json, label_capture_flow,
};
pub use collector::Collector;
pub use fmt::{pct, pct_f, Table};
pub use jsonl::{escape_json, flow_to_jsonl, summary_to_json, JsonObject};
pub use metrics::{metrics_to_json, write_metrics_json};
pub use paper::{comparison_table, comparisons, Comparison};
pub use stats::{ols_slope, slope_through_origin, Cdf};
pub use tamper_worldgen::TestList;
pub use view::ReportView;
