//! Report determinism: the artifact generators must be pure functions of
//! the flow *multiset*, never of map iteration order or insertion order.
//!
//! Before the collector moved to `BTreeMap`, two collectors holding
//! identical counts could render different reports: `HashMap` iteration
//! order differs per map instance (each gets its own `RandomState`), and
//! that order leaked through stable-sort ties in e.g. Figure 5's per-AS
//! table. These tests pin the fix.

use tamper_analysis::{report, Collector};
use tamper_core::ClassifierConfig;
use tamper_netsim::splitmix64;
use tamper_worldgen::{generate_lists, LabeledFlow, WorldConfig, WorldSim};

fn sim() -> WorldSim {
    WorldSim::new(WorldConfig {
        sessions: 4_000,
        days: 2,
        catalog_size: 600,
        ..Default::default()
    })
}

fn collect_flows(sim: &WorldSim) -> Vec<LabeledFlow> {
    let mut flows = Vec::new();
    sim.run(|lf| flows.push(lf));
    flows
}

fn collector_for(sim: &WorldSim) -> Collector {
    Collector::new(
        ClassifierConfig::default(),
        sim.world().len(),
        2,
        sim.config().start_unix,
    )
}

/// Deterministic Fisher–Yates driven by splitmix64, so the "shuffled"
/// insertion order is reproducible across runs.
fn shuffle(flows: &mut [LabeledFlow], seed: u64) {
    let mut state = seed;
    for i in (1..flows.len()).rev() {
        state = splitmix64(state);
        let j = (state % (i as u64 + 1)) as usize;
        flows.swap(i, j);
    }
}

/// Two collectors fed the *same* flows in the *same* order must render
/// byte-identical full reports. With per-instance hasher seeds this was
/// not guaranteed; with ordered maps it is.
#[test]
fn identical_runs_render_identical_reports() {
    let sim = sim();
    let flows = collect_flows(&sim);
    let lists = generate_lists(&sim);

    let mut a = collector_for(&sim);
    let mut b = collector_for(&sim);
    for lf in &flows {
        a.observe(lf);
        b.observe(lf);
    }
    assert_eq!(
        report::full_report(&a.view(), &sim, &lists),
        report::full_report(&b.view(), &sim, &lists),
        "same flows, same order, different report bytes"
    );
}

/// Feeding the same flow multiset in a shuffled order must not change the
/// report. Counters are pure aggregates; since the mergeable-reservoir
/// refactor the evidence reservoirs and repeat-pair sequences are
/// canonical keep-lowest-k sets keyed by flow identity, so even Figures
/// 2/3/10 are insertion-order-insensitive and the *full* report must be
/// byte-identical.
#[test]
fn shuffled_insertion_order_renders_identical_reports() {
    let sim = sim();
    let flows = collect_flows(&sim);
    let lists = generate_lists(&sim);

    let mut ordered = collector_for(&sim);
    for lf in &flows {
        ordered.observe(lf);
    }

    let mut shuffled_flows = flows.clone();
    shuffle(&mut shuffled_flows, 0x5eed_cafe);
    assert!(shuffled_flows.iter().zip(&flows).any(
        |(a, b)| a.meta.start_unix != b.meta.start_unix || a.flow.client_ip != b.flow.client_ip
    ));
    let mut shuffled = collector_for(&sim);
    for lf in &shuffled_flows {
        shuffled.observe(lf);
    }

    assert_eq!(
        report::full_report(&ordered.view(), &sim, &lists),
        report::full_report(&shuffled.view(), &sim, &lists),
        "full report depends on flow insertion order"
    );
    let render = |c: &Collector| {
        [
            ("table1", report::table1(&c.view())),
            ("fig1", report::fig1(&c.view(), &sim, 6)),
            ("fig5", report::fig5(&c.view(), &sim, 400)),
            ("fig2", report::fig2(&c.view())),
            ("fig3", report::fig3(&c.view())),
            ("fig10", report::fig10(&c.view())),
        ]
    };
    for ((name, a), (_, b)) in render(&ordered).iter().zip(render(&shuffled).iter()) {
        assert_eq!(a, b, "{name} depends on flow insertion order");
    }
}
