//! Report determinism: the artifact generators must be pure functions of
//! the flow *multiset*, never of map iteration order or insertion order.
//!
//! Before the collector moved to `BTreeMap`, two collectors holding
//! identical counts could render different reports: `HashMap` iteration
//! order differs per map instance (each gets its own `RandomState`), and
//! that order leaked through stable-sort ties in e.g. Figure 5's per-AS
//! table. These tests pin the fix.

use tamper_analysis::{report, Collector};
use tamper_core::ClassifierConfig;
use tamper_netsim::splitmix64;
use tamper_worldgen::{generate_lists, LabeledFlow, WorldConfig, WorldSim};

fn sim() -> WorldSim {
    WorldSim::new(WorldConfig {
        sessions: 4_000,
        days: 2,
        catalog_size: 600,
        ..Default::default()
    })
}

fn collect_flows(sim: &WorldSim) -> Vec<LabeledFlow> {
    let mut flows = Vec::new();
    sim.run(|lf| flows.push(lf));
    flows
}

fn collector_for(sim: &WorldSim) -> Collector {
    Collector::new(
        ClassifierConfig::default(),
        sim.world().len(),
        2,
        sim.config().start_unix,
    )
}

/// Deterministic Fisher–Yates driven by splitmix64, so the "shuffled"
/// insertion order is reproducible across runs.
fn shuffle(flows: &mut [LabeledFlow], seed: u64) {
    let mut state = seed;
    for i in (1..flows.len()).rev() {
        state = splitmix64(state);
        let j = (state % (i as u64 + 1)) as usize;
        flows.swap(i, j);
    }
}

/// Two collectors fed the *same* flows in the *same* order must render
/// byte-identical full reports. With per-instance hasher seeds this was
/// not guaranteed; with ordered maps it is.
#[test]
fn identical_runs_render_identical_reports() {
    let sim = sim();
    let flows = collect_flows(&sim);
    let lists = generate_lists(&sim);

    let mut a = collector_for(&sim);
    let mut b = collector_for(&sim);
    for lf in &flows {
        a.observe(lf);
        b.observe(lf);
    }
    assert_eq!(
        report::full_report(&a, &sim, &lists),
        report::full_report(&b, &sim, &lists),
        "same flows, same order, different report bytes"
    );
}

/// Feeding the same flow multiset in a shuffled order must not change any
/// count-based artifact. (Evidence reservoirs and repeat-pair sequences
/// are genuinely first-come collections, so Figures 2/3/10 are excluded —
/// everything else is a pure aggregate.)
#[test]
fn shuffled_insertion_order_renders_identical_aggregates() {
    let sim = sim();
    let flows = collect_flows(&sim);
    let lists = generate_lists(&sim);

    let mut ordered = collector_for(&sim);
    for lf in &flows {
        ordered.observe(lf);
    }

    let mut shuffled_flows = flows.clone();
    shuffle(&mut shuffled_flows, 0x5eed_cafe);
    assert!(shuffled_flows.iter().zip(&flows).any(
        |(a, b)| a.meta.start_unix != b.meta.start_unix || a.flow.client_ip != b.flow.client_ip
    ));
    let mut shuffled = collector_for(&sim);
    for lf in &shuffled_flows {
        shuffled.observe(lf);
    }

    let render = |c: &Collector| {
        [
            ("table1", report::table1(c)),
            ("fig1", report::fig1(c, &sim, 6)),
            ("fig4", report::fig4(c, &sim, 100)),
            ("fig5", report::fig5(c, &sim, 400)),
            ("fig7a", report::fig7a(c, &sim, 150)),
            ("fig7b", report::fig7b(c, &sim, 150)),
            ("table2", report::table2(c, &sim, 3)),
            ("table3", report::table3(c, &sim, &lists, 3)),
            ("validation", report::validation(c)),
        ]
    };
    for ((name, a), (_, b)) in render(&ordered).iter().zip(render(&shuffled).iter()) {
        assert_eq!(a, b, "{name} depends on flow insertion order");
    }
}
