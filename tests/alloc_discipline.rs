//! Allocation discipline: the steady-state analyze path must not touch
//! the heap. A warm [`FlowMachine`] replaying the golden corpus performs
//! **zero** allocations on every flow whose verdict carries no trigger
//! domain — the machine's scratch buffers (packets, order, rsts, dedup)
//! reuse capacity from earlier flows and payload `Bytes` clone by
//! refcount. Flows that *do* yield a domain pay exactly the waived
//! verdict-owned string and nothing else grows between passes.
//!
//! This is the runtime counterpart of tamperlint's static `hot-path-alloc`
//! rule: the lint proves no allocation *constructor* is reachable from the
//! hot roots, this test proves the surviving (waived, per-flow) sites
//! really amortize to zero once the machine is warm.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use tamperscope::capture::{
    run_engine, ClosedFlow, EngineConfig, FlowBatch, FlowTuple, OfflineConfig,
};
use tamperscope::core::{BatchClassifier, ClassifierConfig, FlowMachine};

/// A counting pass-through allocator: every heap request bumps a global
/// counter. Counting is process-wide, so measured sections must run with
/// no other live threads.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

/// The golden corpus as closed flows, in first-seen order.
fn golden_flows() -> Vec<ClosedFlow> {
    let bytes = std::fs::read(
        std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("tests")
            .join("fixtures")
            .join("golden.pcap"),
    )
    .expect("tests/fixtures/golden.pcap present");
    let cfg = EngineConfig {
        offline: OfflineConfig::default(),
        threads: 1,
        ..EngineConfig::default()
    };
    let (mut flows, _stats) = run_engine(
        bytes.as_slice(),
        &cfg,
        Vec::new,
        |sink: &mut Vec<ClosedFlow>, closed: ClosedFlow| sink.push(closed),
        |a, mut b| a.append(&mut b),
    )
    .expect("golden corpus replays");
    flows.sort_by_key(|cf| cf.first_index);
    assert!(!flows.is_empty(), "golden corpus yielded no flows");
    flows
}

#[test]
fn warm_machine_analyzes_the_golden_corpus_without_allocating() {
    let flows = golden_flows();
    let mut machine = FlowMachine::new(ClassifierConfig::default());

    // Warm pass: scratch buffers grow to the corpus' high-water marks
    // (and any engine worker threads are already joined by now). Record
    // which flows legitimately allocate a verdict-owned trigger domain.
    let mut warm_verdicts = Vec::with_capacity(flows.len());
    let mut has_domain = Vec::with_capacity(flows.len());
    for cf in &flows {
        let analysis = machine.analyze(&cf.flow);
        has_domain.push(analysis.trigger.domain.is_some());
        warm_verdicts.push(analysis.classification);
    }

    // Steady state: a second pass over the domain-free flows must not
    // allocate at all — those flows exercise the full parse/reorder/
    // classify path with zero heap traffic once the machine is warm.
    let measured: Vec<_> = flows
        .iter()
        .zip(&has_domain)
        .filter(|(_, d)| !**d)
        .map(|(cf, _)| cf)
        .collect();
    assert!(
        measured.len() >= flows.len() / 2,
        "expected most golden flows to be domain-free ({} of {})",
        measured.len(),
        flows.len()
    );
    let before = allocations();
    for cf in &measured {
        let analysis = machine.analyze(&cf.flow);
        assert!(
            analysis.trigger.domain.is_none(),
            "domain appeared on re-analysis"
        );
    }
    let after = allocations();
    assert_eq!(
        after - before,
        0,
        "steady-state FlowMachine::analyze allocated {} time(s) over {} domain-free flows",
        after - before,
        measured.len()
    );

    // Domain-bearing flows are bounded too: each re-analysis may allocate
    // only the verdict-owned host/SNI string (at most a handful of heap
    // requests per flow — never unbounded growth between passes).
    let domain_flows: Vec<_> = flows
        .iter()
        .zip(&has_domain)
        .filter(|(_, d)| **d)
        .map(|(cf, _)| cf)
        .collect();
    let before = allocations();
    for cf in &domain_flows {
        assert!(machine.analyze(&cf.flow).trigger.domain.is_some());
    }
    let after = allocations();
    let per_flow_budget = 4 * domain_flows.len() as u64;
    assert!(
        after - before <= per_flow_budget,
        "domain-bearing flows allocated {} time(s); budget {} ({} flows)",
        after - before,
        per_flow_budget,
        domain_flows.len()
    );

    // The measured pass produced the same verdicts the warm pass did.
    let verdicts: Vec<_> = flows
        .iter()
        .map(|cf| machine.analyze(&cf.flow).classification)
        .collect();
    assert_eq!(verdicts, warm_verdicts, "verdicts drifted between passes");
}

/// Pack closed flows into one columnar [`FlowBatch`], the shape the
/// batched engine hands to per-shard sinks.
fn batch_of(flows: &[&ClosedFlow]) -> FlowBatch {
    let mut batch = FlowBatch::new();
    for cf in flows {
        let start = batch.packet_count() as u32;
        for p in &cf.flow.packets {
            batch.push_packet(
                p.ts_sec,
                p.flags,
                p.seq,
                p.ack,
                p.ip_id,
                p.ttl,
                p.window,
                &p.payload,
                p.has_tcp_options,
            );
        }
        batch.push_flow(
            FlowTuple {
                client_ip: cf.flow.client_ip,
                server_ip: cf.flow.server_ip,
                src_port: cf.flow.src_port,
                dst_port: cf.flow.dst_port,
            },
            start,
            cf.first_index,
            cf.flow.observation_end_sec,
            cf.flow.truncated,
            cf.cause,
        );
    }
    batch
}

#[test]
fn warm_batch_classifier_processes_a_batch_without_allocating() {
    let flows = golden_flows();
    let mut machine = FlowMachine::new(ClassifierConfig::default());
    // Domain-bearing flows legitimately allocate their verdict-owned
    // host string; the zero-alloc guarantee covers everything else.
    let domain_free: Vec<&ClosedFlow> = flows
        .iter()
        .filter(|cf| machine.analyze(&cf.flow).trigger.domain.is_none())
        .collect();
    assert!(
        domain_free.len() >= flows.len() / 2,
        "expected most golden flows to be domain-free ({} of {})",
        domain_free.len(),
        flows.len()
    );
    let batch = batch_of(&domain_free);
    let mut clf = BatchClassifier::new(ClassifierConfig::default());

    // Warm pass: the classifier's scratch and output buffers grow to the
    // batch's high-water marks.
    let warm: Vec<_> = clf
        .classify_batch(&batch)
        .iter()
        .map(|a| a.classification)
        .collect();
    assert_eq!(warm.len(), domain_free.len());

    // Steady state: re-classifying a whole batch is allocation-free — the
    // engine's per-batch hot loop makes zero heap requests once warm.
    let before = allocations();
    let n = clf.classify_batch(&batch).len();
    let after = allocations();
    assert_eq!(n, domain_free.len());
    assert_eq!(
        after - before,
        0,
        "warm BatchClassifier::classify_batch allocated {} time(s) over a {}-flow batch",
        after - before,
        n
    );

    // And the batch path agrees with the per-flow machine, flow for flow.
    let again: Vec<_> = clf
        .classify_batch(&batch)
        .iter()
        .map(|a| a.classification)
        .collect();
    assert_eq!(again, warm, "verdicts drifted between batch passes");
}
