//! Allocation discipline: the steady-state analyze path must not touch
//! the heap. A warm [`FlowMachine`] replaying the golden corpus performs
//! **zero** allocations on every flow whose verdict carries no trigger
//! domain — the machine's scratch buffers (packets, order, rsts, dedup)
//! reuse capacity from earlier flows and payload `Bytes` clone by
//! refcount. Flows that *do* yield a domain pay exactly the waived
//! verdict-owned string and nothing else grows between passes.
//!
//! This is the runtime counterpart of tamperlint's static `hot-path-alloc`
//! rule: the lint proves no allocation *constructor* is reachable from the
//! hot roots, this test proves the surviving (waived, per-flow) sites
//! really amortize to zero once the machine is warm.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use tamperscope::capture::{run_engine, ClosedFlow, EngineConfig, OfflineConfig};
use tamperscope::core::{ClassifierConfig, FlowMachine};

/// A counting pass-through allocator: every heap request bumps a global
/// counter. Counting is process-wide, so measured sections must run with
/// no other live threads.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

/// The golden corpus as closed flows, in first-seen order.
fn golden_flows() -> Vec<ClosedFlow> {
    let bytes = std::fs::read(
        std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("tests")
            .join("fixtures")
            .join("golden.pcap"),
    )
    .expect("tests/fixtures/golden.pcap present");
    let cfg = EngineConfig {
        offline: OfflineConfig::default(),
        threads: 1,
        ..EngineConfig::default()
    };
    let (mut flows, _stats) = run_engine(
        bytes.as_slice(),
        &cfg,
        Vec::new,
        |sink: &mut Vec<ClosedFlow>, closed: ClosedFlow| sink.push(closed),
        |a, mut b| a.append(&mut b),
    )
    .expect("golden corpus replays");
    flows.sort_by_key(|cf| cf.first_index);
    assert!(!flows.is_empty(), "golden corpus yielded no flows");
    flows
}

#[test]
fn warm_machine_analyzes_the_golden_corpus_without_allocating() {
    let flows = golden_flows();
    let mut machine = FlowMachine::new(ClassifierConfig::default());

    // Warm pass: scratch buffers grow to the corpus' high-water marks
    // (and any engine worker threads are already joined by now). Record
    // which flows legitimately allocate a verdict-owned trigger domain.
    let mut warm_verdicts = Vec::with_capacity(flows.len());
    let mut has_domain = Vec::with_capacity(flows.len());
    for cf in &flows {
        let analysis = machine.analyze(&cf.flow);
        has_domain.push(analysis.trigger.domain.is_some());
        warm_verdicts.push(analysis.classification);
    }

    // Steady state: a second pass over the domain-free flows must not
    // allocate at all — those flows exercise the full parse/reorder/
    // classify path with zero heap traffic once the machine is warm.
    let measured: Vec<_> = flows
        .iter()
        .zip(&has_domain)
        .filter(|(_, d)| !**d)
        .map(|(cf, _)| cf)
        .collect();
    assert!(
        measured.len() >= flows.len() / 2,
        "expected most golden flows to be domain-free ({} of {})",
        measured.len(),
        flows.len()
    );
    let before = allocations();
    for cf in &measured {
        let analysis = machine.analyze(&cf.flow);
        assert!(
            analysis.trigger.domain.is_none(),
            "domain appeared on re-analysis"
        );
    }
    let after = allocations();
    assert_eq!(
        after - before,
        0,
        "steady-state FlowMachine::analyze allocated {} time(s) over {} domain-free flows",
        after - before,
        measured.len()
    );

    // Domain-bearing flows are bounded too: each re-analysis may allocate
    // only the verdict-owned host/SNI string (at most a handful of heap
    // requests per flow — never unbounded growth between passes).
    let domain_flows: Vec<_> = flows
        .iter()
        .zip(&has_domain)
        .filter(|(_, d)| **d)
        .map(|(cf, _)| cf)
        .collect();
    let before = allocations();
    for cf in &domain_flows {
        assert!(machine.analyze(&cf.flow).trigger.domain.is_some());
    }
    let after = allocations();
    let per_flow_budget = 4 * domain_flows.len() as u64;
    assert!(
        after - before <= per_flow_budget,
        "domain-bearing flows allocated {} time(s); budget {} ({} flows)",
        after - before,
        per_flow_budget,
        domain_flows.len()
    );

    // The measured pass produced the same verdicts the warm pass did.
    let verdicts: Vec<_> = flows
        .iter()
        .map(|cf| machine.analyze(&cf.flow).classification)
        .collect();
    assert_eq!(verdicts, warm_verdicts, "verdicts drifted between passes");
}
