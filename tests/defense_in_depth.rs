//! Multi-middlebox paths ("censorship-in-depth", as the paper's citations
//! describe for Iran): several boxes inspect the same flow; whichever
//! triggers first shapes the server-side signature, and ground truth
//! attributes the firing hop.

use std::net::{IpAddr, Ipv4Addr};
use tamper_capture::{collect, CollectorConfig};
use tamper_core::{classify, ClassifierConfig, Signature};
use tamper_middlebox::{RuleSet, Vendor};
use tamper_netsim::{
    derive_rng, run_session, ClientConfig, Link, Path, ServerConfig, SessionParams, SimDuration,
    SimTime,
};

const CLIENT: IpAddr = IpAddr::V4(Ipv4Addr::new(203, 0, 113, 44));
const SERVER: IpAddr = IpAddr::V4(Ipv4Addr::new(198, 51, 100, 1));

fn two_hop_path(first: Box<dyn tamper_netsim::Hop>, second: Box<dyn tamper_netsim::Hop>) -> Path {
    Path {
        links: vec![
            Link::new(SimDuration::from_millis(5), 2),
            Link::new(SimDuration::from_millis(15), 5),
            Link::new(SimDuration::from_millis(30), 7),
        ],
        hops: vec![first, second],
    }
}

#[test]
fn second_hop_fires_when_first_is_out_of_scope() {
    // Hop 0: IP blocker for a different destination. Hop 1: GFW-style
    // domain censor that does match.
    let mut ip_rules = RuleSet::default();
    ip_rules
        .blocked_ips
        .insert(IpAddr::V4(Ipv4Addr::new(192, 0, 2, 99)));
    let first = Vendor::SynDropAll.build(ip_rules);
    let second = Vendor::GfwDoubleRstAck.build(RuleSet::domains(["deep.example"]));

    let cfg = ClientConfig::default_tls(CLIENT, SERVER, "deep.example");
    let mut path = two_hop_path(Box::new(first), Box::new(second));
    let mut rng = derive_rng(61, 1);
    let trace = run_session(
        SessionParams::new(cfg, ServerConfig::default_edge(SERVER, 443), SimTime::ZERO),
        &mut path,
        &mut rng,
    );
    assert_eq!(trace.tamper_events.len(), 1);
    assert_eq!(trace.tamper_events[0].hop, 1, "the domain censor fired");
    let mut crng = derive_rng(61, 2);
    let flow = collect(&trace, &CollectorConfig::default(), &mut crng).unwrap();
    assert_eq!(
        classify(&flow, &ClassifierConfig::default()).signature(),
        Some(Signature::PshRstAckRstAck)
    );
}

#[test]
fn first_hop_preempts_the_second() {
    // Hop 0 black-holes the flow at the SYN; the GFW at hop 1 never sees
    // data and never fires.
    let first = Vendor::SynDropAll.build(RuleSet::blanket());
    let second = Vendor::GfwDoubleRstAck.build(RuleSet::domains(["deep.example"]));

    let cfg = ClientConfig::default_tls(CLIENT, SERVER, "deep.example");
    let mut path = two_hop_path(Box::new(first), Box::new(second));
    let mut rng = derive_rng(62, 1);
    let trace = run_session(
        SessionParams::new(cfg, ServerConfig::default_edge(SERVER, 443), SimTime::ZERO),
        &mut path,
        &mut rng,
    );
    assert_eq!(trace.tamper_events.len(), 1);
    assert_eq!(trace.tamper_events[0].hop, 0, "the IP blocker fired first");
    let mut crng = derive_rng(62, 2);
    let flow = collect(&trace, &CollectorConfig::default(), &mut crng).unwrap();
    assert_eq!(
        classify(&flow, &ClassifierConfig::default()).signature(),
        Some(Signature::SynNone),
        "SYN-stage drop masks the deeper censor entirely"
    );
}

#[test]
fn both_injectors_stack_their_bursts() {
    // Two on-path injectors for the same domain: the server receives both
    // bursts (1 bare RST + 2 RST+ACKs), which the classifier reads as the
    // mixed signature.
    let first = Vendor::PshRst.build(RuleSet::domains(["deep.example"]));
    let second = Vendor::GfwDoubleRstAck.build(RuleSet::domains(["deep.example"]));

    let cfg = ClientConfig::default_tls(CLIENT, SERVER, "deep.example");
    let mut path = two_hop_path(Box::new(first), Box::new(second));
    let mut rng = derive_rng(63, 1);
    let trace = run_session(
        SessionParams::new(cfg, ServerConfig::default_edge(SERVER, 443), SimTime::ZERO),
        &mut path,
        &mut rng,
    );
    assert_eq!(trace.tamper_events.len(), 2, "both censors fire");
    let mut crng = derive_rng(63, 2);
    let flow = collect(&trace, &CollectorConfig::default(), &mut crng).unwrap();
    let analysis = classify(&flow, &ClassifierConfig::default());
    assert_eq!(
        analysis.signature(),
        Some(Signature::PshRstRstAck),
        "stacked bursts look like the GFW's mixed teardown"
    );
    assert_eq!(analysis.rst_count, 1);
    assert!(analysis.rst_ack_count >= 2);
}
