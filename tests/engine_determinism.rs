//! The engine's headline guarantee: classify output is a pure function of
//! the capture bytes, not of the thread count. A synthesized capture runs
//! through the streaming engine at 1, 2, and 8 shards and through the
//! legacy buffered path; verdict lines, per-signature counts, and the
//! deterministic summary JSON must be byte-identical everywhere.

use std::net::{IpAddr, Ipv4Addr};

use tamperscope::analysis::{
    capture_collector, capture_summary_to_json, flow_to_jsonl, label_capture_flow, metrics_to_json,
    report, summary_to_json, Collector,
};
use tamperscope::capture::{
    flows_from_pcap, run_engine_observed, run_source, ClosedFlow, EngineConfig, EngineStats,
    FlowRecord, OfflineConfig, PacketRecord, PcapWriter, RecordSource,
};
use tamperscope::core::{classify, Classifier, ClassifierConfig, Signature};
use tamperscope::obs::Registry;
use tamperscope::wire::{PacketBuilder, TcpFlags, TcpHeader};
use tamperscope::worldgen::json::Json;
use tamperscope::worldgen::{generate_lists, WorldConfig, WorldSim};

fn server() -> IpAddr {
    IpAddr::V4(Ipv4Addr::new(198, 51, 100, 1))
}

fn frame(
    client: IpAddr,
    sport: u16,
    dport: u16,
    flags: TcpFlags,
    seq: u32,
    ack: u32,
    payload: &[u8],
) -> Vec<u8> {
    PacketBuilder::new(client, server(), sport, dport)
        .flags(flags)
        .seq(seq)
        .ack(ack)
        .ttl(52)
        .ip_id((seq % 60_000) as u16)
        .payload(bytes::Bytes::copy_from_slice(payload))
        .build()
        .emit()
        .to_vec()
}

/// A deterministic capture with a varied mix of flow shapes, written in
/// global timestamp order so flows interleave and idle flows age out
/// mid-stream.
fn synth_capture(n_flows: u32) -> Vec<u8> {
    let mut timed: Vec<(u32, Vec<u8>)> = Vec::new();
    for i in 0..n_flows {
        let client = IpAddr::V4(Ipv4Addr::new(203, 0, 113, (1 + i % 200) as u8));
        let sport = 20_000 + (i % 40_000) as u16;
        let dport = if i % 3 == 0 { 80 } else { 443 };
        let t = 100 + i; // staggered starts
        let f =
            |flags, seq, ack, payload: &[u8]| frame(client, sport, dport, flags, seq, ack, payload);
        match i % 8 {
            // Clean request/teardown.
            0 => {
                timed.push((t, f(TcpFlags::SYN, 100, 0, b"")));
                timed.push((t, f(TcpFlags::ACK, 101, 500, b"")));
                timed.push((
                    t + 1,
                    f(
                        TcpFlags::PSH_ACK,
                        101,
                        500,
                        b"GET / HTTP/1.1\r\nHost: ok.example\r\n\r\n",
                    ),
                ));
                timed.push((t + 2, f(TcpFlags::FIN_ACK, 137, 900, b"")));
            }
            // Lone SYN, then silence.
            1 => timed.push((t, f(TcpFlags::SYN, 100, 0, b""))),
            // SYN answered by an injected RST.
            2 => {
                timed.push((t, f(TcpFlags::SYN, 100, 0, b"")));
                timed.push((t, f(TcpFlags::RST, 101, 0, b"")));
            }
            // Handshake completes, then RST+ACK.
            3 => {
                timed.push((t, f(TcpFlags::SYN, 100, 0, b"")));
                timed.push((t, f(TcpFlags::ACK, 101, 500, b"")));
                timed.push((t + 1, f(TcpFlags::RST_ACK, 101, 500, b"")));
            }
            // Data, then a burst of equal-ack RSTs.
            4 => {
                timed.push((t, f(TcpFlags::SYN, 100, 0, b"")));
                timed.push((t, f(TcpFlags::ACK, 101, 500, b"")));
                timed.push((t + 1, f(TcpFlags::PSH_ACK, 101, 500, b"hello")));
                timed.push((t + 1, f(TcpFlags::RST, 106, 700, b"")));
                timed.push((t + 1, f(TcpFlags::RST, 106, 700, b"")));
            }
            // Long idle mid-flow: the 30 s timeout splits it in two.
            5 => {
                timed.push((t, f(TcpFlags::SYN, 100, 0, b"")));
                timed.push((t, f(TcpFlags::ACK, 101, 500, b"")));
                timed.push((t + 40, f(TcpFlags::PSH_ACK, 101, 500, b"late")));
            }
            // More packets than the 10-packet cap retains.
            6 => {
                timed.push((t, f(TcpFlags::SYN, 100, 0, b"")));
                timed.push((t, f(TcpFlags::ACK, 101, 500, b"")));
                for k in 0..12u32 {
                    timed.push((
                        t + 1 + k / 6,
                        f(TcpFlags::PSH_ACK, 101 + k * 8, 500, b"chunk!!!"),
                    ));
                }
            }
            // Two data packets, then RST+ACK.
            _ => {
                timed.push((t, f(TcpFlags::SYN, 100, 0, b"")));
                timed.push((t, f(TcpFlags::ACK, 101, 500, b"")));
                timed.push((t + 1, f(TcpFlags::PSH_ACK, 101, 500, b"first")));
                timed.push((t + 2, f(TcpFlags::PSH_ACK, 106, 600, b"second")));
                timed.push((t + 2, f(TcpFlags::RST_ACK, 112, 700, b"")));
            }
        }
    }
    timed.sort_by_key(|(ts, _)| *ts);
    let mut w = PcapWriter::new(Vec::new()).expect("header");
    for (i, (ts, fr)) in timed.iter().enumerate() {
        w.write_frame(*ts, i as u32 % 1_000_000, fr).expect("frame");
    }
    w.into_inner()
}

struct Sink {
    clf: Classifier,
    col: Collector,
    lines: Vec<(u64, String)>,
}

/// Run the engine at a given shard count; return the concatenated verdict
/// lines (global order) and the collector.
fn engine_output(bytes: &[u8], threads: usize) -> (String, Collector, EngineStats) {
    engine_output_observed(bytes, threads, None)
}

/// Same, with an optional metrics registry attached — observation must be
/// a pure spectator.
fn engine_output_observed(
    bytes: &[u8],
    threads: usize,
    obs: Option<&Registry>,
) -> (String, Collector, EngineStats) {
    let cfg = EngineConfig {
        offline: OfflineConfig::default(),
        threads,
        ..EngineConfig::default()
    };
    let clf_cfg = ClassifierConfig::default();
    let (mut sink, stats) = run_engine_observed(
        bytes,
        &cfg,
        obs,
        || Sink {
            clf: Classifier::new(clf_cfg),
            col: capture_collector(clf_cfg, 0),
            lines: Vec::new(),
        },
        |sink: &mut Sink, closed: ClosedFlow| {
            let first_index = closed.first_index;
            let lf = label_capture_flow(closed.flow);
            let analysis = sink.clf.classify(&lf.flow);
            sink.col.observe_analyzed(&lf, &analysis);
            sink.lines
                .push((first_index, flow_to_jsonl(&lf.flow, &analysis)));
        },
        |a, mut b| {
            a.col.merge(b.col);
            a.lines.append(&mut b.lines);
        },
    )
    .expect("engine run");
    sink.lines.sort_by_key(|(first_index, _)| *first_index);
    let text = sink
        .lines
        .into_iter()
        .map(|(_, l)| l)
        .collect::<Vec<_>>()
        .join("\n");
    (text, sink.col, stats)
}

/// The legacy buffered path, producing the same verdict-line format.
fn legacy_output(bytes: &[u8]) -> (String, Collector) {
    let (flows, _stats) = flows_from_pcap(bytes, &OfflineConfig::default()).expect("legacy parse");
    let clf_cfg = ClassifierConfig::default();
    let mut clf = Classifier::new(clf_cfg);
    let mut col = capture_collector(clf_cfg, 0);
    let mut lines = Vec::new();
    for flow in flows {
        let lf = label_capture_flow(flow);
        let analysis = clf.classify(&lf.flow);
        col.observe_analyzed(&lf, &analysis);
        lines.push(flow_to_jsonl(&lf.flow, &analysis));
    }
    (lines.join("\n"), col)
}

fn signature_counts(col: &Collector) -> [u64; 19] {
    let mut counts = [0u64; 19];
    for row in &col.country_class {
        for (i, c) in row.iter().take(19).enumerate() {
            counts[i] += c;
        }
    }
    counts
}

#[test]
fn verdicts_are_byte_identical_across_thread_counts() {
    let bytes = synth_capture(120);
    let (out1, col1, stats1) = engine_output(&bytes, 1);
    let (out2, col2, stats2) = engine_output(&bytes, 2);
    let (out8, col8, stats8) = engine_output(&bytes, 8);

    assert!(!out1.is_empty());
    assert_eq!(out1, out2, "threads 1 vs 2 diverged");
    assert_eq!(out1, out8, "threads 1 vs 8 diverged");

    // The deterministic summary line must match byte-for-byte too.
    let s1 = capture_summary_to_json(&col1, &stats1);
    let s2 = capture_summary_to_json(&col2, &stats2);
    let s8 = capture_summary_to_json(&col8, &stats8);
    assert_eq!(s1, s2);
    assert_eq!(s1, s8);

    // And the per-signature counts.
    assert_eq!(signature_counts(&col1), signature_counts(&col2));
    assert_eq!(signature_counts(&col1), signature_counts(&col8));

    // The capture genuinely exercised streaming eviction and all
    // stat paths — otherwise the determinism claim is vacuous.
    assert!(stats1.evicted_timeout > 0, "no timeout evictions happened");
    assert!(stats1.drained_eof > 0, "no EOF drains happened");
    assert!(
        stats1.ingest.truncated_packets > 0,
        "no truncation happened"
    );
}

#[test]
fn engine_matches_the_legacy_buffered_path() {
    let bytes = synth_capture(96);
    let (engine_text, engine_col, _) = engine_output(&bytes, 4);
    let (legacy_text, legacy_col) = legacy_output(&bytes);
    assert_eq!(engine_text, legacy_text);
    assert_eq!(signature_counts(&engine_col), signature_counts(&legacy_col));
    assert_eq!(engine_col.total, legacy_col.total);
    assert_eq!(engine_col.possibly_tampered, legacy_col.possibly_tampered);
}

#[test]
fn corpus_hits_multiple_signatures() {
    // Sanity: the synthetic mix must produce a spread of signatures, not
    // funnel everything into one bucket.
    let bytes = synth_capture(80);
    let (_, col, _) = engine_output(&bytes, 2);
    let counts = signature_counts(&col);
    assert!(counts[Signature::SynNone.index()] > 0);
    assert!(counts[Signature::SynRst.index()] > 0);
    assert!(counts[Signature::AckRstAck.index()] > 0);
    assert!(counts[Signature::PshRstEq.index()] > 0);
    let distinct = counts.iter().filter(|&&c| c > 0).count();
    assert!(
        distinct >= 4,
        "only {distinct} distinct signatures: {counts:?}"
    );
}

#[test]
fn sharding_cannot_increase_max_live_flows() {
    // max_live_flows is the max per-shard high-water mark. Each shard sees
    // a subset of the flows under the same eviction clock, so splitting the
    // capture across 8 shards can only shrink (or keep) the single-shard
    // high water — it must never report the shards' sum.
    let bytes = synth_capture(120);
    let (_, _, stats1) = engine_output(&bytes, 1);
    let (_, _, stats8) = engine_output(&bytes, 8);
    assert!(stats1.max_live_flows > 0);
    assert!(
        stats8.max_live_flows <= stats1.max_live_flows,
        "8-shard high water {} exceeds single-shard {}",
        stats8.max_live_flows,
        stats1.max_live_flows
    );
}

/// The golden world, scaled down to suite size: default (golden) seed,
/// enough sessions for every stage of the taxonomy to appear.
fn golden_sim() -> WorldSim {
    WorldSim::new(WorldConfig {
        sessions: 4_000,
        days: 2,
        catalog_size: 600,
        ..Default::default()
    })
}

/// Reconstruct the wire frame a logged packet came from. The collector's
/// `PacketRecord` keeps every classified header field, so the rebuilt frame
/// re-parses to the same record (options content is gone — any option list
/// preserves the `has_tcp_options` bit the classifier reads).
fn wire_frame(flow: &FlowRecord, p: &PacketRecord) -> Vec<u8> {
    let mut b = PacketBuilder::new(flow.client_ip, flow.server_ip, flow.src_port, flow.dst_port)
        .flags(p.flags)
        .seq(p.seq)
        .ack(p.ack)
        .ttl(p.ttl)
        .window(p.window)
        .payload(p.payload.clone());
    if let Some(id) = p.ip_id {
        b = b.ip_id(id);
    }
    if p.has_tcp_options {
        b = b.options(TcpHeader::standard_syn_options());
    }
    b.build().emit().to_vec()
}

/// Satellite: `SimSource → engine` is byte-identical to the legacy
/// `WorldSim::run → pcap → classify` round trip on the golden world seed,
/// at 1, 2, and 8 shards.
#[test]
fn sim_engine_matches_the_legacy_pcap_round_trip() {
    let sim = golden_sim();
    let clf_cfg = ClassifierConfig::default();

    // Simulated flows streamed straight through the sharded engine.
    let engine_lines = |threads: usize| -> Vec<String> {
        sim.run_sharded(
            threads,
            Vec::new,
            |acc: &mut Vec<String>, lf| {
                let analysis = classify(&lf.flow, &clf_cfg);
                acc.push(flow_to_jsonl(&lf.flow, &analysis));
            },
            |a, mut b| a.append(&mut b),
        )
    };
    let eng1 = engine_lines(1);
    let eng2 = engine_lines(2);
    let eng8 = engine_lines(8);
    assert!(!eng1.is_empty());
    assert_eq!(eng1, eng2, "sim verdicts diverged between 1 and 2 shards");
    assert_eq!(eng1, eng8, "sim verdicts diverged between 1 and 8 shards");

    // Legacy round trip: serial generation, flows written out as a
    // time-ordered pcap, re-ingested through the offline reference path.
    let mut timed: Vec<(u64, Vec<u8>)> = Vec::new();
    let mut sim_flows = 0u64;
    sim.run(|lf| {
        sim_flows += 1;
        let flow = &lf.flow;
        for p in &flow.packets {
            timed.push((p.ts_sec, wire_frame(flow, p)));
        }
        if flow.truncated {
            // The collector stopped logging at the packet cap; replay one
            // surplus copy of the final packet so the offline table hits
            // its own cap and sets the same truncated bit. The surplus
            // packet is past the cap, so it is never retained.
            if let Some(last) = flow.packets.last() {
                timed.push((last.ts_sec, wire_frame(flow, last)));
            }
        }
    });
    // Stable sort: global capture-time order, intra-flow order preserved.
    timed.sort_by_key(|(ts, _)| *ts);
    let mut w = PcapWriter::new(Vec::new()).expect("header");
    for (ts, fr) in &timed {
        w.write_frame(*ts as u32, 0, fr).expect("frame");
    }
    let bytes = w.into_inner();
    let (flows, stats) =
        flows_from_pcap(bytes.as_slice(), &OfflineConfig::default()).expect("re-ingest");
    assert_eq!(stats.unparsable, 0);
    assert_eq!(
        flows.len() as u64,
        sim_flows,
        "round trip split or merged flows"
    );
    let mut legacy: Vec<String> = flows
        .iter()
        .map(|f| flow_to_jsonl(f, &classify(f, &clf_cfg)))
        .collect();

    // The engine hands flows back in generation order; offline ingest in
    // eviction order. Compare as sorted multisets, byte for byte.
    let mut engine_sorted = eng1;
    engine_sorted.sort_unstable();
    legacy.sort_unstable();
    assert_eq!(engine_sorted, legacy, "sim→engine vs pcap round trip");
}

/// Acceptance gate: `report` output (the full rendered report AND the JSON
/// summary) is byte-identical at 1/2/8 threads, with and without a metrics
/// registry attached — and the registry really carries the engine scopes.
#[test]
fn report_is_byte_identical_across_threads_and_observation() {
    let sim = golden_sim();
    let lists = generate_lists(&sim);
    let render = |threads: usize, obs: Option<&Registry>| -> (String, String) {
        let col = sim.run_sharded_observed(
            threads,
            obs,
            || {
                Collector::new(
                    ClassifierConfig::default(),
                    sim.world().len(),
                    sim.config().days,
                    sim.config().start_unix,
                )
            },
            |c, lf| c.observe(&lf),
            |a, b| a.merge(b),
        );
        (
            report::full_report(&col.view(), &sim, &lists),
            summary_to_json(&col),
        )
    };
    let (base_report, base_summary) = render(1, None);
    assert!(base_report.len() > 100, "report suspiciously small");
    for threads in [1usize, 2, 8] {
        let registry = Registry::new();
        let (plain_report, plain_summary) = render(threads, None);
        let (obs_report, obs_summary) = render(threads, Some(&registry));
        assert_eq!(
            plain_report, base_report,
            "report bytes at {threads} threads"
        );
        assert_eq!(
            plain_summary, base_summary,
            "summary bytes at {threads} threads"
        );
        assert_eq!(
            obs_report, base_report,
            "observed report bytes at {threads} threads"
        );
        assert_eq!(
            obs_summary, base_summary,
            "observed summary bytes at {threads} threads"
        );
        // The worldgen shim publishes through the unified engine: the
        // engine's own scopes appear, the old bespoke scope does not.
        let snap = registry.snapshot();
        assert!(snap.scope("reader").is_some(), "no reader scope");
        assert!(snap.scope("shard0").is_some(), "no shard0 scope");
        assert!(snap.scope("merge").is_some(), "no merge scope");
        assert!(
            snap.scope("worldgen").is_none(),
            "legacy worldgen scope leaked back"
        );
    }
}

#[test]
fn metrics_observation_never_perturbs_deterministic_output() {
    let bytes = synth_capture(120);
    let mut summaries = Vec::new();
    for threads in [1usize, 2, 8] {
        let (plain_text, plain_col, plain_stats) = engine_output(&bytes, threads);
        let registry = Registry::new();
        let (obs_text, obs_col, obs_stats) =
            engine_output_observed(&bytes, threads, Some(&registry));

        // Attaching the registry changes neither the verdict lines nor the
        // deterministic summary, byte for byte.
        assert_eq!(
            plain_text, obs_text,
            "verdicts diverged at {threads} threads"
        );
        let plain_summary = capture_summary_to_json(&plain_col, &plain_stats);
        let obs_summary = capture_summary_to_json(&obs_col, &obs_stats);
        assert_eq!(
            plain_summary, obs_summary,
            "summary diverged at {threads} threads"
        );

        // Metrics live in their own document; none of its scheduling-
        // dependent vocabulary leaks into the summary bytes.
        let metrics = metrics_to_json(&registry.snapshot());
        assert!(metrics.contains("\"kind\":\"metrics\""));
        for leak in [
            "\"kind\":\"metrics\"",
            "histograms",
            "bounds_ns",
            "channel_stalls",
        ] {
            assert!(
                !plain_summary.contains(leak),
                "summary leaked metrics vocabulary {leak:?}"
            );
        }
        summaries.push(obs_summary);
    }
    // And the observed summary itself is thread-count-invariant.
    assert_eq!(summaries[0], summaries[1]);
    assert_eq!(summaries[0], summaries[2]);
}

// ---------------------------------------------------------------------------
// Satellite: RecordSource JSONL round trip
// ---------------------------------------------------------------------------

/// Serialize a flow record as one JSONL line carrying every field the
/// classifier can observe (payloads hex-encoded).
fn record_to_jsonl(f: &FlowRecord) -> String {
    fn hex(bytes: &[u8]) -> String {
        let mut s = String::with_capacity(bytes.len() * 2);
        for b in bytes {
            s.push_str(&format!("{b:02x}"));
        }
        s
    }
    let packets: Vec<String> = f
        .packets
        .iter()
        .map(|p| {
            let ip_id = match p.ip_id {
                Some(id) => id.to_string(),
                None => "null".to_string(),
            };
            format!(
                "{{\"ts_sec\":{},\"flags\":{},\"seq\":{},\"ack\":{},\"ip_id\":{},\
                 \"ttl\":{},\"window\":{},\"payload_len\":{},\"payload\":\"{}\",\
                 \"has_tcp_options\":{}}}",
                p.ts_sec,
                p.flags.bits(),
                p.seq,
                p.ack,
                ip_id,
                p.ttl,
                p.window,
                p.payload_len,
                hex(&p.payload),
                p.has_tcp_options
            )
        })
        .collect();
    format!(
        "{{\"client_ip\":\"{}\",\"server_ip\":\"{}\",\"src_port\":{},\"dst_port\":{},\
         \"packets\":[{}],\"observation_end_sec\":{},\"truncated\":{}}}",
        f.client_ip,
        f.server_ip,
        f.src_port,
        f.dst_port,
        packets.join(","),
        f.observation_end_sec,
        f.truncated
    )
}

/// Decode one JSONL line back into a flow record.
fn record_from_json(j: &Json) -> FlowRecord {
    fn unhex(s: &str) -> bytes::Bytes {
        let raw: Vec<u8> = s
            .as_bytes()
            .chunks(2)
            .map(|pair| {
                let hi = (pair[0] as char).to_digit(16).expect("hex digit");
                let lo = (pair[1] as char).to_digit(16).expect("hex digit");
                (hi * 16 + lo) as u8
            })
            .collect();
        bytes::Bytes::from(raw)
    }
    let u = |v: &Json, key: &str| v.get(key).and_then(Json::as_u64).expect("numeric field");
    let packets = j
        .get("packets")
        .and_then(Json::as_array)
        .expect("packets array")
        .iter()
        .map(|p| PacketRecord {
            ts_sec: u(p, "ts_sec"),
            flags: TcpFlags::from_bits(u(p, "flags") as u8),
            seq: u(p, "seq") as u32,
            ack: u(p, "ack") as u32,
            ip_id: p.get("ip_id").and_then(Json::as_u64).map(|v| v as u16),
            ttl: u(p, "ttl") as u8,
            window: u(p, "window") as u16,
            payload_len: u(p, "payload_len") as u32,
            payload: unhex(p.get("payload").and_then(Json::as_str).expect("payload")),
            has_tcp_options: p
                .get("has_tcp_options")
                .and_then(Json::as_bool)
                .expect("bool field"),
        })
        .collect();
    FlowRecord {
        client_ip: j
            .get("client_ip")
            .and_then(Json::as_str)
            .expect("client_ip")
            .parse()
            .expect("ip"),
        server_ip: j
            .get("server_ip")
            .and_then(Json::as_str)
            .expect("server_ip")
            .parse()
            .expect("ip"),
        src_port: u(j, "src_port") as u16,
        dst_port: u(j, "dst_port") as u16,
        packets,
        observation_end_sec: u(j, "observation_end_sec"),
        truncated: j
            .get("truncated")
            .and_then(Json::as_bool)
            .expect("bool field"),
    }
}

/// Drive a batch of assembled records through the sharded engine; return
/// the verdict lines in stable (record-index) order.
fn record_engine_lines(records: Vec<FlowRecord>, threads: usize) -> String {
    let cfg = EngineConfig {
        offline: OfflineConfig::default(),
        threads,
        ..EngineConfig::default()
    };
    let clf_cfg = ClassifierConfig::default();
    let (mut lines, stats) = run_source(
        RecordSource::from_vec(records),
        &cfg,
        Vec::new,
        |acc: &mut Vec<(u64, String)>, closed: ClosedFlow| {
            let analysis = classify(&closed.flow, &clf_cfg);
            acc.push((closed.first_index, flow_to_jsonl(&closed.flow, &analysis)));
        },
        |a, mut b| a.append(&mut b),
    );
    assert_eq!(stats.ingest.flows, lines.len() as u64);
    lines.sort_by_key(|(first_index, _)| *first_index);
    lines
        .into_iter()
        .map(|(_, l)| l)
        .collect::<Vec<_>>()
        .join("\n")
}

/// Satellite: flow records survive a JSONL round trip exactly, and the
/// records → engine → verdicts path produces byte-identical output for
/// the in-memory batch and its decoded JSONL twin at 1, 2, and 8 shards.
#[test]
fn record_jsonl_round_trip_is_byte_identical_across_thread_counts() {
    let bytes = synth_capture(64);
    let (flows, _stats) =
        flows_from_pcap(bytes.as_slice(), &OfflineConfig::default()).expect("ingest");
    assert!(flows.len() >= 60, "capture shrank: {}", flows.len());

    // Field-exact structural round trip (FlowRecord: PartialEq).
    let jsonl: Vec<String> = flows.iter().map(record_to_jsonl).collect();
    let decoded: Vec<FlowRecord> = jsonl
        .iter()
        .map(|line| record_from_json(&Json::parse(line).expect("line parses")))
        .collect();
    assert_eq!(flows, decoded, "JSONL round trip altered a record");

    // Both batches drive the engine to the same verdict bytes everywhere.
    let base = record_engine_lines(flows.clone(), 1);
    assert!(!base.is_empty());
    for threads in [1usize, 2, 8] {
        assert_eq!(
            record_engine_lines(flows.clone(), threads),
            base,
            "in-memory records diverged at {threads} threads"
        );
        assert_eq!(
            record_engine_lines(decoded.clone(), threads),
            base,
            "decoded JSONL records diverged at {threads} threads"
        );
    }
}
