//! End-to-end tests of the `tamperscope` CLI binary: synthesize a capture,
//! classify it in both output modes, and check the simulation subcommands.

use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_tamperscope"))
}

fn tmp(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("tamperscope_cli_{}_{name}", std::process::id()))
}

#[test]
fn signatures_lists_nineteen_rows() {
    let out = bin().arg("signatures").output().expect("run");
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    let rows = text.lines().filter(|l| l.contains('⟨')).count();
    assert_eq!(rows, 19);
    assert!(text.contains("⟨PSH+ACK → RST; RST₀⟩"));
}

#[test]
fn synthesize_then_classify_round_trip() {
    let pcap = tmp("round_trip.pcap");
    let out = bin()
        .args(["synthesize", pcap.to_str().unwrap(), "--sessions", "120"])
        .output()
        .expect("synthesize");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let out = bin()
        .args(["classify", pcap.to_str().unwrap()])
        .output()
        .expect("classify");
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("TAMPERED"));
    assert!(text.contains("clean"));
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("flows match a tampering signature"));

    // JSONL mode: every line is a JSON object with the expected keys.
    let out = bin()
        .args(["classify", pcap.to_str().unwrap(), "--jsonl"])
        .output()
        .expect("classify jsonl");
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert!(lines.len() >= 100);
    for line in &lines {
        assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        assert!(line.contains("\"verdict\":"));
        assert!(line.contains("\"client_ip\":"));
    }
    let _ = std::fs::remove_file(&pcap);
}

#[test]
fn classify_accepts_flags_in_any_position() {
    // Regression: boolean flags placed before the positional path used to
    // swallow the next argument as their "value", so `classify --jsonl X`
    // saw no positional at all.
    let pcap = tmp("flag_order.pcap");
    let out = bin()
        .args(["synthesize", pcap.to_str().unwrap(), "--sessions", "60"])
        .output()
        .expect("synthesize");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let flag_first = bin()
        .args(["classify", "--jsonl", pcap.to_str().unwrap()])
        .output()
        .expect("classify flag-first");
    assert!(
        flag_first.status.success(),
        "{}",
        String::from_utf8_lossy(&flag_first.stderr)
    );
    let flag_last = bin()
        .args(["classify", pcap.to_str().unwrap(), "--jsonl"])
        .output()
        .expect("classify flag-last");
    assert!(flag_last.status.success());
    assert_eq!(
        flag_first.stdout, flag_last.stdout,
        "flag position changed output"
    );

    // The engine path: thread count must not change a single output byte,
    // and --json-summary appends the summary + perf lines.
    let t1 = bin()
        .args([
            "classify",
            pcap.to_str().unwrap(),
            "--jsonl",
            "--threads",
            "1",
        ])
        .output()
        .expect("threads 1");
    let t4 = bin()
        .args([
            "classify",
            "--threads",
            "4",
            "--jsonl",
            pcap.to_str().unwrap(),
        ])
        .output()
        .expect("threads 4");
    assert!(t1.status.success() && t4.status.success());
    assert_eq!(t1.stdout, t4.stdout, "verdicts differ across thread counts");

    let summary = bin()
        .args([
            "classify",
            pcap.to_str().unwrap(),
            "--json-summary",
            "--threads",
            "2",
        ])
        .output()
        .expect("summary");
    assert!(summary.status.success());
    let text = String::from_utf8(summary.stdout).unwrap();
    assert!(text.contains("\"total_flows\":"), "{text}");
    assert!(text.contains("\"signatures\":"), "{text}");
    assert!(text.contains("\"threads\":2"), "{text}");
    let _ = std::fs::remove_file(&pcap);
}

#[test]
fn report_json_summary_is_valid_shape() {
    let out = bin()
        .args([
            "report",
            "--sessions",
            "4000",
            "--days",
            "2",
            "--json-summary",
        ])
        .output()
        .expect("report");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    let line = text.trim();
    assert!(line.starts_with('{') && line.ends_with('}'));
    assert!(line.contains("\"total_flows\":"));
    assert!(line.contains("\"possibly_tampered\":"));
}

#[test]
fn world_spec_emits_one_json_line_per_country() {
    let out = bin().arg("world-spec").output().expect("run");
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert!(lines.len() > 50, "expected one line per country");
    for line in &lines {
        assert!(line.starts_with('{') && line.ends_with('}'));
        assert!(line.contains("\"country\":"));
        assert!(
            !line.contains("-0,") && !line.ends_with("-0}"),
            "negative zero leaked: {line}"
        );
    }
    assert!(text.contains("\"country\":\"TM\""));
}

#[test]
fn unknown_subcommand_fails_with_usage() {
    let out = bin().arg("frobnicate").output().expect("run");
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("USAGE"));
}

#[test]
fn unparseable_numeric_flag_is_a_usage_error() {
    // `--threads=abc` used to silently fall back to the default and run
    // anyway; strict parsing makes a typo a usage failure (exit 2).
    for args in [
        vec!["report", "--sessions", "abc"],
        vec!["report", "--threads=abc"],
        vec!["iran", "--sessions", "abc"],
        vec!["synthesize", "/tmp/never-written.pcap", "--seed", "-1"],
        vec!["report", "--threads"],
    ] {
        let out = bin().args(&args).output().expect("run");
        assert_eq!(out.status.code(), Some(2), "{args:?} did not exit 2");
        let err = String::from_utf8(out.stderr).unwrap();
        assert!(err.contains("USAGE"), "{args:?}: {err}");
        assert!(
            err.contains("is not an unsigned integer") || err.contains("requires a value"),
            "{args:?}: {err}"
        );
    }
}

#[test]
fn classify_missing_file_fails_cleanly() {
    let out = bin()
        .args(["classify", "/definitely/not/here.pcap"])
        .output()
        .expect("run");
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("cannot open"));
}

#[test]
fn custom_world_round_trips_through_cli() {
    // Export the calibrated world, load it back, and run a small report.
    let spec_path = tmp("world.json");
    let out = bin().args(["world-spec", "--full"]).output().expect("run");
    assert!(out.status.success());
    std::fs::write(&spec_path, &out.stdout).unwrap();

    let out = bin()
        .args([
            "report",
            "--world",
            spec_path.to_str().unwrap(),
            "--sessions",
            "3000",
            "--days",
            "2",
            "--json-summary",
        ])
        .output()
        .expect("report");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("\"possibly_tampered\":"));
    let _ = std::fs::remove_file(&spec_path);
}

#[test]
fn single_country_world_runs() {
    let spec_path = tmp("mono.json");
    std::fs::write(
        &spec_path,
        r#"[{
            "code": "QQ", "weight": 1, "http_share": 0.5,
            "policy": {
                "dpi_blanket": 0.5,
                "dpi_mix": [{"vendor": "GfwDoubleRstAck", "rate": 1}]
            }
        }]"#,
    )
    .unwrap();
    let out = bin()
        .args([
            "report",
            "--world",
            spec_path.to_str().unwrap(),
            "--sessions",
            "2500",
            "--days",
            "1",
            "--json-summary",
        ])
        .output()
        .expect("report");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    // Half the country is GFW'd: the possibly-tampered rate must be far
    // above the benign floor.
    let pt: f64 = text
        .split("\"possibly_tampered\":")
        .nth(1)
        .and_then(|s| s.split(',').next())
        .and_then(|s| s.parse().ok())
        .unwrap();
    let total: f64 = text
        .split("\"total_flows\":")
        .nth(1)
        .and_then(|s| s.split(',').next())
        .and_then(|s| s.parse().ok())
        .unwrap();
    assert!(pt / total > 0.4, "pt {pt} / total {total}");
    let _ = std::fs::remove_file(&spec_path);
}

#[test]
fn malformed_world_fails_with_context() {
    let spec_path = tmp("bad.json");
    std::fs::write(
        &spec_path,
        r#"[{"code":"X","weight":1,"policy":{"dpi_mix":[{"vendor":"Nope","rate":1}]}}]"#,
    )
    .unwrap();
    let out = bin()
        .args(["report", "--world", spec_path.to_str().unwrap()])
        .output()
        .expect("report");
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("unknown vendor"), "{err}");
    let _ = std::fs::remove_file(&spec_path);
}
