//! Model-based differential battery for the sans-IO state machines.
//!
//! Three layers, per the testing strategy in DESIGN.md:
//!
//! 1. **Golden differential** — every flow of the golden corpus replays
//!    through the legacy `Classifier` AND the new `FlowMachine`; the two
//!    `FlowAnalysis` values (and their serialized verdict lines) must be
//!    byte-identical, under both the paper config and the A4 ablation.
//! 2. **Property battery** — proptest-generated adversarial interleavings
//!    (wraparound seq/ack near `u32::MAX`, overlapping/ambiguous
//!    segments, arbitrary flag soup, truncations, timer storms) assert
//!    the machines never panic, agree with the legacy path, and are
//!    replay-deterministic: the same input sequence produces the same
//!    output sequence, twice. (No ambient clock can leak in: the
//!    tamperlint `clock-containment` rule covers the new modules, see
//!    `crates/lint/tests/rules.rs`.)
//! 3. **Exhaustive enumeration** — the whole reachable transition graph
//!    of the finite `StageState` automaton, to every depth, snapshotted
//!    as `tests/fixtures/state_graph.golden.txt` so an unintended
//!    transition fails review. Re-bless with
//!    `UPDATE_GOLDEN=1 cargo test --test state_machine`.

use std::collections::{BTreeMap, BTreeSet};
use std::net::{IpAddr, Ipv4Addr};
use std::path::PathBuf;

use bytes::Bytes;
use proptest::prelude::*;
use tamperscope::analysis::flow_to_jsonl;
use tamperscope::capture::{flows_from_pcap, FlowRecord, OfflineConfig, PacketRecord};
use tamperscope::core::{
    classify, reachable_graph, stage_of, transition, Classifier, ClassifierConfig, Count, Event,
    FlowMachine, Input, Output, StageState,
};
use tamperscope::netsim::client::ClientTimer;
use tamperscope::netsim::server::ServerTimer;
use tamperscope::netsim::{
    derive_rng, Client, ClientConfig, ClientKind, EndpointInput, EndpointMachine, Server,
    ServerConfig, SimDuration, SimTime, VanishStage,
};
use tamperscope::wire::{PacketBuilder, TcpFlags};

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

const CONFIGS: [ClassifierConfig; 2] = [
    ClassifierConfig {
        inactivity_secs: 3,
        split_rst_counts: true,
    },
    // The A4 ablation: merged RST-count splits.
    ClassifierConfig {
        inactivity_secs: 3,
        split_rst_counts: false,
    },
];

// ---------------------------------------------------------------------------
// Layer 1: golden-corpus differential
// ---------------------------------------------------------------------------

#[test]
fn every_golden_corpus_flow_is_byte_identical_across_both_classifiers() {
    let bytes = std::fs::read(fixture("golden.pcap"))
        .expect("tests/fixtures/golden.pcap missing — bless via the golden_corpus test");
    let (flows, _stats) =
        flows_from_pcap(&bytes[..], &OfflineConfig::default()).expect("golden pcap parses");
    assert_eq!(flows.len(), 21, "corpus shape changed");

    for cfg in CONFIGS {
        let mut legacy = Classifier::new(cfg);
        let mut machine = FlowMachine::new(cfg);
        for flow in &flows {
            let want = legacy.classify(flow);
            let got = machine.analyze(flow);
            assert_eq!(
                want, got,
                "machine diverged from legacy classifier on {}:{}",
                flow.client_ip, flow.src_port
            );
            // Byte-level: the serialized verdict lines agree too.
            assert_eq!(flow_to_jsonl(flow, &want), flow_to_jsonl(flow, &got));
        }
    }
}

// ---------------------------------------------------------------------------
// Layer 2: proptest battery
// ---------------------------------------------------------------------------

fn rec(ts: u64, flags: TcpFlags, seq: u32, ack: u32, payload_len: u32) -> PacketRecord {
    PacketRecord {
        ts_sec: ts,
        flags,
        seq,
        ack,
        ip_id: Some(7),
        ttl: 52,
        window: 65535,
        payload_len,
        payload: Bytes::from(vec![b'x'; payload_len as usize]),
        has_tcp_options: true,
    }
}

fn arb_flags() -> impl Strategy<Value = TcpFlags> {
    (0u8..64).prop_map(TcpFlags::from_bits)
}

/// An ISN either in the ordinary range or in the wraparound band just
/// below `u32::MAX`, so sequence arithmetic crosses zero mid-flow.
fn arb_isn() -> impl Strategy<Value = u32> {
    prop_oneof![0u32..=2_000, (u32::MAX - 64)..=u32::MAX]
}

/// Sequence offsets drawn from a small colliding set: exact retransmits
/// (same seq, possibly different length — the ambiguous overlapping
/// shapes middleboxes trip on), mid-segment overlaps, and gaps.
fn arb_seq_off() -> impl Strategy<Value = u32> {
    prop_oneof![
        Just(0u32),
        Just(1u32),
        Just(3u32),
        Just(100u32),
        Just(101u32),
        Just(200u32),
        0u32..400,
    ]
}

/// An adversarial flow: arbitrary flag soup over colliding wraparound
/// sequence space, uneven timestamps, optional truncation.
fn arb_machine_flow() -> impl Strategy<Value = FlowRecord> {
    (
        arb_isn(),
        proptest::collection::vec(
            (0u64..5, arb_flags(), arb_seq_off(), 0u32..300, any::<u32>()),
            0..10,
        ),
        proptest::bool::ANY,
        0u64..40,
    )
        .prop_map(|(isn, pkts, truncated, tail)| {
            let mut ts = 100u64;
            let packets: Vec<PacketRecord> = pkts
                .into_iter()
                .map(|(dt, flags, off, len, ack)| {
                    ts += dt;
                    // Post-wrap continuation: offsets carry seq across 0.
                    rec(ts, flags, isn.wrapping_add(off), ack, len)
                })
                .collect();
            let last = packets.iter().map(|p| p.ts_sec).max().unwrap_or(100);
            FlowRecord {
                client_ip: IpAddr::V4(Ipv4Addr::new(203, 0, 113, 77)),
                server_ip: IpAddr::V4(Ipv4Addr::new(198, 51, 100, 1)),
                src_port: 40_077,
                dst_port: 443,
                packets,
                observation_end_sec: last + tail,
                truncated,
            }
        })
}

const CLIENT: IpAddr = IpAddr::V4(Ipv4Addr::new(203, 0, 113, 9));
const SERVER: IpAddr = IpAddr::V4(Ipv4Addr::new(198, 51, 100, 1));

/// A packet from the server toward the client, for endpoint-machine
/// inputs.
fn downlink(
    flags: TcpFlags,
    seq: u32,
    ack: u32,
    payload: &'static [u8],
) -> tamperscope::wire::Packet {
    PacketBuilder::new(SERVER, CLIENT, 443, 40_000)
        .flags(flags)
        .seq(seq)
        .ack(ack)
        .ttl(60)
        .payload(Bytes::from_static(payload))
        .build()
}

/// The client archetypes the replay property cycles through.
fn client_kind(idx: usize) -> ClientKind {
    match idx % 6 {
        0 => ClientKind::Normal,
        1 => ClientKind::ZmapScanner,
        2 => ClientKind::SilentScanner,
        3 => ClientKind::FinThenRst,
        4 => ClientKind::VanishAfter {
            stage: VanishStage::AfterRequest,
        },
        _ => ClientKind::MultiSynVanish,
    }
}

fn client_input(op: u8) -> EndpointInput<ClientTimer> {
    match op % 10 {
        0 => EndpointInput::Packet(downlink(TcpFlags::SYN_ACK, 0x7000_0000, 0x1000_0001, b"")),
        1 => EndpointInput::Packet(downlink(TcpFlags::ACK, 0x7000_0001, 0x1000_0001, b"")),
        2 => EndpointInput::Packet(downlink(
            TcpFlags::PSH_ACK,
            0x7000_0001,
            0x1000_0001,
            b"resp",
        )),
        3 => EndpointInput::Packet(downlink(TcpFlags::FIN_ACK, 0x7000_0005, 0x1000_0001, b"")),
        4 => EndpointInput::Packet(downlink(TcpFlags::RST, 0x7000_0001, 0, b"")),
        5 => EndpointInput::Timer(ClientTimer::RetransmitSyn),
        6 => EndpointInput::Timer(ClientTimer::RetransmitRequest),
        7 => EndpointInput::Timer(ClientTimer::HappyEyeballsCancel),
        8 => EndpointInput::Timer(ClientTimer::SecondRequest),
        _ => EndpointInput::Timer(ClientTimer::Close),
    }
}

fn server_input(op: u8) -> EndpointInput<ServerTimer> {
    let uplink = |flags: TcpFlags, seq: u32, payload: &'static [u8]| {
        PacketBuilder::new(CLIENT, SERVER, 40_000, 443)
            .flags(flags)
            .seq(seq)
            .ack(0x7000_0001)
            .ttl(52)
            .payload(Bytes::from_static(payload))
            .build()
    };
    match op % 6 {
        0 => EndpointInput::Packet(uplink(TcpFlags::SYN, 0x1000_0000, b"")),
        1 => EndpointInput::Packet(uplink(TcpFlags::ACK, 0x1000_0001, b"")),
        2 => EndpointInput::Packet(uplink(TcpFlags::PSH_ACK, 0x1000_0001, b"hello")),
        3 => EndpointInput::Packet(uplink(TcpFlags::FIN_ACK, 0x1000_0006, b"")),
        4 => EndpointInput::Packet(uplink(TcpFlags::RST, 0x1000_0001, b"")),
        _ => EndpointInput::Timer(ServerTimer::RetransmitSynAck),
    }
}

proptest! {
    /// Differential + replay determinism: on arbitrary adversarial flows
    /// the machine (a) never panics, (b) agrees with the legacy
    /// classifier exactly, and (c) produces the same analysis when the
    /// same machine replays the same flow again — under both configs.
    #[test]
    fn machine_matches_legacy_and_replays_deterministically(flow in arb_machine_flow()) {
        for cfg in CONFIGS {
            let want = classify(&flow, &cfg);
            let mut machine = FlowMachine::new(cfg);
            let first = machine.analyze(&flow);
            let second = machine.analyze(&flow);
            prop_assert_eq!(&first, &second, "replay diverged");
            prop_assert_eq!(first, want, "machine diverged from legacy");
        }
    }

    /// Truncating the input stream at an arbitrary point (the collector
    /// evicting a live flow) still yields a verdict, never a panic, and
    /// leaves the machine reusable for the next flow.
    #[test]
    fn early_truncation_yields_a_verdict_and_clean_reuse(
        flow in arb_machine_flow(),
        cut in 0usize..12,
        trunc in proptest::bool::ANY,
    ) {
        let cfg = ClassifierConfig::default();
        let mut machine = FlowMachine::new(cfg);
        machine.process(
            Input::Start {
                client_ip: flow.client_ip,
                server_ip: flow.server_ip,
                src_port: flow.src_port,
                dst_port: flow.dst_port,
            },
            SimTime::ZERO,
        );
        for p in flow.packets.iter().take(cut) {
            let out = machine.process(Input::Packet(p.clone()), SimTime::from_secs(p.ts_sec));
            prop_assert_eq!(out, Output::Continue);
        }
        let out = machine.process(
            Input::End { truncated: trunc },
            SimTime::from_secs(flow.observation_end_sec),
        );
        prop_assert!(matches!(out, Output::Analysis(_)));
        // A fresh Start fully resets per-flow state: the reused machine
        // still agrees with the legacy classifier on the complete flow.
        prop_assert_eq!(machine.analyze(&flow), classify(&flow, &cfg));
    }

    /// The netsim client machine is replay-deterministic across every
    /// archetype: the same (seeded) input sequence yields the same
    /// action sequence, twice, and never panics — timers included, in
    /// any order.
    #[test]
    fn client_endpoint_replay_is_deterministic(
        kind in 0usize..6,
        script in proptest::collection::vec((0u8..10, 0u64..3), 0..8),
        seed in any::<u64>(),
    ) {
        let run = || {
            let mut cfg = ClientConfig::default_tls(CLIENT, SERVER, "example.org");
            cfg.kind = client_kind(kind);
            let mut client = Client::new(cfg);
            let mut rng = derive_rng(seed, 17);
            let mut now = SimTime::from_secs(1);
            let mut log = String::new();
            let a = client.process(EndpointInput::Start, now, &mut rng);
            log.push_str(&format!("{a:?}\n"));
            for (op, dt) in &script {
                now += SimDuration::from_secs(*dt);
                let a = client.process(client_input(*op), now, &mut rng);
                log.push_str(&format!("{a:?}|closed={}\n", client.is_closed()));
            }
            log
        };
        prop_assert_eq!(run(), run());
    }

    /// Same property for the server machine.
    #[test]
    fn server_endpoint_replay_is_deterministic(
        script in proptest::collection::vec((0u8..6, 0u64..3), 0..8),
        seed in any::<u64>(),
    ) {
        let run = || {
            let mut server = Server::new(ServerConfig::default_edge(SERVER, 443));
            let mut rng = derive_rng(seed, 23);
            let mut now = SimTime::from_secs(1);
            let mut log = String::new();
            let a = server.process(EndpointInput::Start, now, &mut rng);
            log.push_str(&format!("{a:?}\n"));
            for (op, dt) in &script {
                now += SimDuration::from_secs(*dt);
                let a = server.process(server_input(*op), now, &mut rng);
                log.push_str(&format!("{a:?}|closed={}\n", server.is_closed()));
            }
            log
        };
        prop_assert_eq!(run(), run());
    }
}

// ---------------------------------------------------------------------------
// Layer 3: exhaustive reachable-state enumeration
// ---------------------------------------------------------------------------

fn stage_label(s: StageState) -> &'static str {
    match stage_of(s) {
        Some(st) => st.label(),
        None => "-",
    }
}

/// Render the reachable transition graph: every state with its BFS depth
/// and assigned stage, then every edge, all sorted and stable.
fn render_graph() -> String {
    let edges = reachable_graph();
    // Recompute BFS depths from the edge list.
    let mut depth: BTreeMap<StageState, usize> = BTreeMap::new();
    depth.insert(StageState::START, 0);
    let mut frontier = vec![StageState::START];
    while !frontier.is_empty() {
        let mut next_frontier = Vec::new();
        for s in frontier {
            let d = depth[&s];
            for &(src, _, dst) in &edges {
                if src == s && !depth.contains_key(&dst) {
                    depth.insert(dst, d + 1);
                    next_frontier.push(dst);
                }
            }
        }
        frontier = next_frontier;
    }

    let states: BTreeSet<StageState> = edges.iter().map(|&(s, _, _)| s).collect();
    let mut out = String::new();
    out.push_str("# Reachable StageState transition graph (sans-IO FlowMachine).\n");
    out.push_str("# Blessed by tests/state_machine.rs; re-bless with UPDATE_GOLDEN=1.\n");
    out.push_str(&format!(
        "# {} states, {} edges, {} events\n",
        states.len(),
        edges.len(),
        Event::ALL.len()
    ));
    for s in &states {
        out.push_str(&format!(
            "state [{}] depth={} stage={}\n",
            s.label(),
            depth[s],
            stage_label(*s)
        ));
    }
    for (src, ev, dst) in &edges {
        out.push_str(&format!(
            "edge [{}] --{}--> [{}]\n",
            src.label(),
            ev.label(),
            dst.label()
        ));
    }
    out
}

#[test]
fn reachable_state_graph_matches_golden_fixture() {
    let rendered = render_graph();
    let path = fixture("state_graph.golden.txt");
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &rendered).unwrap();
    }
    let golden = std::fs::read_to_string(&path)
        .expect("tests/fixtures/state_graph.golden.txt missing — run with UPDATE_GOLDEN=1");
    assert_eq!(
        rendered, golden,
        "reachable-state graph changed; if the transition table change is \
         intentional, re-bless with UPDATE_GOLDEN=1"
    );
}

#[test]
fn transition_table_structural_invariants() {
    let edges = reachable_graph();
    let states: BTreeSet<StageState> = edges.iter().map(|&(s, _, _)| s).collect();

    // Totality: exactly one successor per (state, event).
    assert_eq!(edges.len(), states.len() * Event::ALL.len());

    // Closure: successors are themselves enumerated as sources.
    for &(_, _, dst) in &edges {
        assert!(
            states.contains(&dst),
            "open graph: {} unexplored",
            dst.label()
        );
    }

    for &s in &states {
        // A FIN before the boundary implies a FIN somewhere.
        assert!(!s.fin_before || s.fin_any, "inconsistent: {}", s.label());
        // Before any RST the two FIN bits are indistinguishable.
        assert!(
            s.rst || s.fin_before == s.fin_any,
            "inconsistent: {}",
            s.label()
        );
    }

    for &(src, ev, dst) in &edges {
        // Monotone: counters never decrease, booleans never clear.
        assert!(dst.syns >= src.syns && dst.data >= src.data && dst.acks >= src.acks);
        assert!(dst.fin_before >= src.fin_before && dst.fin_any >= src.fin_any);
        assert!(dst.rst >= src.rst);
        // Frozen means frozen: stage counters stop at the first RST.
        if src.rst {
            assert_eq!(dst.data, src.data, "data unfroze via {}", ev.label());
            assert_eq!(dst.acks, src.acks, "acks unfroze via {}", ev.label());
            assert_eq!(dst.fin_before, src.fin_before);
        }
        // SYNs keep counting regardless.
        if ev == Event::Syn {
            assert_eq!(dst.syns, src.syns.bump());
        }
        // Inert events are identities.
        if matches!(ev, Event::DupData | Event::Ignored) {
            assert_eq!(src, dst);
        }
    }

    // Depth-exhaustiveness: within |states| steps every state is seen, so
    // enumerating to that depth covers all distinguishable sequences.
    let mut seen: BTreeSet<StageState> = BTreeSet::new();
    seen.insert(StageState::START);
    for _ in 0..states.len() {
        let step: Vec<StageState> = seen
            .iter()
            .flat_map(|&s| Event::ALL.into_iter().map(move |ev| transition(s, ev)))
            .collect();
        seen.extend(step);
    }
    assert_eq!(seen, states);

    // The automaton distinguishes every stage the paper defines.
    let stages: BTreeSet<&str> = states.iter().map(|&s| stage_label(s)).collect();
    assert!(stages.len() >= 5, "stages collapsed: {stages:?}");

    // Count saturation sanity.
    assert_eq!(Count::Zero.bump(), Count::One);
    assert_eq!(Count::One.bump(), Count::Many);
    assert_eq!(Count::Many.bump(), Count::Many);
}
