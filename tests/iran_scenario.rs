//! The §5.6 case study as a test: the scripted Iran-2022 scenario must
//! reproduce the paper's qualitative findings — sharp escalation from the
//! protest onset, evening-hour peaks, mobile-ISP concentration, and
//! domination by post-handshake drops/RST+ACK injection and ⟨SYN → RST⟩.

use tamper_analysis::Collector;
use tamper_core::{ClassifierConfig, Signature};
use tamper_worldgen::{Scenario, WorldConfig, WorldSim, SEP13_2022_UNIX};

fn run_iran(sessions: u64) -> (Collector, WorldSim) {
    let sim = WorldSim::new(WorldConfig {
        sessions,
        days: 17,
        start_unix: SEP13_2022_UNIX,
        scenario: Scenario::IranProtest,
        catalog_size: 800,
        ..Default::default()
    });
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let mk = || Collector::new(ClassifierConfig::default(), 1, 17, SEP13_2022_UNIX);
    let col = sim.run_sharded(threads, mk, |c, lf| c.observe(&lf), |a, b| a.merge(b));
    (col, sim)
}

#[test]
fn blocking_escalates_after_onset() {
    let (col, _) = run_iran(60_000);
    let sig = Signature::AckNone.index();
    let day_rate = |d0: usize, d1: usize| {
        let (mut m, mut t) = (0u64, 0u64);
        for h in d0 * 24..d1 * 24 {
            m += u64::from(col.sig_hour[h][sig]);
            t += u64::from(col.hour_totals[h]);
        }
        m as f64 / t.max(1) as f64
    };
    let early = day_rate(0, 2);
    let late = day_rate(5, 17);
    assert!(
        late > 1.5 * early,
        "⟨SYN; ACK → ∅⟩ should escalate: early {early} late {late}"
    );
}

#[test]
fn evening_hours_peak() {
    let (col, sim) = run_iran(60_000);
    let tz = sim.world()[0].country.tz_offset_hours;
    let sigs = [Signature::AckNone.index(), Signature::AckRstAck.index()];
    let (mut eve_m, mut eve_t, mut day_m, mut day_t) = (0u64, 0u64, 0u64, 0u64);
    for h in 5 * 24..col.hours() {
        let local = (h as i32 + tz).rem_euclid(24);
        let m: u64 = sigs.iter().map(|&s| u64::from(col.sig_hour[h][s])).sum();
        let t = u64::from(col.hour_totals[h]);
        if (17..23).contains(&local) {
            eve_m += m;
            eve_t += t;
        } else if (6..12).contains(&local) {
            day_m += m;
            day_t += t;
        }
    }
    let eve = eve_m as f64 / eve_t.max(1) as f64;
    let morning = day_m as f64 / day_t.max(1) as f64;
    assert!(
        eve > 1.5 * morning,
        "evening {eve} should dwarf morning {morning}"
    );
}

#[test]
fn mobile_isps_carry_the_bulk() {
    let (col, _) = run_iran(60_000);
    // ASes 0 and 1 are the mobile ISPs in the scenario script.
    let mut mobile = (0u64, 0u64);
    let mut rest = (0u64, 0u64);
    for ((_, asn), &(total, matched)) in &col.as_counts {
        if *asn < 2 {
            mobile.0 += matched;
            mobile.1 += total;
        } else {
            rest.0 += matched;
            rest.1 += total;
        }
    }
    let mobile_rate = mobile.0 as f64 / mobile.1.max(1) as f64;
    let rest_rate = rest.0 as f64 / rest.1.max(1) as f64;
    assert!(
        mobile_rate > rest_rate + 0.1,
        "mobile {mobile_rate} vs rest {rest_rate}"
    );
}

#[test]
fn peak_hours_exceed_forty_percent_timeouts() {
    let (col, _) = run_iran(120_000);
    // Paper: "in certain instances, more than 40% of all connections
    // exhibited timeouts after the handshake."
    let sig = Signature::AckNone.index();
    let peak = col
        .sig_hour
        .iter()
        .zip(&col.hour_totals)
        .filter(|(_, &t)| t >= 40)
        .map(|(row, &t)| f64::from(row[sig]) / f64::from(t))
        .fold(0.0f64, f64::max);
    assert!(peak > 0.30, "peak hourly ⟨SYN; ACK → ∅⟩ rate only {peak}");
}

#[test]
fn syn_rst_is_among_the_risers() {
    let (col, _) = run_iran(60_000);
    let sig = Signature::SynRst.index();
    let total: u64 = col.sig_hour.iter().map(|r| u64::from(r[sig])).sum();
    let share = total as f64 / col.total as f64;
    assert!(share > 0.02, "⟨SYN → RST⟩ share {share}");
}
