//! Whole-pipeline fuzzing: arbitrary (valid) world configurations must
//! never panic the generator, the collector, or the classifier, and the
//! resulting flows must respect the collection invariants.

use proptest::prelude::*;
use tamper_analysis::Collector;
use tamper_core::ClassifierConfig;
use tamper_middlebox::Vendor;
use tamper_worldgen::{Category, Country, CountrySpec, Policy, ProtoFilter, WorldConfig, WorldSim};

fn arb_vendor() -> impl Strategy<Value = Vendor> {
    prop_oneof![
        Just(Vendor::SynDropAll),
        (1u8..3).prop_map(|n| Vendor::SynRst { n }),
        Just(Vendor::SynRstBoth),
        Just(Vendor::DataDropAll),
        (1u8..3).prop_map(|n| Vendor::DataDropRstAck { n }),
        Just(Vendor::PshDropAll),
        Just(Vendor::GfwMixed),
        Just(Vendor::GfwDoubleRstAck),
        (2u8..4).prop_map(|n| Vendor::AckGuessBurst { n }),
        Just(Vendor::ZeroAckPair),
        Just(Vendor::FirewallRstAck),
    ]
}

fn arb_policy() -> impl Strategy<Value = Policy> {
    (
        proptest::collection::vec((arb_vendor(), 0.0..0.2f64), 0..2),
        0.0..0.6f64,
        prop_oneof![
            Just(ProtoFilter::Any),
            Just(ProtoFilter::HttpOnly),
            Just(ProtoFilter::TlsOnly)
        ],
        proptest::collection::vec((arb_vendor(), 0.05..1.0f64), 1..3),
        proptest::collection::vec((Just(Vendor::FirewallRst), 0.0..0.1f64), 0..2),
        prop_oneof![
            Just(vec![]),
            Just(vec![(Category::AdultThemes, 0.5)]),
            Just(vec![(Category::News, 0.9), (Category::Chat, 0.2)])
        ],
        0.0..0.8f64,
        0.0..0.5f64,
    )
        .prop_map(
            |(syn_rules, dpi_blanket, dpi_filter, dpi_mix, fw_rules, coverage, amp, weekend)| {
                Policy {
                    syn_rules,
                    dpi_blanket,
                    dpi_filter,
                    dpi_enforce: 0.9,
                    dpi_mix,
                    fw_rules,
                    coverage,
                    affinity: vec![],
                    overblock_substrings: vec![],
                    diurnal_amp: amp,
                    weekend_drop: weekend,
                }
            },
        )
}

fn arb_country(idx: usize) -> impl Strategy<Value = CountrySpec> {
    (
        0.1..5.0f64,
        -11i32..13,
        0.0..0.9f64,
        1usize..12,
        0.0..1.0f64,
        0.0..0.95f64,
        arb_policy(),
    )
        .prop_map(
            move |(weight, tz, ipv6, n_ases, central, http, policy)| CountrySpec {
                country: Country {
                    code: format!("Z{idx}"),
                    weight,
                    tz_offset_hours: tz,
                    ipv6_share: ipv6,
                    n_ases,
                    centralization: central,
                    http_share: http,
                    ipv6_tamper_mult: 1.0,
                    syn_payload_mult: 1.0,
                },
                policy,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn arbitrary_worlds_run_clean(
        c0 in arb_country(0),
        c1 in arb_country(1),
        seed in any::<u64>(),
    ) {
        let sim = WorldSim::with_world(
            WorldConfig {
                seed,
                sessions: 300,
                days: 2,
                catalog_size: 300,
                ..Default::default()
            },
            vec![c0, c1],
        );
        let mut col = Collector::new(
            ClassifierConfig::default(),
            sim.world().len(),
            2,
            sim.config().start_unix,
        );
        let mut flows = 0u32;
        let mut violations: Vec<String> = Vec::new();
        sim.run(|lf| {
            // Collection invariants.
            if lf.flow.packets.is_empty() {
                violations.push("empty flow".into());
            }
            if lf.flow.packets.len() > 10 {
                violations.push(format!("{} packets", lf.flow.packets.len()));
            }
            if lf.flow.dst_port != 80 && lf.flow.dst_port != 443 {
                violations.push(format!("port {}", lf.flow.dst_port));
            }
            if lf
                .flow
                .packets
                .iter()
                .any(|p| p.ts_sec < sim.config().start_unix)
            {
                violations.push("timestamp before epoch".into());
            }
            col.observe(&lf);
            flows += 1;
        });
        prop_assert!(violations.is_empty(), "{violations:?}");
        prop_assert!(flows > 250, "only {flows} flows emerged");
        // The collector's books balance.
        let class_sum: u64 = col.country_class.iter().flat_map(|c| c.iter()).sum();
        prop_assert_eq!(class_sum, col.total);
        prop_assert!(col.possibly_tampered <= col.total);
    }
}
