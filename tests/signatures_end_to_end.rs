//! The headline correctness property of the reproduction: each middlebox
//! vendor profile, deployed on a real simulated session and observed
//! through the constrained collection pipeline, classifies as exactly the
//! Table 1 signature the paper associates with that behaviour.

use std::net::{IpAddr, Ipv4Addr};
use tamper_capture::{collect, CollectorConfig};
use tamper_core::{classify, ClassifierConfig, Signature};
use tamper_middlebox::{RuleSet, Vendor};
use tamper_netsim::{
    derive_rng, run_session, ClientConfig, Link, Path, RequestPayload, ServerConfig, SessionParams,
    SimDuration, SimTime,
};
use tamper_worldgen::FIREWALL_KEYWORD;

const CLIENT: IpAddr = IpAddr::V4(Ipv4Addr::new(203, 0, 113, 50));
const SERVER: IpAddr = IpAddr::V4(Ipv4Addr::new(198, 51, 100, 1));
const BLOCKED: &str = "blocked.example.com";

fn run_with_vendor(vendor: Vendor, request: RequestPayload, seed: u64) -> Option<Signature> {
    let mut cfg = ClientConfig::default_tls(CLIENT, SERVER, BLOCKED);
    cfg.request = request;
    let server = ServerConfig::default_edge(SERVER, cfg.dst_port);

    let rules = if vendor.stages().on_syn {
        RuleSet::blanket()
    } else if vendor.stages().on_later_data {
        let mut r = RuleSet::default();
        r.keywords.push(FIREWALL_KEYWORD.to_owned());
        r
    } else {
        RuleSet::domains([BLOCKED])
    };
    let mut path = Path {
        links: vec![
            Link::new(SimDuration::from_millis(8), 4),
            Link::new(SimDuration::from_millis(35), 9),
        ],
        hops: vec![Box::new(vendor.build(rules))],
    };
    let mut rng = derive_rng(seed, 1);
    let trace = run_session(
        SessionParams::new(cfg, server, SimTime::from_secs(50)),
        &mut path,
        &mut rng,
    );
    assert!(
        trace.was_tampered(),
        "{vendor:?}: middlebox never fired (trace had {} inbound packets)",
        trace.inbound().count()
    );
    let mut crng = derive_rng(seed, 2);
    let flow = collect(&trace, &CollectorConfig::default(), &mut crng)
        .expect("flow must have inbound packets");
    classify(&flow, &ClassifierConfig::default()).signature()
}

fn tls_request() -> RequestPayload {
    RequestPayload::TlsClientHello {
        sni: BLOCKED.to_owned(),
    }
}

fn two_request() -> RequestPayload {
    RequestPayload::HttpTwo {
        host: BLOCKED.to_owned(),
        path1: "/".to_owned(),
        path2: format!("/post?tag={FIREWALL_KEYWORD}"),
        user_agent: "test-agent/1.0".to_owned(),
    }
}

/// The full vendor → signature table. This is Table 1 regenerated from
/// behaviour rather than asserted by construction.
#[test]
fn every_vendor_regenerates_its_table1_signature() {
    use Signature::*;
    use Vendor as V;
    let cases: Vec<(Vendor, RequestPayload, Signature)> = vec![
        (V::SynDropAll, tls_request(), SynNone),
        (V::SynRst { n: 1 }, tls_request(), SynRst),
        (V::SynRstAck { n: 1 }, tls_request(), SynRstAck),
        (V::SynRstBoth, tls_request(), SynRstBoth),
        (V::DataDropAll, tls_request(), AckNone),
        (V::DataDropRst { n: 1 }, tls_request(), AckRst),
        (V::DataDropRst { n: 2 }, tls_request(), AckRstRst),
        (V::DataDropRstAck { n: 1 }, tls_request(), AckRstAck),
        (V::DataDropRstAck { n: 2 }, tls_request(), AckRstAckRstAck),
        (V::PshDropAll, tls_request(), PshNone),
        (V::PshRst, tls_request(), PshRst),
        (V::PshRstAck, tls_request(), PshRstAck),
        (V::GfwMixed, tls_request(), PshRstRstAck),
        (V::GfwDoubleRstAck, tls_request(), PshRstAckRstAck),
        (V::SameAckBurst { n: 2 }, tls_request(), PshRstEq),
        (V::AckGuessBurst { n: 3 }, tls_request(), PshRstNeq),
        (V::ZeroAckPair, tls_request(), PshRstZero),
        (V::FirewallRst, two_request(), DataRst),
        (V::FirewallRstAck, two_request(), DataRstAck),
    ];
    assert_eq!(cases.len(), 19, "one case per Table 1 signature");
    let mut seen = std::collections::HashSet::new();
    for (vendor, request, expected) in cases {
        let got = run_with_vendor(vendor, request, 42);
        assert_eq!(
            got,
            Some(expected),
            "vendor {vendor:?} should classify as {expected}"
        );
        seen.insert(expected);
    }
    assert_eq!(seen.len(), 19, "all 19 signatures covered");
}

/// The same sessions must classify identically across seeds (the mapping
/// is structural, not a fluke of one RNG stream).
#[test]
fn vendor_signatures_are_seed_independent() {
    for seed in [1, 7, 1234, 98765] {
        assert_eq!(
            run_with_vendor(Vendor::GfwDoubleRstAck, tls_request(), seed),
            Some(Signature::PshRstAckRstAck),
            "seed {seed}"
        );
        assert_eq!(
            run_with_vendor(Vendor::DataDropAll, tls_request(), seed),
            Some(Signature::AckNone),
            "seed {seed}"
        );
        assert_eq!(
            run_with_vendor(Vendor::FirewallRstAck, two_request(), seed),
            Some(Signature::DataRstAck),
            "seed {seed}"
        );
    }
}

/// HTTP-carried requests trigger Host-header DPI just like SNI.
#[test]
fn http_host_triggers_like_sni() {
    let request = RequestPayload::HttpGet {
        host: BLOCKED.to_owned(),
        path: "/".to_owned(),
        user_agent: "test".to_owned(),
    };
    let mut cfg = ClientConfig::default_tls(CLIENT, SERVER, BLOCKED);
    cfg.dst_port = 80;
    cfg.request = request;
    let server = ServerConfig::default_edge(SERVER, 80);
    let mut path = Path {
        links: vec![
            Link::new(SimDuration::from_millis(8), 4),
            Link::new(SimDuration::from_millis(35), 9),
        ],
        hops: vec![Box::new(
            Vendor::GfwMixed.build(RuleSet::domains([BLOCKED])),
        )],
    };
    let mut rng = derive_rng(11, 1);
    let trace = run_session(
        SessionParams::new(cfg, server, SimTime::ZERO),
        &mut path,
        &mut rng,
    );
    assert!(trace.was_tampered());
    let mut crng = derive_rng(11, 2);
    let flow = collect(&trace, &CollectorConfig::default(), &mut crng).unwrap();
    let analysis = classify(&flow, &ClassifierConfig::default());
    assert_eq!(analysis.signature(), Some(Signature::PshRstRstAck));
    // The trigger domain is recoverable from the captured payload.
    assert_eq!(analysis.trigger.domain.as_deref(), Some(BLOCKED));
}

/// An unblocked domain through the same middleboxes is untouched.
#[test]
fn unblocked_domains_pass_clean() {
    for vendor in [Vendor::GfwMixed, Vendor::DataDropAll, Vendor::PshRstAck] {
        let mut cfg = ClientConfig::default_tls(CLIENT, SERVER, "innocent.example.org");
        cfg.request = RequestPayload::TlsClientHello {
            sni: "innocent.example.org".to_owned(),
        };
        let server = ServerConfig::default_edge(SERVER, 443);
        let mut path = Path {
            links: vec![
                Link::new(SimDuration::from_millis(8), 4),
                Link::new(SimDuration::from_millis(35), 9),
            ],
            hops: vec![Box::new(vendor.build(RuleSet::domains([BLOCKED])))],
        };
        let mut rng = derive_rng(13, 1);
        let trace = run_session(
            SessionParams::new(cfg, server, SimTime::ZERO),
            &mut path,
            &mut rng,
        );
        assert!(!trace.was_tampered(), "{vendor:?} fired on innocent domain");
        let mut crng = derive_rng(13, 2);
        let flow = collect(&trace, &CollectorConfig::default(), &mut crng).unwrap();
        let analysis = classify(&flow, &ClassifierConfig::default());
        assert_eq!(
            analysis.classification,
            tamper_core::Classification::NotTampered,
            "{vendor:?}"
        );
    }
}
