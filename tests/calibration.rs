//! Calibration tests: the simulated world, observed through the full
//! pipeline, must land inside bands around the paper's headline numbers.
//! Bands are deliberately loose (the sample is small and the substrate is
//! synthetic); the *shape* assertions — orderings, dominances — are the
//! real content.

use tamper_analysis::{report, Collector};
use tamper_core::{ClassifierConfig, Signature, Stage};
use tamper_worldgen::{country_index, WorldConfig, WorldSim};

fn run_world(sessions: u64) -> (Collector, WorldSim) {
    let sim = WorldSim::new(WorldConfig {
        sessions,
        days: 3,
        catalog_size: 1500,
        ..Default::default()
    });
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let mk = || {
        Collector::new(
            ClassifierConfig::default(),
            sim.world().len(),
            3,
            sim.config().start_unix,
        )
    };
    let col = sim.run_sharded(threads, mk, |c, lf| c.observe(&lf), |a, b| a.merge(b));
    (col, sim)
}

#[test]
fn headline_rates_match_paper_bands() {
    let (col, _) = run_world(60_000);
    // Paper §4.1: 25.7% of connections are possibly tampered.
    let pt = col.possibly_tampered as f64 / col.total as f64;
    assert!((0.20..0.31).contains(&pt), "possibly tampered {pt}");

    // Stage shares of possibly tampered: 43.2 / 16.1 / 5.3 / 33.0 / 2.3.
    let shares: Vec<f64> = (0..4)
        .map(|i| col.stage_counts[i] as f64 / col.possibly_tampered as f64)
        .collect();
    assert!(
        (0.33..0.50).contains(&shares[0]),
        "Post-SYN share {}",
        shares[0]
    );
    assert!(
        (0.10..0.24).contains(&shares[1]),
        "Post-ACK share {}",
        shares[1]
    );
    assert!(
        (0.03..0.14).contains(&shares[2]),
        "Post-PSH share {}",
        shares[2]
    );
    assert!(
        (0.25..0.42).contains(&shares[3]),
        "Post-Data share {}",
        shares[3]
    );

    // Overall signature coverage: paper 86.9%.
    let matched: u64 = col.stage_matched.iter().sum();
    let coverage = matched as f64 / col.possibly_tampered as f64;
    assert!((0.80..0.95).contains(&coverage), "coverage {coverage}");

    // Per-stage coverage ordering: Post-Data is the least covered stage
    // (paper: 69.2% vs ≥ 97.9% elsewhere).
    let stage_cov = |i: usize| col.stage_matched[i] as f64 / col.stage_counts[i] as f64;
    for i in 0..3 {
        assert!(
            stage_cov(3) < stage_cov(i),
            "Post-Data coverage should be the lowest"
        );
    }
}

#[test]
fn country_ordering_matches_figure4() {
    let (col, sim) = run_world(120_000);
    let rate = |code: &str| {
        let c = country_index(sim.world(), code).unwrap() as usize;
        let total = col.country_total(c);
        assert!(total > 0, "{code} had no flows");
        col.country_matched(c) as f64 / total as f64
    };
    // Turkmenistan leads by a wide margin (paper: 84%).
    let tm = rate("TM");
    assert!(tm > 0.6, "TM {tm}");
    for code in ["PE", "UZ", "RU", "CN", "US", "DE"] {
        assert!(tm > rate(code), "TM should exceed {code}");
    }
    // Heavy > medium > light orderings.
    assert!(rate("PE") > rate("CN"), "PE > CN");
    assert!(rate("UZ") > rate("US"), "UZ > US");
    assert!(rate("CN") > rate("DE"), "CN > DE");
    // The US/DE floor is the benign-anomaly population, nonzero but low.
    assert!((0.08..0.30).contains(&rate("US")), "US {}", rate("US"));
}

#[test]
fn turkmenistan_dominated_by_post_ack_rst_on_http_only() {
    let (col, sim) = run_world(120_000);
    let tm = country_index(sim.world(), "TM").unwrap() as usize;
    let total = col.country_total(tm);
    let ack_rst = col.country_class[tm][Signature::AckRst.index()];
    // Paper: 66.4% of TM's tampered connections are ⟨SYN; ACK → RST⟩.
    let matched = col.country_matched(tm);
    assert!(
        ack_rst as f64 / matched as f64 > 0.4,
        "TM AckRst {ack_rst}/{matched}"
    );
    assert!(total > 100);
    // Figure 7(b): HTTP heavily tampered, TLS nearly untouched.
    let [(http_t, http_m), (tls_t, tls_m)] = col.country_proto[tm];
    // Post-PSH matters little for TM (drop-based); use the full class
    // split instead: compare overall proto totals via Post-ACK+PSH view.
    let _ = (http_t, http_m, tls_t, tls_m);
    let [(v4_t, _), (v6_t, _)] = col.country_ipver[tm];
    assert!(v4_t + v6_t == total);
}

#[test]
fn gfw_signatures_are_chinese() {
    let (col, sim) = run_world(120_000);
    let cn = country_index(sim.world(), "CN").unwrap() as usize;
    for sig in [
        Signature::PshRstAckRstAck,
        Signature::PshRstRstAck,
        Signature::SynRstBoth,
    ] {
        let total = col.signature_total(sig);
        let from_cn = col.country_class[cn][sig.index()];
        assert!(total > 0, "{sig} never observed");
        assert!(
            from_cn as f64 / total as f64 > 0.9,
            "{sig} should be ≥90% Chinese: {from_cn}/{total}"
        );
    }
}

#[test]
fn korean_isp_owns_ack_guessing() {
    let (col, sim) = run_world(120_000);
    let kr = country_index(sim.world(), "KR").unwrap() as usize;
    let sig = Signature::PshRstNeq;
    let total = col.signature_total(sig);
    let from_kr = col.country_class[kr][sig.index()];
    assert!(total > 0);
    assert!(
        from_kr as f64 / total as f64 > 0.7,
        "⟨PSH+ACK → RST ≠ RST⟩ should be dominated by KR: {from_kr}/{total}"
    );
}

#[test]
fn ipv4_ipv6_slope_near_unity_with_outliers() {
    let (col, sim) = run_world(150_000);
    // Paper Figure 7(a): slope 0.92 — tampering mostly version-blind.
    let world = sim.world();
    let mut points = Vec::new();
    for c in 0..world.len() {
        let [(t4, m4), (t6, m6)] = col.country_ipver[c];
        if t4 >= 150 && t6 >= 150 {
            points.push((100.0 * m4 as f64 / t4 as f64, 100.0 * m6 as f64 / t6 as f64));
        }
    }
    let slope = tamper_analysis::slope_through_origin(&points);
    // 0.92 at full scale; the band is wide because per-country v6
    // samples are small at this session count.
    assert!(
        (0.7..1.3).contains(&slope),
        "v4/v6 slope {slope} (n={})",
        points.len()
    );
    // Outliers: Sri Lanka tampers IPv6 less, Kenya more.
    let rate = |code: &str, v6: usize| {
        let c = country_index(world, code).unwrap() as usize;
        let (t, m) = col.country_ipver[c][v6];
        m as f64 / t.max(1) as f64
    };
    assert!(rate("LK", 0) > rate("LK", 1), "LK v4 should exceed v6");
    assert!(rate("KE", 1) > rate("KE", 0), "KE v6 should exceed v4");
}

#[test]
fn ground_truth_recall_high() {
    let (col, _) = run_world(60_000);
    assert!(col.truth.recall() > 0.97, "recall {}", col.truth.recall());
    // Most truly tampered flows match a *specific* signature too.
    let sig_rate = col.truth.matched_signature as f64 / col.truth.true_positive as f64;
    assert!(
        sig_rate > 0.9,
        "signature rate on true positives {sig_rate}"
    );
}

#[test]
fn diurnal_night_peaks() {
    let (col, sim) = run_world(150_000);
    // Figure 6: tampering share peaks between midnight and 8 AM local.
    for code in ["CN", "IR", "IN"] {
        let (night, day) = report::diurnal_contrast(&col.view(), &sim, code).unwrap();
        assert!(night > day, "{code}: night {night} should exceed day {day}");
    }
}

#[test]
fn stage_share_helper_consistency() {
    let (col, _) = run_world(30_000);
    let sum: f64 = [
        Stage::PostSyn,
        Stage::PostAck,
        Stage::PostPsh,
        Stage::PostData,
    ]
    .iter()
    .map(|s| report::stage_share(&col.view(), *s))
    .sum();
    assert!((0.9..=1.0).contains(&sum), "stage shares sum {sum}");
}
