//! The limits of passive detection, as code.
//!
//! Two blind spots the paper itself identifies:
//!
//! 1. §6: a censor that hijacks the connection — cutting the client off
//!    while impersonating it to the server — leaves a perfectly graceful
//!    server-side trace. Our classifier (correctly per its spec) calls it
//!    Not Tampered, even though the ground truth says a middlebox fired.
//! 2. §4.3: injectors that copy the client's IP-ID/TTL defeat the
//!    header-discontinuity *evidence* — but not the signature itself.

use std::net::{IpAddr, Ipv4Addr};
use tamper_capture::{collect, CollectorConfig};
use tamper_core::{classify, Classification, ClassifierConfig, Signature};
use tamper_core::{max_rst_ipid_delta, max_rst_ttl_delta};
use tamper_middlebox::{InjectorStack, RuleSet, StealthHijacker, Vendor};
use tamper_netsim::{
    derive_rng, run_session, ClientConfig, Link, Path, ServerConfig, SessionParams, SimDuration,
    SimTime,
};

const CLIENT: IpAddr = IpAddr::V4(Ipv4Addr::new(203, 0, 113, 60));
const SERVER: IpAddr = IpAddr::V4(Ipv4Addr::new(198, 51, 100, 1));
const BLOCKED: &str = "blocked.example.com";

fn links() -> Vec<Link> {
    vec![
        Link::new(SimDuration::from_millis(8), 4),
        Link::new(SimDuration::from_millis(35), 9),
    ]
}

/// Blind spot 1: the stealth hijack evades signature detection entirely.
#[test]
fn stealth_hijack_is_invisible_to_the_classifier() {
    let cfg = ClientConfig::default_tls(CLIENT, SERVER, BLOCKED);
    let server = ServerConfig::default_edge(SERVER, 443);
    let mut path = Path {
        links: links(),
        hops: vec![Box::new(StealthHijacker::new(RuleSet::domains([BLOCKED])))],
    };
    let mut rng = derive_rng(55, 1);
    let trace = run_session(
        SessionParams::new(cfg, server, SimTime::from_secs(5)),
        &mut path,
        &mut rng,
    );
    // Ground truth: the middlebox fired and the client got nothing.
    assert!(trace.was_tampered());
    // Server-side view: a graceful connection with a FIN handshake.
    let mut crng = derive_rng(55, 2);
    let flow = collect(&trace, &CollectorConfig::default(), &mut crng).unwrap();
    assert!(
        flow.packets.iter().any(|p| p.flags.has_fin()),
        "hijacker must close gracefully"
    );
    assert!(
        !flow.packets.iter().any(|p| p.flags.has_rst()),
        "no tear-down visible"
    );
    let analysis = classify(&flow, &ClassifierConfig::default());
    assert_eq!(
        analysis.classification,
        Classification::NotTampered,
        "the paper's predicted blind spot: hijacking evades passive detection"
    );
}

/// The hijacker is still constrained: it must be in-path (it drops
/// packets), which the paper notes is uncommon at country scale.
#[test]
fn stealth_hijack_cuts_the_client_off() {
    let cfg = ClientConfig::default_tls(CLIENT, SERVER, BLOCKED);
    let server = ServerConfig::default_edge(SERVER, 443);
    let mut path = Path {
        links: links(),
        hops: vec![Box::new(StealthHijacker::new(RuleSet::domains([BLOCKED])))],
    };
    let mut rng = derive_rng(56, 1);
    let trace = run_session(
        SessionParams::new(cfg, server, SimTime::ZERO),
        &mut path,
        &mut rng,
    );
    // The client never receives a single byte of response data.
    let client_data = trace
        .packets
        .iter()
        .filter(|tp| tp.dir == tamper_netsim::Direction::ToClient)
        .filter(|tp| !tp.packet.payload.is_empty())
        .count();
    assert_eq!(client_data, 0, "client must be fully cut off");
}

/// Blind spot 2: a stealthy injector stack (copied TTL, zero IP-ID)
/// silences the §4.3 evidence — but the signature still matches, which is
/// exactly why the paper treats IP-ID/TTL only as *supporting* evidence.
#[test]
fn stealthy_injector_defeats_evidence_but_not_signatures() {
    let run = |stack: InjectorStack, seed: u64| {
        let mut cfg = ClientConfig::default_tls(CLIENT, SERVER, BLOCKED);
        // A zero-IP-ID client (a third of the real population): the
        // stealthy injector's zeroed IP-ID blends right in.
        cfg.ip_id = tamper_netsim::IpIdMode::Zero;
        let server = ServerConfig::default_edge(SERVER, 443);
        let mut path = Path {
            links: links(),
            hops: vec![Box::new(
                Vendor::GfwDoubleRstAck.build_with_stack(RuleSet::domains([BLOCKED]), stack),
            )],
        };
        let mut rng = derive_rng(seed, 1);
        let trace = run_session(
            SessionParams::new(cfg, server, SimTime::ZERO),
            &mut path,
            &mut rng,
        );
        let mut crng = derive_rng(seed, 2);
        collect(&trace, &CollectorConfig::default(), &mut crng).unwrap()
    };

    // Typical injector: loud evidence (random IP-ID against a zeroed
    // client counter, distinct fixed TTL).
    let loud = run(InjectorStack::typical(), 77);
    let loud_analysis = classify(&loud, &ClassifierConfig::default());
    assert_eq!(loud_analysis.signature(), Some(Signature::PshRstAckRstAck));
    assert!(max_rst_ipid_delta(&loud).is_some_and(|d| d > 100));

    // Stealthy injector: same signature, silent evidence.
    let quiet = run(InjectorStack::stealthy(), 78);
    let quiet_analysis = classify(&quiet, &ClassifierConfig::default());
    assert_eq!(
        quiet_analysis.signature(),
        Some(Signature::PshRstAckRstAck),
        "flag-sequence detection is independent of header quirks"
    );
    assert!(
        max_rst_ipid_delta(&quiet).is_none_or(|d| d <= 1),
        "copied IP-ID leaves no discontinuity"
    );
    assert!(
        max_rst_ttl_delta(&quiet).is_none_or(|d| d.abs() <= 1),
        "copied TTL leaves no discontinuity"
    );
}
