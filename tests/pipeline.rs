//! Pipeline equivalence and ablation tests: the pcap round-trip matches
//! direct collection, the sampler preserves proportions (ablation A5),
//! timestamp quantization does not change verdicts (ablation A3), and the
//! 10-packet window ablation behaves as DESIGN.md predicts (A2).

use std::net::{IpAddr, Ipv4Addr};
use tamper_analysis::Collector;
use tamper_capture::{
    collect, flows_from_records, CollectorConfig, OfflineConfig, PcapRecord, Sampler,
};
use tamper_core::{classify, ClassifierConfig, Signature, Stage};
use tamper_middlebox::{RuleSet, Vendor};
use tamper_netsim::{
    derive_rng, run_session, ClientConfig, Link, Path, ServerConfig, SessionParams, SimDuration,
    SimTime,
};
use tamper_worldgen::{WorldConfig, WorldSim};

fn tampered_trace(vendor: Vendor, seed: u64) -> tamper_netsim::SessionTrace {
    let client = IpAddr::V4(Ipv4Addr::new(203, 0, 113, 77));
    let server = IpAddr::V4(Ipv4Addr::new(198, 51, 100, 1));
    let cfg = ClientConfig::default_tls(client, server, "blocked.example.com");
    let mut path = Path {
        links: vec![
            Link::new(SimDuration::from_millis(10), 4),
            Link::new(SimDuration::from_millis(40), 9),
        ],
        hops: vec![Box::new(
            vendor.build(RuleSet::domains(["blocked.example.com"])),
        )],
    };
    let mut rng = derive_rng(seed, 0);
    run_session(
        SessionParams::new(
            cfg,
            ServerConfig::default_edge(server, 443),
            SimTime::from_secs(10),
        ),
        &mut path,
        &mut rng,
    )
}

/// Writing inbound packets to pcap and re-ingesting them gives the same
/// classification as the direct in-memory pipeline.
#[test]
fn pcap_round_trip_classifies_identically() {
    for (vendor, seed) in [
        (Vendor::GfwDoubleRstAck, 3u64),
        (Vendor::ZeroAckPair, 4),
        (Vendor::DataDropAll, 5),
        (Vendor::PshRstAck, 6),
    ] {
        let trace = tampered_trace(vendor, seed);
        // Direct collection (no shuffle so the comparison is exact).
        let direct_cfg = CollectorConfig {
            shuffle_within_second: false,
            ..Default::default()
        };
        let mut crng = derive_rng(seed, 1);
        let direct = collect(&trace, &direct_cfg, &mut crng).unwrap();
        let direct_class = classify(&direct, &ClassifierConfig::default()).classification;

        // Pcap round-trip.
        let records: Vec<PcapRecord> = trace
            .inbound()
            .map(|tp| PcapRecord {
                ts_sec: tp.time.as_secs() as u32,
                ts_usec: ((tp.time.as_nanos() % 1_000_000_000) / 1000) as u32,
                frame: tp.packet.emit().to_vec(),
            })
            .collect();
        let (flows, stats) = flows_from_records(&records, &OfflineConfig::default());
        assert_eq!(flows.len(), 1, "{vendor:?}");
        assert_eq!(stats.unparsable, 0);
        let offline_class = classify(&flows[0], &ClassifierConfig::default()).classification;
        assert_eq!(direct_class, offline_class, "{vendor:?}");
    }
}

/// Ablation A3: exact (nanosecond) timestamps and quantized 1-second
/// timestamps yield identical classifications — order reconstruction from
/// headers recovers everything quantization loses.
#[test]
fn quantization_ablation_preserves_verdicts() {
    let vendors = [
        Vendor::GfwMixed,
        Vendor::SameAckBurst { n: 3 },
        Vendor::DataDropRstAck { n: 2 },
        Vendor::FirewallRst,
        Vendor::SynRstBoth,
    ];
    for (i, vendor) in vendors.into_iter().enumerate() {
        let request = if vendor.stages().on_later_data {
            tamper_netsim::RequestPayload::HttpTwo {
                host: "blocked.example.com".into(),
                path1: "/".into(),
                path2: format!("/x?q={}", tamper_worldgen::FIREWALL_KEYWORD),
                user_agent: "ua".into(),
            }
        } else {
            tamper_netsim::RequestPayload::TlsClientHello {
                sni: "blocked.example.com".into(),
            }
        };
        let rules = if vendor.stages().on_syn {
            RuleSet::blanket()
        } else if vendor.stages().on_later_data {
            let mut r = RuleSet::default();
            r.keywords.push(tamper_worldgen::FIREWALL_KEYWORD.into());
            r
        } else {
            RuleSet::domains(["blocked.example.com"])
        };
        let client = IpAddr::V4(Ipv4Addr::new(203, 0, 113, 80));
        let server = IpAddr::V4(Ipv4Addr::new(198, 51, 100, 1));
        let mut cfg = ClientConfig::default_tls(client, server, "blocked.example.com");
        cfg.request = request;
        let mut path = Path {
            links: vec![
                Link::new(SimDuration::from_millis(10), 4),
                Link::new(SimDuration::from_millis(40), 9),
            ],
            hops: vec![Box::new(vendor.build(rules))],
        };
        let mut rng = derive_rng(100 + i as u64, 0);
        let trace = run_session(
            SessionParams::new(cfg, ServerConfig::default_edge(server, 443), SimTime::ZERO),
            &mut path,
            &mut rng,
        );

        let quantized_cfg = CollectorConfig::default();
        let exact_cfg = CollectorConfig {
            quantize_timestamps: false,
            shuffle_within_second: false,
            ..Default::default()
        };
        let mut r1 = derive_rng(200, i as u64);
        let mut r2 = derive_rng(201, i as u64);
        let q = collect(&trace, &quantized_cfg, &mut r1).unwrap();
        let e = collect(&trace, &exact_cfg, &mut r2).unwrap();
        let cq = classify(&q, &ClassifierConfig::default()).classification;
        let ce = classify(&e, &ClassifierConfig::default()).classification;
        assert_eq!(cq, ce, "{vendor:?}: quantization changed the verdict");
    }
}

/// Ablation A2: shrinking the packet window below the teardown position
/// hides Post-Data tampering (the paper's rationale for 10 packets).
#[test]
fn packet_window_ablation_hides_late_tampering() {
    let client = IpAddr::V4(Ipv4Addr::new(203, 0, 113, 81));
    let server = IpAddr::V4(Ipv4Addr::new(198, 51, 100, 1));
    let mut cfg = ClientConfig::default_tls(client, server, "x");
    cfg.request = tamper_netsim::RequestPayload::HttpTwo {
        host: "site.example".into(),
        path1: "/".into(),
        path2: format!("/x?q={}", tamper_worldgen::FIREWALL_KEYWORD),
        user_agent: "ua".into(),
    };
    cfg.dst_port = 80;
    let mut rules = RuleSet::default();
    rules
        .keywords
        .push(tamper_worldgen::FIREWALL_KEYWORD.into());
    let mut path = Path {
        links: vec![
            Link::new(SimDuration::from_millis(10), 4),
            Link::new(SimDuration::from_millis(40), 9),
        ],
        hops: vec![Box::new(Vendor::FirewallRstAck.build(rules))],
    };
    let mut rng = derive_rng(300, 0);
    let trace = run_session(
        SessionParams::new(cfg, ServerConfig::default_edge(server, 80), SimTime::ZERO),
        &mut path,
        &mut rng,
    );
    let classify_with_window = |max_packets: usize| {
        let cfg = CollectorConfig {
            max_packets,
            shuffle_within_second: false,
            ..Default::default()
        };
        let mut crng = derive_rng(301, max_packets as u64);
        let flow = collect(&trace, &cfg, &mut crng).unwrap();
        classify(&flow, &ClassifierConfig::default())
    };
    let full = classify_with_window(10);
    assert_eq!(full.signature(), Some(Signature::DataRstAck));
    let narrow = classify_with_window(4);
    assert_ne!(
        narrow.signature(),
        Some(Signature::DataRstAck),
        "a 4-packet window cannot see the Post-Data teardown"
    );
}

/// Ablation A5: sampling 1-in-N preserves the headline proportions.
#[test]
fn sampling_ablation_preserves_proportions() {
    let make = |denominator: u64| {
        let sim = WorldSim::new(WorldConfig {
            sessions: if denominator == 1 { 25_000 } else { 250_000 },
            days: 2,
            catalog_size: 800,
            sample_denominator: denominator,
            ..Default::default()
        });
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        sim.run_sharded(
            threads,
            || {
                Collector::new(
                    ClassifierConfig::default(),
                    sim.world().len(),
                    2,
                    sim.config().start_unix,
                )
            },
            |c, lf| c.observe(&lf),
            |a, b| a.merge(b),
        )
    };
    let full = make(1);
    let sampled = make(10);
    // 250k generated at 1-in-10 yields about as many kept flows as the
    // unsampled 25k run — i.e. the sampler really dropped ~90%.
    let ratio = sampled.total as f64 / full.total as f64;
    assert!((0.8..1.25).contains(&ratio), "sample ratio {ratio}");
    // ...but the possibly-tampered proportion is stable.
    let p_full = full.possibly_tampered as f64 / full.total as f64;
    let p_sampled = sampled.possibly_tampered as f64 / sampled.total as f64;
    assert!(
        (p_full - p_sampled).abs() < 0.03,
        "full {p_full} vs sampled {p_sampled}"
    );
    // Stage shares stay within a few points too.
    for stage in [Stage::PostSyn, Stage::PostData] {
        let s_full = tamper_analysis::report::stage_share(&full.view(), stage);
        let s_sampled = tamper_analysis::report::stage_share(&sampled.view(), stage);
        assert!(
            (s_full - s_sampled).abs() < 0.06,
            "{stage:?}: {s_full} vs {s_sampled}"
        );
    }
}

/// The deterministic sampler keeps roughly 1/N of connections.
#[test]
fn sampler_rate_sanity() {
    let s = Sampler::new(99, 10_000);
    let total = 2_000_000u64;
    let kept = (0..total)
        .filter(|&i| {
            s.keep(
                IpAddr::V4(Ipv4Addr::from(0x0A00_0000 + (i % 700_000) as u32)),
                IpAddr::V4(Ipv4Addr::new(198, 51, 100, 1)),
                (i % 60_000) as u16,
                i,
            )
        })
        .count() as f64;
    let rate = kept / total as f64;
    assert!(
        (rate - 1e-4).abs() < 4e-5,
        "1-in-10k sampler rate was {rate}"
    );
}
