//! Property-based tests over the core data structures and invariants:
//! wire-format round-trips on arbitrary packets, order-reconstruction
//! invariance (the paper's claim that 1-second out-of-order logs are
//! recoverable), and classifier robustness.

use bytes::Bytes;
use proptest::prelude::*;
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr};
use tamper_capture::{FlowRecord, PacketRecord};
use tamper_core::{classify, reconstruct_order, ClassifierConfig};
use tamper_wire::{Packet, PacketBuilder, TcpFlags, TcpHeader, TcpOption};

fn arb_flags() -> impl Strategy<Value = TcpFlags> {
    // Any combination of the six classic flags.
    (0u8..64).prop_map(TcpFlags::from_bits)
}

fn arb_v4() -> impl Strategy<Value = IpAddr> {
    any::<u32>().prop_map(|v| IpAddr::V4(Ipv4Addr::from(v)))
}

fn arb_v6() -> impl Strategy<Value = IpAddr> {
    any::<u128>().prop_map(|v| IpAddr::V6(Ipv6Addr::from(v)))
}

fn arb_options() -> impl Strategy<Value = Vec<TcpOption>> {
    prop_oneof![
        Just(Vec::new()),
        Just(TcpHeader::standard_syn_options()),
        (any::<u16>(), any::<u8>()).prop_map(|(mss, ws)| vec![
            TcpOption::Mss(mss),
            TcpOption::WindowScale(ws & 14),
            TcpOption::SackPermitted,
        ]),
        (any::<u32>(), any::<u32>()).prop_map(|(tsval, tsecr)| vec![
            TcpOption::Nop,
            TcpOption::Nop,
            TcpOption::Timestamps { tsval, tsecr },
        ]),
    ]
}

proptest! {
    /// Every packet we can build emits to a frame that parses back to an
    /// equal packet (module the computed total-length field).
    #[test]
    fn wire_round_trip_v4(
        src in arb_v4(),
        dst in arb_v4(),
        sport in any::<u16>(),
        dport in any::<u16>(),
        seq in any::<u32>(),
        ack in any::<u32>(),
        flags in arb_flags(),
        ttl in 1u8..=255,
        ip_id in any::<u16>(),
        window in any::<u16>(),
        options in arb_options(),
        payload in proptest::collection::vec(any::<u8>(), 0..600),
    ) {
        let pkt = PacketBuilder::new(src, dst, sport, dport)
            .seq(seq)
            .ack(ack)
            .flags(flags)
            .ttl(ttl)
            .ip_id(ip_id)
            .window(window)
            .options(options)
            .payload(Bytes::from(payload))
            .build();
        let frame = pkt.emit();
        let parsed = Packet::parse(&frame).expect("emitted frame must parse");
        prop_assert_eq!(parsed.tcp.seq, pkt.tcp.seq);
        prop_assert_eq!(parsed.tcp.ack, pkt.tcp.ack);
        prop_assert_eq!(parsed.tcp.flags, pkt.tcp.flags);
        prop_assert_eq!(parsed.tcp.src_port, pkt.tcp.src_port);
        prop_assert_eq!(parsed.ip.ttl(), ttl);
        prop_assert_eq!(parsed.ip.ip_id(), Some(ip_id));
        prop_assert_eq!(&parsed.payload[..], &pkt.payload[..]);
    }

    /// Same for IPv6 (no IP-ID there).
    #[test]
    fn wire_round_trip_v6(
        src in arb_v6(),
        dst in arb_v6(),
        flags in arb_flags(),
        ttl in 1u8..=255,
        payload in proptest::collection::vec(any::<u8>(), 0..300),
    ) {
        let pkt = PacketBuilder::new(src, dst, 1234, 443)
            .flags(flags)
            .ttl(ttl)
            .payload(Bytes::from(payload))
            .build();
        let parsed = Packet::parse(&pkt.emit()).expect("parse");
        prop_assert_eq!(parsed.ip.ip_id(), None);
        prop_assert_eq!(parsed.ip.ttl(), ttl);
        prop_assert_eq!(parsed.tcp.flags, pkt.tcp.flags);
    }

    /// Corrupting any single byte of a frame never panics the parser, and
    /// is either rejected or yields a packet (checksums catch most flips).
    #[test]
    fn corrupted_frames_never_panic(
        flip_at in any::<u16>(),
        flip_bits in 1u8..=255,
        payload in proptest::collection::vec(any::<u8>(), 0..200),
    ) {
        let pkt = PacketBuilder::new(
            IpAddr::V4(Ipv4Addr::new(10, 0, 0, 1)),
            IpAddr::V4(Ipv4Addr::new(10, 0, 0, 2)),
            40000,
            443,
        )
        .flags(TcpFlags::PSH_ACK)
        .payload(Bytes::from(payload))
        .build();
        let mut frame = pkt.emit().to_vec();
        let idx = usize::from(flip_at) % frame.len();
        frame[idx] ^= flip_bits;
        let _ = Packet::parse(&frame); // must not panic
    }
}

// ---------------------------------------------------------------------------
// Application-layer parsers: hostile bytes must produce typed errors,
// never panics. These are the payloads a middlebox deliberately mangles.
// ---------------------------------------------------------------------------

proptest! {
    /// The IPv6 header parser survives arbitrary bytes of any length.
    #[test]
    fn ipv6_parse_never_panics(data in proptest::collection::vec(any::<u8>(), 0..120)) {
        let _ = tamper_wire::Ipv6Header::parse(&data); // must not panic
    }

    /// ... and mutated-but-realistic v6 frames parse or fail cleanly.
    #[test]
    fn ipv6_parse_survives_mutated_frames(
        flip_at in any::<u16>(),
        flip_bits in 1u8..=255,
        cut in any::<u16>(),
    ) {
        let pkt = PacketBuilder::new(
            IpAddr::V6(Ipv6Addr::new(0x2001, 0xdb8, 0, 0, 0, 0, 0, 1)),
            IpAddr::V6(Ipv6Addr::new(0x2001, 0xdb8, 0, 0, 0, 0, 0, 2)),
            40000,
            443,
        )
        .flags(TcpFlags::SYN)
        .build();
        let mut frame = pkt.emit().to_vec();
        let idx = usize::from(flip_at) % frame.len();
        frame[idx] ^= flip_bits;
        frame.truncate(usize::from(cut) % (frame.len() + 1));
        let _ = tamper_wire::Ipv6Header::parse(&frame); // must not panic
    }

    /// The SNI extractor survives arbitrary bytes.
    #[test]
    fn sni_parsers_never_panic(data in proptest::collection::vec(any::<u8>(), 0..300)) {
        let _ = tamper_wire::tls::is_client_hello(&data);
        let _ = tamper_wire::tls::parse_sni(&data); // must not panic
    }

    /// ... and corrupted real ClientHellos yield Ok or a typed error.
    #[test]
    fn sni_parse_survives_mutated_hellos(
        flip_at in any::<u16>(),
        flip_bits in 1u8..=255,
        cut in any::<u16>(),
    ) {
        let hello = tamper_wire::tls::build_client_hello("blocked.example.com", [7u8; 32]);
        let mut data = hello.to_vec();
        let idx = usize::from(flip_at) % data.len();
        data[idx] ^= flip_bits;
        data.truncate(usize::from(cut) % (data.len() + 1));
        let _ = tamper_wire::tls::parse_sni(&data); // must not panic
    }

    /// The HTTP request parser survives arbitrary bytes (including invalid
    /// UTF-8) and always returns a typed result.
    #[test]
    fn http_parse_never_panics(data in proptest::collection::vec(any::<u8>(), 0..300)) {
        let _ = tamper_wire::http::is_http_request(&data);
        let _ = tamper_wire::http::parse_request(&data); // must not panic
    }

    /// ... and corrupted real requests parse or fail cleanly.
    #[test]
    fn http_parse_survives_mutated_requests(
        flip_at in any::<u16>(),
        flip_bits in 1u8..=255,
        cut in any::<u16>(),
    ) {
        let req = tamper_wire::http::build_get("example.com", "/watch?v=1", "curl/8.0");
        let mut data = req.to_vec();
        let idx = usize::from(flip_at) % data.len();
        data[idx] ^= flip_bits;
        data.truncate(usize::from(cut) % (data.len() + 1));
        let _ = tamper_wire::http::parse_request(&data); // must not panic
    }
}

// ---------------------------------------------------------------------------
// Order reconstruction and classifier invariance
// ---------------------------------------------------------------------------

fn rec(ts: u64, flags: TcpFlags, seq: u32, ack: u32, payload_len: u32) -> PacketRecord {
    PacketRecord {
        ts_sec: ts,
        flags,
        seq,
        ack,
        ip_id: Some(100),
        ttl: 52,
        window: 65535,
        payload_len,
        payload: Bytes::from(vec![b'z'; payload_len as usize]),
        has_tcp_options: true,
    }
}

/// A plausible inbound flow: handshake, k data packets, then a teardown
/// suffix chosen by the strategy.
fn arb_flow() -> impl Strategy<Value = FlowRecord> {
    (
        0usize..=2,          // data packets
        0usize..=3,          // teardown RSTs
        proptest::bool::ANY, // RST vs RST+ACK
        proptest::bool::ANY, // include FIN
        0u64..4,             // seconds spread
    )
        .prop_map(|(n_data, n_rst, pure, fin, spread)| {
            let mut packets = vec![rec(100, TcpFlags::SYN, 1000, 0, 0)];
            packets.push(rec(100, TcpFlags::ACK, 1001, 501, 0));
            let mut seq = 1001;
            for i in 0..n_data {
                packets.push(rec(
                    100 + (i as u64 % (spread + 1)),
                    TcpFlags::PSH_ACK,
                    seq,
                    501,
                    200,
                ));
                seq += 200;
            }
            if fin {
                packets.push(rec(100 + spread, TcpFlags::FIN_ACK, seq, 900, 0));
            }
            for i in 0..n_rst {
                let flags = if pure {
                    TcpFlags::RST
                } else {
                    TcpFlags::RST_ACK
                };
                packets.push(rec(100 + spread, flags, seq, 700 + i as u32, 0));
            }
            FlowRecord {
                client_ip: IpAddr::V4(Ipv4Addr::new(203, 0, 113, 1)),
                server_ip: IpAddr::V4(Ipv4Addr::new(198, 51, 100, 1)),
                src_port: 40000,
                dst_port: 443,
                packets,
                observation_end_sec: 140,
                truncated: false,
            }
        })
}

proptest! {
    /// The classification is invariant under any permutation of the log
    /// order within equal-timestamp buckets — the paper's §3.2 claim that
    /// out-of-order 1-second logs don't hurt.
    #[test]
    fn classification_invariant_under_bucket_shuffle(
        flow in arb_flow(),
        seed in any::<u64>(),
    ) {
        let cfg = ClassifierConfig::default();
        let baseline = classify(&flow, &cfg);

        // Shuffle within equal-ts groups, deterministically from `seed`.
        let mut shuffled = flow.clone();
        let mut i = 0;
        let mut state = seed | 1;
        while i < shuffled.packets.len() {
            let ts = shuffled.packets[i].ts_sec;
            let mut j = i + 1;
            while j < shuffled.packets.len() && shuffled.packets[j].ts_sec == ts {
                j += 1;
            }
            // Fisher–Yates with an xorshift stream.
            for k in ((i + 1)..j).rev() {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                let pick = i + (state as usize) % (k - i + 1);
                shuffled.packets.swap(k, pick);
            }
            i = j;
        }
        let shuffled_result = classify(&shuffled, &cfg);
        prop_assert_eq!(
            baseline.classification,
            shuffled_result.classification,
            "shuffle changed the verdict"
        );
        prop_assert_eq!(baseline.stage, shuffled_result.stage);
    }

    /// Reconstruction returns a permutation, and timestamps end up
    /// non-decreasing.
    #[test]
    fn reconstruction_is_a_monotone_permutation(flow in arb_flow()) {
        let order = reconstruct_order(&flow.packets);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..flow.packets.len()).collect::<Vec<_>>());
        let mut last_ts = 0;
        for &i in &order {
            prop_assert!(flow.packets[i].ts_sec >= last_ts);
            last_ts = flow.packets[i].ts_sec;
        }
    }

    /// The classifier never panics on arbitrary packet-record soup, and a
    /// flow with a FIN and no RST is never possibly-tampered.
    #[test]
    fn classifier_total_and_fin_safe(
        flags in proptest::collection::vec(arb_flags(), 1..10),
    ) {
        let packets: Vec<PacketRecord> = flags
            .iter()
            .enumerate()
            .map(|(i, f)| rec(100 + i as u64, *f, i as u32 * 7, i as u32, 0))
            .collect();
        let flow = FlowRecord {
            client_ip: IpAddr::V4(Ipv4Addr::new(1, 2, 3, 4)),
            server_ip: IpAddr::V4(Ipv4Addr::new(5, 6, 7, 8)),
            src_port: 1,
            dst_port: 443,
            packets,
            observation_end_sec: 500,
            truncated: false,
        };
        let a = classify(&flow, &ClassifierConfig::default());
        let has_rst = flow.packets.iter().any(|p| p.flags.has_rst());
        // A FIN combined with SYN or RST is a nonsense packet (scan
        // artifacts); the graceful-teardown guarantee only covers real
        // FINs.
        let has_fin = flow
            .packets
            .iter()
            .any(|p| p.flags.has_fin() && !p.flags.has_rst() && !p.flags.has_syn());
        if has_fin && !has_rst {
            prop_assert!(!a.is_possibly_tampered());
        }
        if !has_rst {
            // Without a RST, any signature must be a silence signature.
            if let Some(sig) = a.signature() {
                prop_assert!(sig.is_silence());
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Sequence-number wraparound: ISNs drawn from the band just below
// `u32::MAX`, with post-wrap continuations, so every derived quantity
// (dedup keys, order reconstruction, signature tables) crosses zero
// mid-flow. All arithmetic must be modular; none of the invariants above
// may weaken near the wrap.
// ---------------------------------------------------------------------------

use tamper_core::FlowMachine;

/// An ISN in the wraparound band: at most 64 below `u32::MAX`, so a
/// handshake plus one data segment is guaranteed to cross zero.
fn arb_wrap_isn() -> impl Strategy<Value = u32> {
    (u32::MAX - 64)..=u32::MAX
}

/// Like [`arb_flow`], but seq/ack start in the wrap band and every
/// continuation uses wrapping arithmetic. Optionally ends with RSTs whose
/// ack also sits in the band.
fn arb_wrap_flow() -> impl Strategy<Value = FlowRecord> {
    (
        arb_wrap_isn(),
        arb_wrap_isn(),      // server ISN, for ack fields
        1usize..=3,          // data packets (≥1: force a post-wrap packet)
        0usize..=3,          // teardown RSTs
        proptest::bool::ANY, // RST vs RST+ACK
        proptest::bool::ANY, // include FIN
        0u64..4,             // seconds spread
    )
        .prop_map(|(isn, server_isn, n_data, n_rst, pure, fin, spread)| {
            let mut packets = vec![rec(100, TcpFlags::SYN, isn, 0, 0)];
            let mut seq = isn.wrapping_add(1);
            let ack = server_isn.wrapping_add(1);
            packets.push(rec(100, TcpFlags::ACK, seq, ack, 0));
            for i in 0..n_data {
                // 200-byte segments march straight across the wrap.
                packets.push(rec(
                    100 + (i as u64 % (spread + 1)),
                    TcpFlags::PSH_ACK,
                    seq,
                    ack,
                    200,
                ));
                seq = seq.wrapping_add(200);
            }
            if fin {
                packets.push(rec(100 + spread, TcpFlags::FIN_ACK, seq, ack, 0));
            }
            for i in 0..n_rst {
                let flags = if pure {
                    TcpFlags::RST
                } else {
                    TcpFlags::RST_ACK
                };
                packets.push(rec(100 + spread, flags, seq, ack.wrapping_add(i as u32), 0));
            }
            FlowRecord {
                client_ip: IpAddr::V4(Ipv4Addr::new(203, 0, 113, 2)),
                server_ip: IpAddr::V4(Ipv4Addr::new(198, 51, 100, 1)),
                src_port: 40001,
                dst_port: 443,
                packets,
                observation_end_sec: 140,
                truncated: false,
            }
        })
}

proptest! {
    /// Bucket-shuffle invariance holds across the wrap: log-order
    /// permutations within 1-second buckets never change the verdict even
    /// when seq space crosses zero. (Same xorshift shuffle as the
    /// non-wrap case above.)
    #[test]
    fn wraparound_classification_invariant_under_bucket_shuffle(
        flow in arb_wrap_flow(),
        seed in any::<u64>(),
    ) {
        let cfg = ClassifierConfig::default();
        let baseline = classify(&flow, &cfg);
        let mut shuffled = flow.clone();
        let mut i = 0;
        let mut state = seed | 1;
        while i < shuffled.packets.len() {
            let ts = shuffled.packets[i].ts_sec;
            let mut j = i + 1;
            while j < shuffled.packets.len() && shuffled.packets[j].ts_sec == ts {
                j += 1;
            }
            for k in ((i + 1)..j).rev() {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                let pick = i + (state as usize) % (k - i + 1);
                shuffled.packets.swap(k, pick);
            }
            i = j;
        }
        let shuffled_result = classify(&shuffled, &cfg);
        prop_assert_eq!(
            baseline.classification,
            shuffled_result.classification,
            "wraparound shuffle changed the verdict"
        );
        prop_assert_eq!(baseline.stage, shuffled_result.stage);
    }

    /// Order reconstruction stays a monotone permutation when the seq
    /// space wraps — it keys on timestamps, never on sequence numbers.
    #[test]
    fn wraparound_reconstruction_is_a_monotone_permutation(flow in arb_wrap_flow()) {
        let order = reconstruct_order(&flow.packets);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..flow.packets.len()).collect::<Vec<_>>());
        let mut last_ts = 0;
        for &i in &order {
            prop_assert!(flow.packets[i].ts_sec >= last_ts);
            last_ts = flow.packets[i].ts_sec;
        }
    }

    /// The sans-IO machine agrees with the legacy classifier byte-for-byte
    /// on wrap-band flows, under both configs, and retransmit dedup still
    /// works modulo 2^32: duplicating a post-wrap data packet never changes
    /// the analysis.
    #[test]
    fn wraparound_machine_matches_legacy_and_dedups(flow in arb_wrap_flow()) {
        for cfg in [
            ClassifierConfig::default(),
            ClassifierConfig { split_rst_counts: false, ..ClassifierConfig::default() },
        ] {
            let want = classify(&flow, &cfg);
            let mut machine = FlowMachine::new(cfg);
            prop_assert_eq!(machine.analyze(&flow), want.clone());

            // Exact retransmit of the last data packet: same seq, same
            // length — must be deduplicated on both paths, even when the
            // duplicated seq is a small post-wrap value.
            if let Some(pos) = flow.packets.iter().rposition(|p| p.payload_len > 0) {
                let mut dup = flow.clone();
                let copy = dup.packets[pos].clone();
                dup.packets.insert(pos + 1, copy);
                let want_dup = classify(&dup, &cfg);
                prop_assert_eq!(want_dup.classification, want.classification);
                prop_assert_eq!(want_dup.stage, want.stage);
                prop_assert_eq!(machine.analyze(&dup), want_dup);
            }
        }
    }

    /// Arbitrary flag soup positioned right at the wrap never panics and
    /// keeps the FIN/silence guarantees of `classifier_total_and_fin_safe`.
    #[test]
    fn wraparound_classifier_total(
        isn in arb_wrap_isn(),
        flags in proptest::collection::vec(arb_flags(), 1..10),
    ) {
        let packets: Vec<PacketRecord> = flags
            .iter()
            .enumerate()
            .map(|(i, f)| {
                rec(
                    100 + i as u64,
                    *f,
                    isn.wrapping_add(i as u32 * 7),
                    isn.wrapping_add(i as u32),
                    0,
                )
            })
            .collect();
        let flow = FlowRecord {
            client_ip: IpAddr::V4(Ipv4Addr::new(1, 2, 3, 4)),
            server_ip: IpAddr::V4(Ipv4Addr::new(5, 6, 7, 8)),
            src_port: 1,
            dst_port: 443,
            packets,
            observation_end_sec: 500,
            truncated: false,
        };
        let a = classify(&flow, &ClassifierConfig::default());
        let has_rst = flow.packets.iter().any(|p| p.flags.has_rst());
        if !has_rst {
            if let Some(sig) = a.signature() {
                prop_assert!(sig.is_silence());
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Columnar batch classification: the BatchClassifier walking FlowCols
// column slices must agree byte-for-byte with the per-flow FlowMachine
// over the same flows — including wrap-band ISNs, empty and one-packet
// flows, IPv6 (no IP-ID) packets, and truncated flows.
// ---------------------------------------------------------------------------

use tamper_capture::{EvictionCause, FlowBatch, FlowTuple};
use tamper_core::BatchClassifier;

/// Degenerate flows the batch layout must get right: zero or one packet,
/// arbitrary flags, wrap-band seq, IPv6-style missing IP-ID.
fn arb_tiny_flow() -> impl Strategy<Value = FlowRecord> {
    (
        proptest::bool::ANY, // zero packets vs one
        arb_flags(),
        arb_wrap_isn(),
        proptest::bool::ANY, // carry an IP-ID?
        0u64..200,           // observation end
    )
        .prop_map(|(empty, flags, isn, with_id, obs_end)| {
            let packets = if empty {
                Vec::new()
            } else {
                let mut p = rec(100, flags, isn, 0, 0);
                p.ip_id = with_id.then_some(4242);
                vec![p]
            };
            FlowRecord {
                client_ip: IpAddr::V4(Ipv4Addr::new(203, 0, 113, 3)),
                server_ip: IpAddr::V4(Ipv4Addr::new(198, 51, 100, 1)),
                src_port: 40002,
                dst_port: 443,
                packets,
                observation_end_sec: obs_end,
                truncated: false,
            }
        })
}

fn arb_any_flow() -> impl Strategy<Value = FlowRecord> {
    prop_oneof![arb_flow(), arb_wrap_flow(), arb_tiny_flow()]
}

/// Pack owned records into the columnar arena layout, one span per flow.
fn batch_from_records(flows: &[FlowRecord]) -> FlowBatch {
    let mut batch = FlowBatch::new();
    for (i, f) in flows.iter().enumerate() {
        let start = batch.packet_count() as u32;
        for p in &f.packets {
            batch.push_packet(
                p.ts_sec,
                p.flags,
                p.seq,
                p.ack,
                p.ip_id,
                p.ttl,
                p.window,
                &p.payload,
                p.has_tcp_options,
            );
        }
        batch.push_flow(
            FlowTuple {
                client_ip: f.client_ip,
                server_ip: f.server_ip,
                src_port: f.src_port,
                dst_port: f.dst_port,
            },
            start,
            i as u64,
            f.observation_end_sec,
            f.truncated,
            EvictionCause::EndOfCapture,
        );
    }
    batch
}

proptest! {
    /// Random record batches through the BatchClassifier produce exactly
    /// the `FlowAnalysis` the per-flow machine produces — for both
    /// classifier configs, with truncation flags flipped per flow.
    #[test]
    fn batch_classifier_matches_flow_machine(
        flows in proptest::collection::vec(arb_any_flow(), 0..12),
        truncated_mask in any::<u16>(),
    ) {
        let mut flows = flows;
        for (i, f) in flows.iter_mut().enumerate() {
            f.truncated = (truncated_mask >> (i % 16)) & 1 == 1;
        }
        let batch = batch_from_records(&flows);
        prop_assert_eq!(batch.flow_count(), flows.len());
        for cfg in [
            ClassifierConfig::default(),
            ClassifierConfig { split_rst_counts: false, ..ClassifierConfig::default() },
        ] {
            let mut clf = BatchClassifier::new(cfg);
            let analyses = clf.classify_batch(&batch).to_vec();
            prop_assert_eq!(analyses.len(), flows.len());
            let mut machine = FlowMachine::new(cfg);
            for (i, f) in flows.iter().enumerate() {
                let want = machine.analyze(f);
                prop_assert_eq!(&analyses[i], &want, "flow {} diverged", i);
            }
        }
    }

    /// The batch round-trips: materializing span `i` recovers the record
    /// that was packed, so the arena layout loses nothing.
    #[test]
    fn batch_materialize_round_trips(flows in proptest::collection::vec(arb_any_flow(), 0..8)) {
        let batch = batch_from_records(&flows);
        for (i, f) in flows.iter().enumerate() {
            prop_assert_eq!(&batch.materialize(i), f, "flow {} did not round-trip", i);
        }
    }
}

// ---------------------------------------------------------------------------
// Malformed capture input: the streaming engine must degrade to counted
// drops, never panic, on truncation, garbage frames, or bit corruption.
// ---------------------------------------------------------------------------

use tamper_capture::{run_engine, ClosedFlow, EngineConfig, OfflineConfig, PcapWriter};

fn valid_frame(client_octet: u8, sport: u16, flags: TcpFlags, seq: u32) -> Vec<u8> {
    PacketBuilder::new(
        IpAddr::V4(Ipv4Addr::new(203, 0, 113, client_octet)),
        IpAddr::V4(Ipv4Addr::new(198, 51, 100, 1)),
        sport,
        443,
    )
    .flags(flags)
    .seq(seq)
    .payload(Bytes::new())
    .build()
    .emit()
    .to_vec()
}

/// A small well-formed capture: `n` single-SYN flows.
fn small_capture(n: u8) -> Vec<u8> {
    let mut w = PcapWriter::new(Vec::new()).unwrap();
    for i in 0..n {
        let fr = valid_frame(1 + i % 200, 20_000 + u16::from(i), TcpFlags::SYN, 100);
        w.write_frame(100 + u32::from(i), 0, &fr).unwrap();
    }
    w.into_inner()
}

fn run_collecting(
    bytes: &[u8],
) -> Result<(Vec<ClosedFlow>, tamper_capture::EngineStats), tamper_capture::PcapError> {
    let cfg = EngineConfig {
        offline: OfflineConfig::default(),
        threads: 2,
        ..EngineConfig::default()
    };
    run_engine(
        bytes,
        &cfg,
        Vec::new,
        |acc: &mut Vec<ClosedFlow>, cf| acc.push(cf),
        |a, mut b| a.append(&mut b),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Cutting a capture at any byte offset never panics: either the
    /// header itself is unreadable (an error, pre-thread), or the engine
    /// runs and flags the ragged tail instead of aborting.
    #[test]
    fn truncated_pcap_degrades_to_counted_drop(
        n_flows in 1u8..12,
        cut in any::<u16>(),
    ) {
        let full = small_capture(n_flows);
        let cut = usize::from(cut) % full.len();
        let clipped = &full[..cut];
        match run_collecting(clipped) {
            Err(_) => prop_assert!(cut < 24, "header read failed with a complete header"),
            Ok((flows, stats)) => {
                // A cut strictly inside a record must be flagged; a cut at
                // a record boundary is a clean EOF. All records in this
                // capture are the same size, so derive it.
                let rec_size = (full.len() - 24) / usize::from(n_flows);
                let at_boundary = (cut - 24).is_multiple_of(rec_size);
                prop_assert_eq!(stats.corrupt_tail, !at_boundary);
                prop_assert!(stats.records <= u64::from(n_flows));
                prop_assert_eq!(flows.len() as u64, stats.records);
            }
        }
    }

    /// Garbage frames (wrong IP version nibble) interleaved with valid
    /// traffic are counted unparsable, one for one, and never panic —
    /// whether they are dropped at the router peek or at shard parse.
    #[test]
    fn garbage_frames_are_counted_one_for_one(
        n_valid in 1u8..10,
        garbage in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..80),
            1..10,
        ),
    ) {
        let mut w = PcapWriter::new(Vec::new()).unwrap();
        let mut t = 100u32;
        for i in 0..n_valid {
            let fr = valid_frame(1 + i, 21_000 + u16::from(i), TcpFlags::SYN, 100);
            w.write_frame(t, 0, &fr).unwrap();
            t += 1;
        }
        for g in &garbage {
            let mut fr = g.clone();
            // Force an invalid IP version nibble so the frame provably
            // fails to parse regardless of the random tail.
            if fr.is_empty() {
                fr.push(0x00);
            } else {
                fr[0] = 0x0f;
            }
            w.write_frame(t, 0, &fr).unwrap();
            t += 1;
        }
        let bytes = w.into_inner();
        let (flows, stats) = run_collecting(&bytes).expect("valid container");
        prop_assert_eq!(stats.ingest.unparsable, garbage.len() as u64);
        prop_assert_eq!(flows.len(), usize::from(n_valid));
        prop_assert!(!stats.corrupt_tail);
    }

    /// Flipping any byte after the pcap header never panics the engine:
    /// the record either still parses somewhere, drops as unparsable, or
    /// ends the stream as a counted corrupt tail.
    #[test]
    fn mid_stream_corruption_never_panics(
        n_flows in 2u8..10,
        flip_at in any::<u16>(),
        flip_bits in 1u8..=255,
    ) {
        let mut bytes = small_capture(n_flows);
        let idx = 24 + usize::from(flip_at) % (bytes.len() - 24);
        bytes[idx] ^= flip_bits;
        let (flows, stats) = run_collecting(&bytes).expect("header is intact");
        prop_assert!(stats.records <= u64::from(n_flows));
        prop_assert!(flows.len() as u64 <= stats.records);
        // Every record is accounted for: it became a flow packet, was
        // dropped unparsable, or the stream ended early (corrupt tail).
        let accounted = stats.ingest.packets + stats.ingest.unparsable + stats.ingest.not_inbound;
        prop_assert_eq!(accounted, stats.records);
    }
}

// ---------------------------------------------------------------------------
// Mergeable partial aggregates: folding any partition of the flow multiset
// into per-PoP partials and merging them — in any order, through any
// grouping, with encode/decode round-trips in between — must produce an
// aggregate byte-identical to the unsplit single-machine fold.
// ---------------------------------------------------------------------------

use std::sync::OnceLock;
use tamper_analysis::{decode_agg, encode_agg, Collector};
use tamper_worldgen::{LabeledFlow, WorldConfig, WorldSim};

/// A shared flow pool: generated once, partitioned differently per case.
fn flow_pool() -> &'static (Vec<LabeledFlow>, usize, u64) {
    static POOL: OnceLock<(Vec<LabeledFlow>, usize, u64)> = OnceLock::new();
    POOL.get_or_init(|| {
        let sim = WorldSim::new(WorldConfig {
            sessions: 800,
            days: 1,
            catalog_size: 300,
            ..Default::default()
        });
        let mut flows = Vec::new();
        sim.run(|lf| flows.push(lf));
        let n_countries = sim.world().len();
        let start_unix = sim.config().start_unix;
        (flows, n_countries, start_unix)
    })
}

fn pool_collector() -> Collector {
    let (_, n_countries, start_unix) = flow_pool();
    Collector::new(ClassifierConfig::default(), *n_countries, 1, *start_unix)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any assignment of flows to up to 6 partials, merged in an arbitrary
    /// permutation with an encode/decode round-trip on every partial,
    /// yields the exact bytes of the unsplit fold — merge is associative,
    /// commutative, and insensitive to how the multiset was partitioned.
    #[test]
    fn partial_merge_is_partition_and_order_insensitive(
        assign_seed in any::<u64>(),
        parts in 1usize..=6,
        order_seed in any::<u64>(),
    ) {
        let (flows, _, _) = flow_pool();

        let mut unsplit = pool_collector();
        for lf in flows {
            unsplit.observe(lf);
        }
        let want = encode_agg(unsplit.partial());

        // Deterministic pseudo-random partition of the pool.
        let mut partials: Vec<Collector> = (0..parts).map(|_| pool_collector()).collect();
        let mut state = assign_seed | 1;
        for lf in flows {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            partials[(state as usize) % parts].observe(lf);
        }

        // Encode/decode each partial (the .agg wire trip), then merge in a
        // shuffled order.
        let mut decoded: Vec<_> = partials
            .iter()
            .map(|c| decode_agg(&encode_agg(c.partial())).expect("round trip"))
            .collect();
        let mut state = order_seed | 1;
        for i in (1..decoded.len()).rev() {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            decoded.swap(i, (state as usize) % (i + 1));
        }
        let mut acc = decoded.remove(0);
        for part in decoded {
            acc.merge(part);
        }
        prop_assert_eq!(
            encode_agg(&acc),
            want,
            "merged partition bytes differ from the unsplit fold"
        );
    }

    /// Pairwise (tree) grouping agrees with left-fold grouping: merging
    /// ((a+b)+(c+d)) equals (((a+b)+c)+d).
    #[test]
    fn partial_merge_grouping_is_associative(assign_seed in any::<u64>()) {
        let (flows, _, _) = flow_pool();
        let mut partials: Vec<Collector> = (0..4).map(|_| pool_collector()).collect();
        let mut state = assign_seed | 1;
        for lf in flows {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            partials[(state as usize) % 4].observe(lf);
        }
        let ps: Vec<_> = partials.iter().map(|c| c.partial().clone()).collect();

        let mut left = ps[0].clone();
        for p in &ps[1..] {
            left.merge(p.clone());
        }

        let mut ab = ps[0].clone();
        ab.merge(ps[1].clone());
        let mut cd = ps[2].clone();
        cd.merge(ps[3].clone());
        ab.merge(cd);

        prop_assert_eq!(encode_agg(&ab), encode_agg(&left));
    }

    /// The .agg decoder is total: arbitrary bytes produce `Ok` or a named
    /// error, never a panic — including bytes that start with the real
    /// magic and version.
    #[test]
    fn agg_decoder_never_panics(
        data in proptest::collection::vec(any::<u8>(), 0..600),
        with_header in proptest::bool::ANY,
    ) {
        let mut data = data;
        if with_header && data.len() >= 6 {
            data[0..4].copy_from_slice(b"TAGG");
            data[4] = 0;
            data[5] = 1;
        }
        let _ = decode_agg(&data); // must not panic
    }

    /// Every truncation of a valid encoding is a clean named error, and
    /// every single-byte corruption decodes or fails without panicking.
    #[test]
    fn agg_decoder_survives_truncation_and_corruption(
        cut in any::<u16>(),
        flip_at in any::<u32>(),
        flip_bits in 1u8..=255,
    ) {
        static VALID: OnceLock<Vec<u8>> = OnceLock::new();
        let valid = VALID.get_or_init(|| {
            let (flows, _, _) = flow_pool();
            let mut col = pool_collector();
            for lf in flows.iter().take(200) {
                col.observe(lf);
            }
            encode_agg(col.partial())
        });

        let cut = usize::from(cut) % valid.len();
        prop_assert!(
            decode_agg(&valid[..cut]).is_err(),
            "truncated prefix decoded successfully"
        );

        let mut corrupt = valid.clone();
        let idx = (flip_at as usize) % corrupt.len();
        corrupt[idx] ^= flip_bits;
        let _ = decode_agg(&corrupt); // must not panic
    }
}
