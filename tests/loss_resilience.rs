//! Network-loss resilience: the simulator's retransmission machinery must
//! recover clean sessions from single packet losses, and the classifier
//! must degrade predictably when losses hit the teardown evidence itself.

use std::net::{IpAddr, Ipv4Addr};
use tamper_capture::{collect, CollectorConfig};
use tamper_core::{classify, Classification, ClassifierConfig};
use tamper_netsim::{
    derive_rng, run_session, ClientConfig, Link, Path, ServerConfig, SessionParams, SimDuration,
    SimTime,
};

const CLIENT: IpAddr = IpAddr::V4(Ipv4Addr::new(203, 0, 113, 91));
const SERVER: IpAddr = IpAddr::V4(Ipv4Addr::new(198, 51, 100, 1));

fn run_with_loss(loss: f64, seed: u64) -> tamper_netsim::SessionTrace {
    let cfg = ClientConfig::default_tls(CLIENT, SERVER, "site.example.com");
    let server = ServerConfig::default_edge(SERVER, 443);
    let mut path = Path {
        links: vec![Link::new(SimDuration::from_millis(30), 10).with_loss(loss)],
        hops: Vec::new(),
    };
    let mut rng = derive_rng(seed, 0);
    run_session(
        SessionParams::new(cfg, server, SimTime::ZERO),
        &mut path,
        &mut rng,
    )
}

/// At moderate loss, the vast majority of clean sessions still complete a
/// graceful FIN teardown thanks to SYN/request retransmission.
#[test]
fn most_sessions_survive_two_percent_loss() {
    let mut graceful = 0;
    let total = 300;
    for seed in 0..total {
        let trace = run_with_loss(0.02, seed);
        if trace.inbound().any(|p| p.packet.tcp.flags.has_fin()) {
            graceful += 1;
        }
    }
    assert!(
        graceful > total * 85 / 100,
        "only {graceful}/{total} sessions completed gracefully at 2% loss"
    );
}

/// Whatever the loss pattern, classification never panics and the
/// lost-FIN false positives stay bounded at low loss.
#[test]
fn lost_fin_false_positive_rate_is_bounded() {
    let cfg = ClassifierConfig::default();
    let mut flagged = 0u32;
    let mut total = 0u32;
    for seed in 1000..1400 {
        let trace = run_with_loss(0.01, seed);
        let mut crng = derive_rng(seed, 1);
        if let Some(flow) = collect(&trace, &CollectorConfig::default(), &mut crng) {
            total += 1;
            if classify(&flow, &cfg).is_possibly_tampered() {
                flagged += 1;
            }
        }
    }
    assert!(total > 380);
    let rate = f64::from(flagged) / f64::from(total);
    assert!(rate < 0.12, "false-positive rate {rate} at 1% loss");
}

/// Zero loss, clean path: never flagged, regardless of seed.
#[test]
fn lossless_clean_sessions_never_flagged() {
    let cfg = ClassifierConfig::default();
    for seed in 0..120 {
        let trace = run_with_loss(0.0, 50_000 + seed);
        let mut crng = derive_rng(seed, 2);
        let flow = collect(&trace, &CollectorConfig::default(), &mut crng).unwrap();
        let a = classify(&flow, &cfg);
        assert_eq!(
            a.classification,
            Classification::NotTampered,
            "seed {seed}: {:?}",
            flow.packets.iter().map(|p| p.flags).collect::<Vec<_>>()
        );
    }
}

/// A lost SYN+ACK forces a duplicate SYN at the server; the session still
/// completes and classifies clean (duplicate SYNs with an eventual FIN are
/// not "a single SYN then silence").
#[test]
fn duplicate_syn_from_retransmission_is_clean() {
    // Find seeds where the first SYN+ACK is lost by brute-force scanning a
    // high-loss path until a session shows ≥2 inbound SYNs and a FIN.
    let mut found = false;
    for seed in 0..4000 {
        let trace = run_with_loss(0.12, seed);
        let syns = trace
            .inbound()
            .filter(|p| p.packet.tcp.flags.has_syn())
            .count();
        let fin = trace.inbound().any(|p| p.packet.tcp.flags.has_fin());
        if syns >= 2 && fin {
            let mut crng = derive_rng(seed, 3);
            let flow = collect(&trace, &CollectorConfig::default(), &mut crng).unwrap();
            let a = classify(&flow, &ClassifierConfig::default());
            assert_eq!(a.classification, Classification::NotTampered);
            found = true;
            break;
        }
    }
    assert!(
        found,
        "no duplicate-SYN-with-FIN session found in 4000 seeds"
    );
}
