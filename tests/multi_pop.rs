//! End-to-end multi-PoP pipeline: `tamperscope pop-run` splits the golden
//! world across points of presence, each emitting a serialized partial
//! aggregate, and `tamperscope merge` combines them into a full report
//! that must be byte-identical to the single-machine `report` run — at
//! any thread count and any merge order. Plus the fail-closed decode
//! paths: corrupt or mismatched `.agg` inputs are named errors with exit
//! code 2, never panics.

use std::path::PathBuf;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_tamperscope"))
}

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tamperscope_pop_{}_{name}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

const WORLD_FLAGS: &[&str] = &["--sessions", "4000", "--days", "2", "--seed", "20230112"];

fn pop_run(dir: &std::path::Path, pops: u32) {
    let out = bin()
        .args(["pop-run", "--pops", &pops.to_string(), "--out"])
        .arg(dir)
        .args(WORLD_FLAGS)
        .output()
        .expect("pop-run");
    assert!(
        out.status.success(),
        "pop-run failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
}

fn merge(files: &[PathBuf]) -> std::process::Output {
    let mut cmd = bin();
    cmd.arg("merge");
    for f in files {
        cmd.arg(f);
    }
    cmd.args(WORLD_FLAGS).output().expect("merge")
}

fn single_report(threads: u32) -> Vec<u8> {
    let out = bin()
        .args(["report", "--threads", &threads.to_string()])
        .args(WORLD_FLAGS)
        .output()
        .expect("report");
    assert!(
        out.status.success(),
        "report failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    out.stdout
}

/// The golden identity: a 4-PoP split merged back together renders the
/// exact bytes of a single-machine report, and the single-machine report
/// itself is thread-count-invariant (1/2/8).
#[test]
fn four_pop_merge_matches_single_machine_report() {
    let dir = tmp_dir("golden");
    pop_run(&dir, 4);
    let files: Vec<PathBuf> = (0..4).map(|i| dir.join(format!("pop{i}.agg"))).collect();
    for f in &files {
        assert!(f.exists(), "missing {}", f.display());
    }

    let merged = merge(&files);
    assert!(
        merged.status.success(),
        "{}",
        String::from_utf8_lossy(&merged.stderr)
    );

    let t1 = single_report(1);
    assert_eq!(
        merged.stdout, t1,
        "merged 4-PoP report differs from single-machine report"
    );
    for threads in [2u32, 8] {
        assert_eq!(
            single_report(threads),
            t1,
            "report bytes changed at {threads} threads"
        );
    }

    // Merge order must not matter: reversed file list, same bytes.
    let reversed: Vec<PathBuf> = files.iter().rev().cloned().collect();
    let merged_rev = merge(&reversed);
    assert!(merged_rev.status.success());
    assert_eq!(
        merged_rev.stdout, merged.stdout,
        "merge order changed bytes"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

/// Every PoP observes a non-trivial, disjoint share: the partial files
/// exist, are non-empty, and their merged flow total matches the
/// single-machine total (checked implicitly by the byte identity above;
/// here we check the summary line to make the split visible).
#[test]
fn pop_partials_cover_the_world_disjointly() {
    let dir = tmp_dir("cover");
    pop_run(&dir, 3);
    let files: Vec<PathBuf> = (0..3).map(|i| dir.join(format!("pop{i}.agg"))).collect();
    for f in &files {
        let len = std::fs::metadata(f).unwrap().len();
        assert!(len > 100, "{} suspiciously small: {len} bytes", f.display());
    }

    let mut cmd = bin();
    cmd.arg("merge");
    for f in &files {
        cmd.arg(f);
    }
    let out = cmd
        .args(WORLD_FLAGS)
        .arg("--json-summary")
        .output()
        .expect("merge summary");
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("\"total_flows\":"), "{text}");

    // A single partial alone merges fine too (a one-PoP "fleet").
    let solo = merge(&files[..1]);
    assert!(solo.status.success());

    let _ = std::fs::remove_dir_all(&dir);
}

/// Fail-closed decode paths through the CLI: truncated file, wrong magic,
/// future format version, and a fingerprint that does not match the
/// flags. Each is exit code 2 with a named message; none panic.
#[test]
fn merge_rejects_corrupt_and_mismatched_partials() {
    let dir = tmp_dir("failclosed");
    pop_run(&dir, 2);
    let good = dir.join("pop0.agg");
    let bytes = std::fs::read(&good).unwrap();

    let check = |path: &std::path::Path, needle: &str| {
        let out = merge(&[path.to_path_buf()]);
        assert_eq!(
            out.status.code(),
            Some(2),
            "{} should exit 2: {}",
            path.display(),
            String::from_utf8_lossy(&out.stderr)
        );
        let err = String::from_utf8(out.stderr).unwrap();
        assert!(err.contains(needle), "{}: {err}", path.display());
        assert!(
            !err.contains("panicked"),
            "{} panicked: {err}",
            path.display()
        );
    };

    // Truncated at several depths. A cut inside the 4-byte magic reads
    // as "not a .agg file"; anything past it is a named truncation.
    let p = dir.join("trunc3.agg");
    std::fs::write(&p, &bytes[..3]).unwrap();
    check(&p, "bad magic");
    for cut in [10usize, bytes.len() / 2] {
        let p = dir.join(format!("trunc{cut}.agg"));
        std::fs::write(&p, &bytes[..cut]).unwrap();
        check(&p, "truncated");
    }

    // Wrong magic.
    let mut bad = bytes.clone();
    bad[0..4].copy_from_slice(b"NOPE");
    let p = dir.join("badmagic.agg");
    std::fs::write(&p, &bad).unwrap();
    check(&p, "bad magic");

    // A future format version must be refused, not misparsed.
    let mut future = bytes.clone();
    future[4] = 0xFF;
    let p = dir.join("future.agg");
    std::fs::write(&p, &future).unwrap();
    check(&p, "unsupported .agg format version");

    // Valid file, but the flags describe a different world.
    let out = bin()
        .args(["merge"])
        .arg(&good)
        .args(["--sessions", "4000", "--days", "2", "--seed", "999"])
        .output()
        .expect("merge mismatched");
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("fingerprint mismatch"), "{err}");

    // Partials from two different worlds cannot be merged together even
    // when one of them matches the flags.
    let dir2 = tmp_dir("failclosed_other");
    let out = bin()
        .args(["pop-run", "--pops", "1", "--out"])
        .arg(&dir2)
        .args(["--sessions", "4000", "--days", "2", "--seed", "999"])
        .output()
        .expect("pop-run other");
    assert!(out.status.success());
    let other = dir2.join("pop0.agg");
    let out = bin()
        .args(["merge"])
        .arg(&good)
        .arg(&other)
        .args(WORLD_FLAGS)
        .output()
        .expect("merge cross-world");
    assert_eq!(out.status.code(), Some(2), "cross-world merge must fail");
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("fingerprint mismatch"), "{err}");

    // Usage errors: --pops 0 and a missing --out are usage failures.
    let out = bin()
        .args(["pop-run", "--pops", "0", "--out"])
        .arg(&dir)
        .output()
        .expect("pops 0");
    assert_eq!(out.status.code(), Some(2));
    let out = bin()
        .args(["pop-run", "--pops", "2"])
        .output()
        .expect("no out");
    assert_eq!(out.status.code(), Some(2));
    let out = bin().arg("merge").output().expect("no files");
    assert_eq!(out.status.code(), Some(2));

    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&dir2);
}
