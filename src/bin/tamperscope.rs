//! `tamperscope` — the command-line front end.
//!
//! ```text
//! tamperscope classify <capture.pcap> [--jsonl] [--port 80 --port 443]
//! tamperscope report   [--sessions N] [--days D] [--seed S] [--threads T]
//! tamperscope iran     [--sessions N] [--seed S]
//! tamperscope synthesize <out.pcap> [--sessions N] [--tamper-share F]
//! tamperscope signatures
//! tamperscope world-spec   (the calibration table as JSON lines)
//! ```
//!
//! `classify` is the production path: feed it a server-side raw-IP pcap
//! (LINKTYPE_RAW) and it prints per-flow verdicts or JSON lines. The other
//! subcommands drive the simulation substrate that reproduces the paper.

use std::fs::File;
use std::io::{BufWriter, Write};
use std::process::ExitCode;

use tamperscope::analysis::{
    capture_collector, capture_summary_to_json, config_fingerprint, decode_agg, encode_agg,
    engine_perf_to_json, flow_to_jsonl, label_capture_flow, merge_checked, pct, report,
    summary_to_json, write_metrics_json, AggError, Collector, PartialAggregate,
};
use tamperscope::capture::{
    run_source_observed, EngineConfig, FlowBatch, OfflineConfig, PcapMemSource, PcapWriter,
    SimSource,
};
use tamperscope::cli::Args;
use tamperscope::core::{BatchClassifier, ClassifierConfig};
use tamperscope::middlebox::{RuleSet, Vendor, ALL_VENDORS};
use tamperscope::netsim::{
    derive_rng, run_session, ClientConfig, Link, Path, ServerConfig, SessionParams, SimDuration,
    SimTime,
};
use tamperscope::obs::{Registry, ScopeMetrics, Stopwatch};
use tamperscope::worldgen::{
    generate_lists, world_fingerprint, Scenario, WorldConfig, WorldSim, SEP13_2022_UNIX,
};

fn usage() -> ExitCode {
    eprintln!(
        "tamperscope — passive detection of connection tampering (SIGCOMM'23 reproduction)

USAGE:
    tamperscope classify <capture.pcap> [--jsonl | --explain] [--threads T]
                         [--max-flows M] [--json-summary] [--metrics-json m.json]
    tamperscope report   [--sessions N] [--days D] [--seed S] [--threads T]
                         [--json-summary] [--world spec.json] [--metrics-json m.json]
    tamperscope pop-run  --pops P --out DIR [--sessions N] [--days D] [--seed S]
                         [--threads T]   (one partial aggregate .agg file per PoP)
    tamperscope merge    <pop0.agg> [pop1.agg ...] [--sessions N] [--days D] [--seed S]
                         [--json-summary]   (merge partials; bytes match `report`)
    tamperscope iran     [--sessions N] [--seed S] [--threads T] [--metrics-json m.json]
    tamperscope synthesize <out.pcap> [--sessions N] [--seed S] [--threads T]
                         [--metrics-json m.json]
    tamperscope signatures
    tamperscope world-spec [--full]   (--full emits the loadable JSON schema)"
    );
    ExitCode::from(2)
}

/// Parse a numeric `--flag` strictly: a typo is a usage error, not a
/// silently different run.
macro_rules! flag_u64 {
    ($args:expr, $name:expr, $default:expr) => {
        match $args.get_u64_strict($name, $default) {
            Ok(v) => v,
            Err(e) => {
                eprintln!("tamperscope: {e}");
                return usage();
            }
        }
    };
}

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = raw.first().cloned() else {
        return usage();
    };
    let args = Args::parse(&raw[1..]);
    match cmd.as_str() {
        "classify" => cmd_classify(&args),
        "report" => cmd_report(&args),
        "pop-run" => cmd_pop_run(&args),
        "merge" => cmd_merge(&args),
        "iran" => cmd_iran(&args),
        "synthesize" => cmd_synthesize(&args),
        "signatures" => cmd_signatures(),
        "world-spec" => cmd_world_spec(&args),
        _ => usage(),
    }
}

fn cmd_signatures() -> ExitCode {
    use tamperscope::core::Signature;
    println!("{:<4} {:<20} {:<34} Description", "#", "Stage", "Signature");
    for (i, sig) in Signature::ALL.iter().enumerate() {
        println!(
            "{:<4} {:<20} {:<34} {}",
            i + 1,
            sig.stage().label(),
            sig.label(),
            sig.description()
        );
    }
    ExitCode::SUCCESS
}

fn cmd_world_spec(args: &Args) -> ExitCode {
    use tamperscope::analysis::JsonObject;
    let world = tamperscope::worldgen::policy::world_spec();
    if args.has("full") {
        // The complete, loadable schema (see `report --world`).
        println!("{}", tamperscope::worldgen::world_to_json(&world));
        return ExitCode::SUCCESS;
    }
    for spec in &world {
        let p = &spec.policy;
        let syn: f64 = p.syn_rules.iter().map(|(_, r)| r).sum();
        let fw: f64 = p.fw_rules.iter().map(|(_, r)| r).sum();
        let dpi_vendors = p
            .dpi_mix
            .iter()
            .map(|(v, w)| format!("{v:?}:{w}"))
            .collect::<Vec<_>>()
            .join(",");
        let line = JsonObject::new()
            .str("country", &spec.country.code)
            .float("weight", spec.country.weight)
            .int("tz_offset_hours", i64::from(spec.country.tz_offset_hours))
            .float("ipv6_share", spec.country.ipv6_share)
            .uint("n_ases", spec.country.n_ases as u64)
            .float("centralization", spec.country.centralization)
            .float("http_share", spec.country.http_share)
            .float("syn_rate", syn)
            .float("dpi_blanket", p.dpi_blanket)
            .float("dpi_enforce", p.dpi_enforce)
            .float("fw_rate", fw)
            .str("dpi_mix", &dpi_vendors)
            .float("diurnal_amp", p.diurnal_amp)
            .finish();
        println!("{line}");
    }
    ExitCode::SUCCESS
}

#[derive(Clone, Copy, PartialEq)]
enum ClassifyMode {
    Lines,
    Jsonl,
    Explain,
}

/// Per-shard classify state: a scratch-reusing columnar batch
/// classifier, a collector slice, and the output lines tagged with each
/// flow's global first-record index so the merged output sorts into a
/// thread-count-independent order.
struct ClassifySink {
    clf: BatchClassifier,
    col: Collector,
    lines: Vec<(u64, String)>,
    matched: u64,
}

fn cmd_classify(args: &Args) -> ExitCode {
    let Some(path) = args.positional.first() else {
        return usage();
    };
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("cannot open {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mode = if args.has("jsonl") {
        ClassifyMode::Jsonl
    } else if args.has("explain") {
        ClassifyMode::Explain
    } else {
        ClassifyMode::Lines
    };
    let cfg = EngineConfig {
        offline: OfflineConfig::default(),
        threads: flag_u64!(args, "threads", 0) as usize,
        max_flows: flag_u64!(args, "max-flows", 0) as usize,
        ..EngineConfig::default()
    };
    let clf_cfg = ClassifierConfig::default();
    let init = || ClassifySink {
        clf: BatchClassifier::new(clf_cfg),
        col: capture_collector(clf_cfg, 0),
        lines: Vec::new(),
        matched: 0,
    };
    let observe = |sink: &mut ClassifySink, batch: FlowBatch| {
        for i in 0..batch.flow_count() {
            let first_index = batch.spans()[i].first_index;
            // Verdicts come straight off the column slices; the owning
            // record is materialized only for labeling and rendering.
            let analysis = sink.clf.classify_span(&batch, i);
            let lf = label_capture_flow(batch.materialize(i));
            sink.col.observe_analyzed(&lf, &analysis);
            if analysis.signature().is_some() {
                sink.matched += 1;
            }
            let flow = &lf.flow;
            let line = match mode {
                ClassifyMode::Jsonl => flow_to_jsonl(flow, &analysis),
                ClassifyMode::Explain => tamperscope::core::explain(flow, &analysis),
                ClassifyMode::Lines => {
                    let verdict = match analysis.signature() {
                        Some(sig) => format!("TAMPERED  {sig}"),
                        None if analysis.is_possibly_tampered() => "possibly tampered".to_owned(),
                        None => "clean".to_owned(),
                    };
                    let domain = analysis.trigger.domain.as_deref().unwrap_or("-");
                    format!(
                        "{}:{} -> :{}  [{} pkts]  {:<40} {}",
                        flow.client_ip,
                        flow.src_port,
                        flow.dst_port,
                        flow.packets.len(),
                        verdict,
                        domain
                    )
                }
            };
            sink.lines.push((first_index, line));
        }
    };
    let merge = |a: &mut ClassifySink, mut b: ClassifySink| {
        a.col.merge(b.col);
        a.lines.append(&mut b.lines);
        a.matched += b.matched;
    };
    // Metrics ride a side registry and land in their own file, so the
    // verdict/summary bytes stay identical with or without `--metrics-json`
    // (and across thread counts).
    let metrics_path = args.get("metrics-json");
    let registry = metrics_path.map(|_| Registry::new());
    let src = match PcapMemSource::new(bytes.into()) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let (mut sink, stats) = run_source_observed(src, &cfg, registry.as_ref(), init, observe, merge);
    eprintln!(
        "[{path}] {} flows / {} packets ({} non-inbound, {} unparsable frames skipped, {} threads)",
        stats.ingest.flows,
        stats.ingest.packets,
        stats.ingest.not_inbound,
        stats.ingest.unparsable,
        stats.threads
    );
    if stats.corrupt_tail {
        eprintln!("[{path}] warning: capture tail is corrupt; trailing records dropped");
    }
    sink.lines.sort_by_key(|(first_index, _)| *first_index);
    let stdout = std::io::stdout();
    let mut out = BufWriter::new(stdout.lock());
    for (_, line) in &sink.lines {
        let _ = writeln!(out, "{line}");
    }
    if args.has("json-summary") {
        let _ = writeln!(out, "{}", capture_summary_to_json(&sink.col, &stats));
        let _ = writeln!(out, "{}", engine_perf_to_json(&stats));
    }
    drop(out);
    if let (Some(mpath), Some(reg)) = (metrics_path, &registry) {
        if let Err(e) = write_metrics_json(mpath, &reg.snapshot()) {
            eprintln!("cannot write {mpath}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("[{mpath}] engine metrics written");
    }
    eprintln!(
        "{} of {} flows match a tampering signature ({})",
        sink.matched,
        stats.ingest.flows,
        pct(sink.matched, stats.ingest.flows)
    );
    ExitCode::SUCCESS
}

fn threads(args: &Args) -> Result<usize, String> {
    let default = std::thread::available_parallelism()
        .map(|n| n.get() as u64)
        .unwrap_or(4);
    Ok(args.get_u64_strict("threads", default)? as usize)
}

fn cmd_report(args: &Args) -> ExitCode {
    let threads = match threads(args) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("tamperscope: {e}");
            return usage();
        }
    };
    let cfg = WorldConfig {
        sessions: flag_u64!(args, "sessions", 200_000),
        days: flag_u64!(args, "days", 14) as u32,
        seed: flag_u64!(args, "seed", 20230112),
        ..Default::default()
    };
    let sim = match args.get("world") {
        Some(path) => {
            let text = match std::fs::read_to_string(path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("cannot read {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            match tamperscope::worldgen::world_from_json(&text) {
                Ok(world) => {
                    eprintln!("[world] loaded {} countries from {path}", world.len());
                    WorldSim::with_world(cfg, world)
                }
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        None => WorldSim::new(cfg),
    };
    let mk = || {
        Collector::new(
            ClassifierConfig::default(),
            sim.world().len(),
            sim.config().days,
            sim.config().start_unix,
        )
    };
    let metrics_path = args.get("metrics-json");
    let registry = metrics_path.map(|_| Registry::new());
    // Stderr progress timing goes through the obs stopwatch — the one
    // sanctioned wall-clock entry point — and never enters report bytes.
    let run_sw = Stopwatch::start();
    let col = sim.run_sharded_observed(
        threads,
        registry.as_ref(),
        mk,
        |c, lf| c.observe(&lf),
        |a, b| a.merge(b),
    );
    let run_ns = run_sw.elapsed_ns().unwrap_or(0);
    eprintln!("[world] {} flows in {:.1}s", col.total, run_ns as f64 / 1e9);
    let mut rep = match &registry {
        Some(r) => r.scope("report"),
        None => ScopeMetrics::disabled(),
    };
    rep.record_timer("worldgen_run", run_ns);
    rep.count("flows", col.total);
    if args.has("json-summary") {
        println!("{}", summary_to_json(&col));
    } else {
        let render_sw = rep.start();
        let lists = generate_lists(&sim);
        let text = report::full_report(&col.view(), &sim, &lists);
        rep.stop("render", render_sw);
        println!("{text}");
    }
    if let (Some(mpath), Some(reg)) = (metrics_path, &registry) {
        reg.publish(rep);
        if let Err(e) = write_metrics_json(mpath, &reg.snapshot()) {
            eprintln!("cannot write {mpath}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("[{mpath}] pipeline metrics written");
    }
    ExitCode::SUCCESS
}

/// The world configuration shared by `pop-run` and `merge` (and matching
/// `report`'s defaults), so a merged run can be byte-compared against a
/// single-machine `report` of the same flags.
fn pop_world_config(args: &Args) -> Result<WorldConfig, String> {
    Ok(WorldConfig {
        sessions: args.get_u64_strict("sessions", 200_000)?,
        days: args.get_u64_strict("days", 14)? as u32,
        seed: args.get_u64_strict("seed", 20230112)?,
        ..Default::default()
    })
}

fn cmd_pop_run(args: &Args) -> ExitCode {
    let threads = match threads(args) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("tamperscope: {e}");
            return usage();
        }
    };
    let pops = flag_u64!(args, "pops", 0) as usize;
    if pops == 0 {
        eprintln!("tamperscope: pop-run requires --pops P (P >= 1)");
        return usage();
    }
    let Some(out_dir) = args.get("out") else {
        eprintln!("tamperscope: pop-run requires --out DIR");
        return usage();
    };
    let cfg = match pop_world_config(args) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("tamperscope: {e}");
            return usage();
        }
    };
    if let Err(e) = std::fs::create_dir_all(out_dir) {
        eprintln!("cannot create {out_dir}: {e}");
        return ExitCode::FAILURE;
    }
    let salt = world_fingerprint(&cfg);
    let sim = WorldSim::new(cfg);
    // One generation pass; each flow routes to exactly one PoP's
    // collector, so the union of the emitted partials is the whole world.
    let mk = || {
        (0..pops)
            .map(|_| {
                Collector::with_salt(
                    ClassifierConfig::default(),
                    sim.world().len(),
                    sim.config().days,
                    sim.config().start_unix,
                    salt,
                )
            })
            .collect::<Vec<_>>()
    };
    let cols = sim.run_sharded_observed(
        threads,
        None,
        mk,
        |cs, lf| cs[sim.pop_of(pops, &lf)].observe(&lf),
        |a, b| {
            for (x, y) in a.iter_mut().zip(b) {
                x.merge(y);
            }
        },
    );
    for (pop, col) in cols.into_iter().enumerate() {
        let flows = col.total;
        let fingerprint = col.fingerprint();
        let bytes = encode_agg(col.partial());
        let path = format!("{out_dir}/pop{pop}.agg");
        if let Err(e) = std::fs::write(&path, &bytes) {
            eprintln!("cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!(
            "[{path}] {flows} flows, {} bytes (fingerprint {fingerprint:016x})",
            bytes.len()
        );
    }
    ExitCode::SUCCESS
}

fn cmd_merge(args: &Args) -> ExitCode {
    if args.positional.is_empty() {
        eprintln!("tamperscope: merge requires at least one .agg file");
        return usage();
    }
    let cfg = match pop_world_config(args) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("tamperscope: {e}");
            return usage();
        }
    };
    let sim = WorldSim::new(cfg);
    // The same combined fingerprint `pop-run` stamps into each partial:
    // collector shape plus the world salt.
    let expected = config_fingerprint(
        &ClassifierConfig::default(),
        sim.world().len(),
        sim.config().days as usize * 24,
        sim.config().start_unix,
        world_fingerprint(sim.config()),
    );
    let mut acc: Option<PartialAggregate> = None;
    for path in &args.positional {
        let bytes = match std::fs::read(path) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("cannot open {path}: {e}");
                return ExitCode::from(2);
            }
        };
        let part = match decode_agg(&bytes) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("tamperscope: {path}: {e}");
                return ExitCode::from(2);
            }
        };
        if part.fingerprint() != expected {
            eprintln!(
                "tamperscope: {path}: {} (file {:016x}, flags imply {expected:016x})",
                AggError::ConfigMismatch,
                part.fingerprint()
            );
            return ExitCode::from(2);
        }
        match acc.as_mut() {
            None => acc = Some(part),
            Some(a) => {
                if let Err(e) = merge_checked(a, part) {
                    eprintln!("tamperscope: {path}: {e}");
                    return ExitCode::from(2);
                }
            }
        }
    }
    let acc = acc.expect("at least one partial checked above");
    eprintln!(
        "[merge] {} partials, {} flows (fingerprint {expected:016x})",
        args.positional.len(),
        acc.total
    );
    if args.has("json-summary") {
        println!("{}", summary_to_json(&acc));
    } else {
        let lists = generate_lists(&sim);
        println!("{}", report::full_report(&acc.view(), &sim, &lists));
    }
    ExitCode::SUCCESS
}

fn cmd_iran(args: &Args) -> ExitCode {
    let threads = match threads(args) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("tamperscope: {e}");
            return usage();
        }
    };
    let sim = WorldSim::new(WorldConfig {
        sessions: flag_u64!(args, "sessions", 120_000),
        days: 17,
        seed: flag_u64!(args, "seed", 20220913),
        start_unix: SEP13_2022_UNIX,
        scenario: Scenario::IranProtest,
        ..Default::default()
    });
    let mk = || Collector::new(ClassifierConfig::default(), 1, 17, SEP13_2022_UNIX);
    // Same side-registry discipline as `classify`/`report`: the engine's
    // reader/shard<i>/merge scopes plus a `report` scope, in their own
    // file, never in the fig8 bytes.
    let metrics_path = args.get("metrics-json");
    let registry = metrics_path.map(|_| Registry::new());
    let col = sim.run_sharded_observed(
        threads,
        registry.as_ref(),
        mk,
        |c, lf| c.observe(&lf),
        |a, b| a.merge(b),
    );
    let mut rep = match &registry {
        Some(r) => r.scope("report"),
        None => ScopeMetrics::disabled(),
    };
    rep.count("flows", col.total);
    let render_sw = rep.start();
    let text = report::fig8(&col.view());
    rep.stop("render", render_sw);
    println!("{text}");
    if let (Some(mpath), Some(reg)) = (metrics_path, &registry) {
        reg.publish(rep);
        if let Err(e) = write_metrics_json(mpath, &reg.snapshot()) {
            eprintln!("cannot write {mpath}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("[{mpath}] pipeline metrics written");
    }
    ExitCode::SUCCESS
}

/// One synthesized session: its index plus the inbound packets to write,
/// already stamped with capture timestamps.
type SynthSession = (u64, Vec<(u32, u32, tamperscope::wire::Packet)>);

/// Generate session `i` of the synthetic benchmark capture — a pure
/// function of `(seed, i)`, so sessions can be generated on any engine
/// shard in any order.
fn synth_session(
    i: u64,
    seed: u64,
    server_ip: std::net::IpAddr,
    vendor_cycle: &[Option<Vendor>],
) -> SynthSession {
    let client_ip: std::net::IpAddr = format!("203.0.113.{}", 2 + i % 250).parse().unwrap();
    let blocked = i.is_multiple_of(2);
    let sni = if blocked {
        "blocked.example.com"
    } else {
        "fine.example.org"
    };
    let mut cfg = ClientConfig::default_tls(client_ip, server_ip, sni);
    cfg.src_port = 28_000 + ((i * 17) % 30_000) as u16;
    let vendor = vendor_cycle[i as usize % vendor_cycle.len()];
    let mut path_obj = match vendor {
        Some(v) => {
            let rules = if v.stages().on_syn {
                RuleSet::blanket()
            } else if v.stages().on_later_data {
                // Later-data vendors need a two-request flow to fire;
                // keep the session simple and let them idle instead.
                RuleSet::default()
            } else {
                RuleSet::domains(["blocked.example.com"])
            };
            Path {
                links: vec![
                    Link::new(SimDuration::from_millis(9), 4),
                    Link::new(SimDuration::from_millis(42), 9),
                ],
                hops: vec![Box::new(v.build(rules))],
            }
        }
        None => Path::direct(SimDuration::from_millis(50), 13),
    };
    let start = SimTime::ZERO + SimDuration::from_secs(2 * i);
    let mut rng = derive_rng(seed, i);
    let trace = run_session(
        SessionParams::new(cfg, ServerConfig::default_edge(server_ip, 443), start),
        &mut path_obj,
        &mut rng,
    );
    let packets = trace
        .inbound()
        .map(|tp| {
            let secs = tp.time.as_secs() as u32;
            let usec = ((tp.time.as_nanos() % 1_000_000_000) / 1_000) as u32;
            (secs, usec, tp.packet.clone())
        })
        .collect();
    (i, packets)
}

fn cmd_synthesize(args: &Args) -> ExitCode {
    let Some(path) = args.positional.first() else {
        return usage();
    };
    let threads = match threads(args) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("tamperscope: {e}");
            return usage();
        }
    };
    let sessions = flag_u64!(args, "sessions", 200);
    let seed = flag_u64!(args, "seed", 7);
    let file = match File::create(path) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("cannot create {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut writer = match PcapWriter::new(BufWriter::new(file)) {
        Ok(w) => w,
        Err(e) => {
            eprintln!("cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let server_ip: std::net::IpAddr = "198.51.100.1".parse().unwrap();
    let vendor_cycle: Vec<Option<Vendor>> = std::iter::once(None)
        .chain(ALL_VENDORS.iter().copied().map(Some))
        .collect();
    // Sessions stream through the same sharded engine as every other
    // subcommand (SimSource); the shard-order merge hands sessions back
    // in index order, and the sort below is a cheap guarantee of it.
    let metrics_path = args.get("metrics-json");
    let registry = metrics_path.map(|_| Registry::new());
    let gen = |i: u64| Some(synth_session(i, seed, server_ip, &vendor_cycle));
    let ecfg = EngineConfig {
        threads,
        ..EngineConfig::default()
    };
    let (mut generated, _stats) = run_source_observed(
        SimSource::new(sessions, &gen),
        &ecfg,
        registry.as_ref(),
        Vec::new,
        |acc: &mut Vec<SynthSession>, s| acc.push(s),
        |a: &mut Vec<SynthSession>, mut b| a.append(&mut b),
    );
    generated.sort_unstable_by_key(|(i, _)| *i);
    let mut written = 0u64;
    for (_, packets) in &generated {
        for (secs, usec, pkt) in packets {
            if writer.write_packet(*secs, *usec, pkt).is_err() {
                eprintln!("write error");
                return ExitCode::FAILURE;
            }
            written += 1;
        }
    }
    if let (Some(mpath), Some(reg)) = (metrics_path, &registry) {
        if let Err(e) = write_metrics_json(mpath, &reg.snapshot()) {
            eprintln!("cannot write {mpath}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("[{mpath}] pipeline metrics written");
    }
    eprintln!("wrote {written} packets from {sessions} sessions to {path}");
    ExitCode::SUCCESS
}
