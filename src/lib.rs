#![warn(missing_docs)]

//! # tamperscope
//!
//! A from-scratch reproduction of *"Global, Passive Detection of Connection
//! Tampering"* (SIGCOMM 2023) as a Rust workspace: passive classification
//! of connection tampering from server-side packet captures, plus every
//! substrate needed to regenerate the paper's evaluation — a deterministic
//! packet-level session simulator, middlebox vendor models, the CDN
//! collection pipeline, a calibrated world model, and the analysis layer
//! that reproduces each table and figure.
//!
//! This crate is a facade: it re-exports the workspace crates under stable
//! module names and hosts the runnable examples and workspace-spanning
//! integration tests.
//!
//! ```
//! use tamperscope::prelude::*;
//!
//! // Classify one captured flow (here: a single lonely SYN, then silence).
//! let flow = FlowRecord {
//!     client_ip: "203.0.113.9".parse().unwrap(),
//!     server_ip: "198.51.100.1".parse().unwrap(),
//!     src_port: 41000,
//!     dst_port: 443,
//!     packets: vec![PacketRecord {
//!         ts_sec: 100,
//!         flags: TcpFlags::SYN,
//!         seq: 1,
//!         ack: 0,
//!         ip_id: Some(7),
//!         ttl: 52,
//!         window: 65535,
//!         payload_len: 0,
//!         payload: bytes::Bytes::new(),
//!         has_tcp_options: true,
//!     }],
//!     observation_end_sec: 130,
//!     truncated: false,
//! };
//! let analysis = classify(&flow, &ClassifierConfig::default());
//! assert_eq!(analysis.signature(), Some(Signature::SynNone));
//! ```

pub mod cli;

/// Wire formats: IP/TCP headers, TLS ClientHello, HTTP requests.
pub use tamper_wire as wire;

/// Observability: counters, gauges, stage timers, latency histograms.
pub use tamper_obs as obs;

/// Deterministic discrete-event session simulator.
pub use tamper_netsim as netsim;

/// Tampering middlebox models (DPI rules, vendors, injector stacks).
pub use tamper_middlebox as middlebox;

/// The server-side collection pipeline (sampling, truncation, pcap).
pub use tamper_capture as capture;

/// The paper's contribution: the tampering-signature classifier.
pub use tamper_core as core;

/// The calibrated world model substituting for the CDN dataset.
pub use tamper_worldgen as worldgen;

/// Aggregation and per-artifact report generation.
pub use tamper_analysis as analysis;

/// The items most programs need.
pub mod prelude {
    pub use tamper_analysis::{report, Collector};
    pub use tamper_capture::{collect, CollectorConfig, FlowRecord, PacketRecord, Sampler};
    pub use tamper_core::{
        classify, Classification, ClassifierConfig, FlowAnalysis, Signature, Stage,
    };
    pub use tamper_middlebox::{RuleSet, TamperingMiddlebox, Vendor};
    pub use tamper_netsim::{
        run_session, ClientConfig, ClientKind, Path, RequestPayload, ServerConfig, SessionParams,
        SimDuration, SimTime,
    };
    pub use tamper_wire::{Packet, PacketBuilder, TcpFlags};
    pub use tamper_worldgen::{
        generate_lists, GroundTruth, LabeledFlow, Scenario, WorldConfig, WorldSim,
    };
}
