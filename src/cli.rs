//! Command-line argument parsing for the `tamperscope` binary.
//!
//! Hand-rolled (the workspace takes no CLI dependency): positionals plus
//! `--flag` / `--flag value` / `--flag=value`. Whether a flag consumes
//! the next token is decided by the [`VALUE_FLAGS`] list, not by peeking
//! at the token's shape — peeking made boolean flags swallow whatever
//! followed them (`classify --jsonl capture.pcap` used to parse with no
//! positional at all, rejecting a perfectly good invocation).

/// Flags that take a value. Everything else parses as boolean.
pub const VALUE_FLAGS: &[&str] = &[
    "sessions",
    "days",
    "seed",
    "threads",
    "world",
    "port",
    "max-flows",
    "metrics-json",
    "tamper-share",
    "pops",
    "out",
];

/// Parsed command line: positionals in order, flags with optional values.
#[derive(Debug, Default)]
pub struct Args {
    /// Non-flag tokens, in order.
    pub positional: Vec<String>,
    /// `(name, value)` pairs, in order; later occurrences win on lookup.
    pub flags: Vec<(String, Option<String>)>,
}

impl Args {
    /// Parse raw tokens (everything after the subcommand).
    pub fn parse(raw: &[String]) -> Args {
        let mut positional = Vec::new();
        let mut flags = Vec::new();
        let mut it = raw.iter();
        while let Some(a) = it.next() {
            if let Some(name) = a.strip_prefix("--") {
                let (name, value) = match name.split_once('=') {
                    Some((n, v)) => (n.to_owned(), Some(v.to_owned())),
                    None => {
                        let value = if VALUE_FLAGS.contains(&name) {
                            it.next().cloned()
                        } else {
                            None
                        };
                        (name.to_owned(), value)
                    }
                };
                flags.push((name, value));
            } else {
                positional.push(a.clone());
            }
        }
        Args { positional, flags }
    }

    /// The value of the last `--name`, if any was given with a value.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .rev()
            .find(|(n, _)| n == name)
            .and_then(|(_, v)| v.as_deref())
    }

    /// Parse the value of `--name` as u64, falling back to `default`.
    ///
    /// Swallows bad values (`--threads=abc` yields `default`); prefer
    /// [`Args::get_u64_strict`] anywhere a typo should be a usage error
    /// instead of a silently different run.
    pub fn get_u64(&self, name: &str, default: u64) -> u64 {
        self.get(name)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    /// Parse the value of `--name` as u64, erroring on a flag given
    /// without a value or with one that does not parse. An absent flag
    /// still yields `default`.
    pub fn get_u64_strict(&self, name: &str, default: u64) -> Result<u64, String> {
        match self.flags.iter().rev().find(|(n, _)| n == name) {
            None => Ok(default),
            Some((_, None)) => Err(format!("--{name} requires a value")),
            Some((_, Some(v))) => v
                .parse()
                .map_err(|_| format!("--{name}: {v:?} is not an unsigned integer")),
        }
    }

    /// True when `--name` appeared at all.
    pub fn has(&self, name: &str) -> bool {
        self.flags.iter().any(|(n, _)| n == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(tokens: &[&str]) -> Args {
        let raw: Vec<String> = tokens.iter().map(|s| s.to_string()).collect();
        Args::parse(&raw)
    }

    #[test]
    fn boolean_flag_does_not_swallow_positional() {
        // The historical bug: `--jsonl` peeked ahead and consumed the
        // capture path as its "value".
        let a = args(&["--jsonl", "capture.pcap"]);
        assert_eq!(a.positional, vec!["capture.pcap"]);
        assert!(a.has("jsonl"));
        assert_eq!(a.get("jsonl"), None);
    }

    #[test]
    fn value_flags_consume_the_next_token() {
        let a = args(&["--threads", "8", "capture.pcap", "--max-flows", "1000"]);
        assert_eq!(a.get_u64("threads", 0), 8);
        assert_eq!(a.get_u64("max-flows", 0), 1000);
        assert_eq!(a.positional, vec!["capture.pcap"]);
    }

    #[test]
    fn equals_syntax_works_for_any_flag() {
        let a = args(&["--seed=42", "--jsonl", "--world=spec.json"]);
        assert_eq!(a.get_u64("seed", 0), 42);
        assert_eq!(a.get("world"), Some("spec.json"));
        assert!(a.has("jsonl"));
    }

    #[test]
    fn last_occurrence_wins() {
        let a = args(&["--seed", "1", "--seed", "2"]);
        assert_eq!(a.get_u64("seed", 0), 2);
    }

    #[test]
    fn missing_value_at_end_is_tolerated() {
        let a = args(&["--threads"]);
        assert!(a.has("threads"));
        assert_eq!(a.get("threads"), None);
        assert_eq!(a.get_u64("threads", 3), 3);
    }

    #[test]
    fn strict_parse_accepts_valid_and_absent_values() {
        let a = args(&["--threads", "8"]);
        assert_eq!(a.get_u64_strict("threads", 1), Ok(8));
        assert_eq!(a.get_u64_strict("sessions", 500), Ok(500));
    }

    #[test]
    fn strict_parse_rejects_garbage_instead_of_defaulting() {
        let a = args(&["--threads=abc"]);
        assert_eq!(a.get_u64("threads", 1), 1); // the lenient trap
        let err = a.get_u64_strict("threads", 1).unwrap_err();
        assert!(err.contains("--threads"), "{err}");
        assert!(err.contains("abc"), "{err}");
    }

    #[test]
    fn strict_parse_rejects_missing_value_and_negative_numbers() {
        let a = args(&["--seed"]);
        assert!(a.get_u64_strict("seed", 7).is_err());
        let b = args(&["--max-flows=-4"]);
        assert!(b.get_u64_strict("max-flows", 0).is_err());
    }

    #[test]
    fn strict_parse_uses_the_last_occurrence() {
        let a = args(&["--threads", "2", "--threads", "oops"]);
        assert!(a.get_u64_strict("threads", 1).is_err());
        let b = args(&["--threads", "oops", "--threads", "2"]);
        assert_eq!(b.get_u64_strict("threads", 1), Ok(2));
    }
}
