//! Quickstart: simulate one censored and one clean connection, watch the
//! classifier tell them apart, then run a small world and print the
//! headline numbers.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use tamperscope::analysis::pct_f;
use tamperscope::capture::collect;
use tamperscope::core::{max_rst_ipid_delta, max_rst_ttl_delta};
use tamperscope::netsim::{derive_rng, Link};
use tamperscope::prelude::*;
use tamperscope::worldgen::country_index;

fn simulate(sni: &str, vendor: Option<Vendor>) -> FlowRecord {
    let client_ip = "203.0.113.7".parse().unwrap();
    let server_ip = "198.51.100.1".parse().unwrap();
    let client = ClientConfig::default_tls(client_ip, server_ip, sni);
    let server = ServerConfig::default_edge(server_ip, 443);
    let mut path = match vendor {
        Some(v) => Path {
            links: vec![
                Link::new(SimDuration::from_millis(10), 4),
                Link::new(SimDuration::from_millis(40), 9),
            ],
            hops: vec![Box::new(v.build(RuleSet::domains(["blocked.example.com"])))],
        },
        None => Path::direct(SimDuration::from_millis(50), 13),
    };
    let mut rng = derive_rng(2023, 1);
    let trace = run_session(
        SessionParams::new(client, server, SimTime::ZERO),
        &mut path,
        &mut rng,
    );
    let mut crng = derive_rng(2023, 2);
    collect(&trace, &CollectorConfig::default(), &mut crng).expect("flow")
}

fn describe(label: &str, flow: &FlowRecord) {
    let analysis = classify(flow, &ClassifierConfig::default());
    println!("== {label}");
    let mut line = String::new();
    for p in &flow.packets {
        line.push_str(&format!("[{}] ", p.flags));
    }
    println!("   inbound:   {line}");
    match analysis.signature() {
        Some(sig) => println!("   verdict:   TAMPERED, signature {sig}"),
        None if analysis.is_possibly_tampered() => {
            println!("   verdict:   possibly tampered (no signature)")
        }
        None => println!("   verdict:   not tampered"),
    }
    if let Some(domain) = &analysis.trigger.domain {
        println!("   trigger:   {domain}");
    }
    if let Some(d) = max_rst_ipid_delta(flow) {
        println!("   evidence:  max IP-ID jump at the RST = {d}");
    }
    if let Some(d) = max_rst_ttl_delta(flow) {
        println!("   evidence:  TTL change at the RST = {d}");
    }
    println!();
}

fn main() {
    // 1. A connection through a GFW-style injector: the ClientHello for a
    //    blocked domain draws a double RST+ACK burst.
    let censored = simulate("blocked.example.com", Some(Vendor::GfwDoubleRstAck));
    describe(
        "blocked.example.com through a GFW-style middlebox",
        &censored,
    );

    // 2. The same path, an innocent domain: clean handshake, data, FIN.
    let clean = simulate("innocent.example.org", Some(Vendor::GfwDoubleRstAck));
    describe("innocent.example.org through the same middlebox", &clean);

    // 3. A small world: 30,000 connections across ~60 countries, one pass.
    println!("== a small world (30,000 connections, 2 simulated days)");
    let sim = WorldSim::new(WorldConfig {
        sessions: 30_000,
        days: 2,
        catalog_size: 1500,
        ..Default::default()
    });
    let mut col = Collector::new(
        ClassifierConfig::default(),
        sim.world().len(),
        2,
        sim.config().start_unix,
    );
    sim.run(|lf| col.observe(&lf));
    println!(
        "   {} flows, {} possibly tampered ({})",
        col.total,
        col.possibly_tampered,
        pct_f(col.possibly_tampered as f64 / col.total as f64)
    );
    for code in ["TM", "CN", "IR", "US"] {
        if let Some(c) = country_index(sim.world(), code) {
            let total = col.country_total(c as usize);
            let matched = col.country_matched(c as usize);
            if total > 0 {
                println!(
                    "   {code}: {} of {} connections match a tampering signature ({})",
                    matched,
                    total,
                    pct_f(matched as f64 / total as f64)
                );
            }
        }
    }
    println!(
        "   ground-truth recall {} / precision {}",
        pct_f(col.truth.recall()),
        pct_f(col.truth.precision())
    );
}
