//! The paper's §5.6 case study: Iranian connection tampering during the
//! September 2022 protests (Figure 8).
//!
//! Runs the scripted 17-day Iran scenario — escalating, evening-peaked
//! blocking concentrated on two mobile ISPs — and prints the per-signature
//! hourly series plus the headline observations the paper makes:
//! post-handshake timeouts exceeding 40% of connections at the peaks, and
//! the two mobile ISPs carrying the bulk of the tampering.
//!
//! ```sh
//! cargo run --release --example iran_case_study -- --sessions 120000
//! ```

use tamperscope::analysis::{pct, report, Collector};
use tamperscope::core::{ClassifierConfig, Signature};
use tamperscope::worldgen::{Scenario, WorldConfig, WorldSim, SEP13_2022_UNIX};

fn arg(name: &str, default: u64) -> u64 {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let sessions = arg("--sessions", 120_000);
    let days = 17u32;
    let sim = WorldSim::new(WorldConfig {
        sessions,
        days,
        start_unix: SEP13_2022_UNIX,
        scenario: Scenario::IranProtest,
        catalog_size: 2000,
        ..Default::default()
    });
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let mk = || {
        Collector::new(
            ClassifierConfig::default(),
            sim.world().len(),
            days,
            SEP13_2022_UNIX,
        )
    };
    let col = sim.run_sharded(threads, mk, |c, lf| c.observe(&lf), |a, b| a.merge(b));

    // Figure 8: the full hourly TSV.
    println!("{}", report::fig8(&col.view()));

    // Headline 1: peak hourly rate of post-handshake timeouts.
    let ack_none = Signature::AckNone.index();
    let mut peak = (0usize, 0.0f64);
    for (h, row) in col.sig_hour.iter().enumerate() {
        let total = col.hour_totals[h];
        if total >= 30 {
            let rate = f64::from(row[ack_none]) / f64::from(total);
            if rate > peak.1 {
                peak = (h, rate);
            }
        }
    }
    println!(
        "peak ⟨SYN; ACK → ∅⟩ hour: day {} hour {} at {:.1}% of connections",
        peak.0 / 24,
        peak.0 % 24,
        100.0 * peak.1
    );

    // Headline 2: escalation — first 2 days vs the rest.
    let split = 2 * 24;
    let early: (u64, u64) = col.sig_hour[..split]
        .iter()
        .zip(&col.hour_totals[..split])
        .fold((0, 0), |(m, t), (row, total)| {
            (m + u64::from(row[ack_none]), t + u64::from(*total))
        });
    let late: (u64, u64) = col.sig_hour[split..]
        .iter()
        .zip(&col.hour_totals[split..])
        .fold((0, 0), |(m, t), (row, total)| {
            (m + u64::from(row[ack_none]), t + u64::from(*total))
        });
    println!(
        "⟨SYN; ACK → ∅⟩: {} of connections in the first two days vs {} afterwards",
        pct(early.0, early.1),
        pct(late.0, late.1),
    );

    // Headline 3: the two mobile ISPs dominate.
    let mut per_as: Vec<(u32, u64, u64)> = col
        .as_counts
        .iter()
        .map(|((_, asn), &(total, matched))| (*asn, total, matched))
        .collect();
    per_as.sort_by_key(|(asn, _, _)| *asn);
    println!("\nper-AS match rates (AS 0 and 1 are the mobile ISPs):");
    for (asn, total, matched) in per_as {
        println!(
            "  AS{asn}: {} of {} connections matched ({})",
            matched,
            total,
            pct(matched, total)
        );
    }
}
