//! Offline pcap analysis: the workflow a real operator would use.
//!
//! 1. Simulate a mixed batch of sessions (censored and clean) and write
//!    every inbound packet to a standard libpcap file (LINKTYPE_RAW —
//!    readable by tcpdump/wireshark).
//! 2. Re-open that file cold, reassemble flows with the paper's
//!    collection constraints, classify them, and print a per-signature
//!    summary with injection evidence.
//!
//! Pass a path to analyze an existing raw-IP pcap instead of the
//! synthesized one:
//!
//! ```sh
//! cargo run --release --example pcap_analysis -- /tmp/server_side.pcap
//! ```

use std::collections::BTreeMap;
use std::fs::File;
use std::io::{BufReader, BufWriter};
use tamperscope::capture::{flows_from_pcap, OfflineConfig, PcapWriter};
use tamperscope::core::{classify, max_rst_ipid_delta, ClassifierConfig};
use tamperscope::middlebox::{RuleSet, Vendor};
use tamperscope::netsim::{
    derive_rng, run_session, ClientConfig, Link, Path, SessionParams, SimDuration, SimTime,
};
use tamperscope::prelude::*;

const BLOCKED: &str = "blocked.example.com";

fn synthesize(path: &str) -> std::io::Result<()> {
    let server_ip: std::net::IpAddr = "198.51.100.1".parse().unwrap();
    let mut writer = PcapWriter::new(BufWriter::new(File::create(path)?))?;
    let vendors: [Option<Vendor>; 5] = [
        None,
        Some(Vendor::GfwDoubleRstAck),
        Some(Vendor::DataDropAll),
        Some(Vendor::ZeroAckPair),
        Some(Vendor::SynRst { n: 1 }),
    ];
    let mut start = SimTime::ZERO;
    for i in 0..60u32 {
        let client_ip: std::net::IpAddr = format!("203.0.113.{}", 2 + (i % 200)).parse().unwrap();
        let sni = if i % 3 == 0 {
            BLOCKED
        } else {
            "fine.example.org"
        };
        let mut cfg = ClientConfig::default_tls(client_ip, server_ip, sni);
        cfg.src_port = 30_000 + (i as u16 * 13) % 20_000;
        let vendor = vendors[(i % 5) as usize];
        let mut path_obj = match vendor {
            Some(v) => {
                // IP-level (SYN-stage) censors key on the destination, not
                // the domain; give them a blanket rule like a blocked IP.
                let rules = if v.stages().on_syn {
                    RuleSet::blanket()
                } else {
                    RuleSet::domains([BLOCKED])
                };
                Path {
                    links: vec![
                        Link::new(SimDuration::from_millis(10), 4),
                        Link::new(SimDuration::from_millis(45), 9),
                    ],
                    hops: vec![Box::new(v.build(rules))],
                }
            }
            None => Path::direct(SimDuration::from_millis(55), 13),
        };
        let mut rng = derive_rng(77, u64::from(i));
        let trace = run_session(
            SessionParams::new(cfg, ServerConfig::default_edge(server_ip, 443), start),
            &mut path_obj,
            &mut rng,
        );
        for tp in trace.inbound() {
            let secs = tp.time.as_secs() as u32;
            let usec = ((tp.time.as_nanos() % 1_000_000_000) / 1_000) as u32;
            writer.write_packet(secs, usec, &tp.packet)?;
        }
        start += SimDuration::from_secs(2);
    }
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let arg_path = std::env::args().nth(1);
    let path = match &arg_path {
        Some(p) => p.clone(),
        None => {
            let p = std::env::temp_dir().join("tamperscope_demo.pcap");
            let p = p.to_string_lossy().into_owned();
            synthesize(&p)?;
            println!("synthesized capture at {p} (open it in wireshark!)\n");
            p
        }
    };

    let (flows, stats) = flows_from_pcap(
        BufReader::new(File::open(&path)?),
        &OfflineConfig::default(),
    )?;
    println!(
        "ingested {}: {} flows, {} packets ({} skipped outbound, {} unparsable)\n",
        path, stats.flows, stats.packets, stats.not_inbound, stats.unparsable
    );

    let cfg = ClassifierConfig::default();
    let mut by_class: BTreeMap<String, u32> = BTreeMap::new();
    let mut evidence_hits = 0u32;
    let mut tampered = 0u32;
    for flow in &flows {
        let analysis = classify(flow, &cfg);
        let key = match analysis.signature() {
            Some(sig) => sig.label().to_owned(),
            None if analysis.is_possibly_tampered() => "(possibly tampered, unmatched)".into(),
            None => "not tampered".into(),
        };
        *by_class.entry(key).or_default() += 1;
        if analysis.signature().is_some() {
            tampered += 1;
            if max_rst_ipid_delta(flow).is_some_and(|d| d > 1) {
                evidence_hits += 1;
            }
        }
    }
    println!("classification summary:");
    for (label, n) in &by_class {
        println!("  {n:4}  {label}");
    }
    println!(
        "\n{} of {} signature matches carry IP-ID injection evidence (Δ > 1)",
        evidence_hits, tampered
    );
    Ok(())
}
