//! Regenerate every table and figure of the paper from a full world
//! simulation. Scale with `--sessions N` (default 300k) and `--days D`.
//!
//! ```sh
//! cargo run --release --example global_report -- --sessions 1000000
//! ```

use tamper_analysis::{self, report, Collector};
use tamper_core::ClassifierConfig;
use tamper_worldgen::{generate_lists, Scenario, WorldConfig, WorldSim, SEP13_2022_UNIX};

fn arg(name: &str, default: u64) -> u64 {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let sessions = arg("--sessions", 300_000);
    let days = arg("--days", 14) as u32;
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);

    eprintln!("[world] {sessions} sessions over {days} days on {threads} threads");
    let sim = WorldSim::new(WorldConfig {
        sessions,
        days,
        ..Default::default()
    });
    let mk = || {
        Collector::new(
            ClassifierConfig::default(),
            sim.world().len(),
            days,
            sim.config().start_unix,
        )
    };
    let t0 = std::time::Instant::now();
    let col = sim.run_sharded(threads, mk, |c, lf| c.observe(&lf), |a, b| a.merge(b));
    eprintln!(
        "[world] simulated+classified {} flows in {:.1}s",
        col.total,
        t0.elapsed().as_secs_f64()
    );

    println!("{}", tamper_analysis::comparison_table(&col));
    let lists = generate_lists(&sim);
    println!("{}", report::full_report(&col.view(), &sim, &lists));

    // Iran case study (Figure 8): separate 17-day scenario world.
    let iran_sessions = (sessions / 6).max(20_000);
    eprintln!("[iran] {iran_sessions} sessions over 17 days");
    let iran = WorldSim::new(WorldConfig {
        sessions: iran_sessions,
        days: 17,
        start_unix: SEP13_2022_UNIX,
        scenario: Scenario::IranProtest,
        ..Default::default()
    });
    let mk_iran = || {
        Collector::new(
            ClassifierConfig::default(),
            iran.world().len(),
            17,
            SEP13_2022_UNIX,
        )
    };
    let iran_col = iran.run_sharded(threads, mk_iran, |c, lf| c.observe(&lf), |a, b| a.merge(b));
    println!("{}", report::fig8(&iran_col.view()));
}
