//! Build a hypothesis world from scratch — no calibrated table, just the
//! library API — and check what the passive pipeline would see.
//!
//! Scenario: a hypothetical country "AA" deploys a new in-path DPI that
//! drops TLS ClientHellos for social-media domains, plus a neighbour "BB"
//! with only commercial enterprise firewalls. How distinguishable are they
//! from the server side?
//!
//! ```sh
//! cargo run --release --example custom_world
//! ```

use tamperscope::analysis::{pct, report, Collector};
use tamperscope::core::ClassifierConfig;
use tamperscope::middlebox::Vendor;
use tamperscope::worldgen::{
    world_from_json, world_to_json, Category, CountrySpec, Policy, WorldConfig, WorldSim,
};

fn hypothesis_world() -> Vec<CountrySpec> {
    use tamperscope::worldgen::Country;
    let aa = CountrySpec {
        country: Country {
            code: "AA".into(),
            weight: 1.0,
            tz_offset_hours: 2,
            ipv6_share: 0.2,
            n_ases: 4,
            centralization: 0.9,
            http_share: 0.2,
            ipv6_tamper_mult: 1.0,
            syn_payload_mult: 1.0,
        },
        policy: Policy {
            dpi_enforce: 0.95,
            dpi_mix: vec![
                (Vendor::DataDropAll, 0.7),
                (Vendor::DataDropRstAck { n: 1 }, 0.3),
            ],
            coverage: vec![(Category::SocialMedia, 0.8), (Category::Chat, 0.5)],
            diurnal_amp: 0.3,
            weekend_drop: 0.1,
            ..Default::default()
        },
    };
    let bb = CountrySpec {
        country: Country {
            code: "BB".into(),
            weight: 1.0,
            tz_offset_hours: 2,
            ipv6_share: 0.3,
            n_ases: 8,
            centralization: 0.3,
            http_share: 0.2,
            ipv6_tamper_mult: 1.0,
            syn_payload_mult: 1.0,
        },
        policy: Policy {
            fw_rules: vec![(Vendor::FirewallRstAck, 0.04), (Vendor::FirewallRst, 0.02)],
            diurnal_amp: 0.2,
            weekend_drop: 0.3,
            ..Default::default()
        },
    };
    vec![aa, bb]
}

fn main() {
    // The world can round-trip through the JSON schema — write it out so
    // the same hypothesis can be re-run from the CLI.
    let world = hypothesis_world();
    let json = world_to_json(&world);
    let reloaded = world_from_json(&json).expect("schema round trip");
    assert_eq!(reloaded.len(), world.len());
    println!("loadable spec ({} bytes):\n{json}\n", json.len());

    let sim = WorldSim::with_world(
        WorldConfig {
            sessions: 60_000,
            days: 3,
            catalog_size: 1200,
            ..Default::default()
        },
        world,
    );
    let mut col = Collector::new(
        ClassifierConfig::default(),
        sim.world().len(),
        3,
        sim.config().start_unix,
    );
    sim.run(|lf| col.observe(&lf));

    for (c, spec) in sim.world().iter().enumerate() {
        let total = col.country_total(c);
        let matched = col.country_matched(c);
        println!(
            "{}: {} of {} connections match a signature ({})",
            spec.country.code,
            matched,
            total,
            pct(matched, total)
        );
    }
    println!();
    println!("{}", report::fig4(&col.view(), &sim, 100));
    println!("{}", report::table2(&col.view(), &sim, 3));
}
